"""Figs. 13 & 14 — GFLOPS sweeps on the pre-designed shapes.

Paper findings: on both platforms, ML thread selection matches or beats
the default for almost every panel; the gains are dramatic when two
dimensions are small (the last three rows of each figure), where the
default max-thread configuration collapses.
"""

import numpy as np
import pytest

from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.sampling.predesigned import predesigned_cases


def _sweep(ctx, machine, bundle):
    sim = ctx.simulator(machine)
    predictor = ThreadPredictor(FeatureBuilder(bundle.config.feature_groups),
                                bundle.pipeline, bundle.model,
                                bundle.config.thread_grid)
    max_t = max(bundle.config.thread_grid)
    rows = []
    for case in predesigned_cases():
        spec = case.spec
        p = predictor.predict_threads(spec.m, spec.k, spec.n)
        t_base = sim.timed_run(spec, max_t, repeats=5)
        t_ml = sim.timed_run(spec, p, repeats=5)
        rows.append({
            "panel": case.panel, "family": case.family, "x": case.swept_value,
            "default_gflops": spec.flops / t_base / 1e9,
            "ml_gflops": spec.flops / t_ml / 1e9,
            "threads": p,
        })
    return rows


@pytest.mark.parametrize("platform", ["setonix", "gadi"])
def test_figs_13_14_predesigned_sweeps(platform, benchmark, ctx, save_result,
                                       setonix_prod_bundle, gadi_prod_bundle):
    bundle = setonix_prod_bundle if platform == "setonix" else gadi_prod_bundle
    rows = benchmark.pedantic(_sweep, args=(ctx, platform, bundle),
                              rounds=1, iterations=1)

    fig = "13" if platform == "setonix" else "14"
    lines = [f"Fig {fig} ({platform}): GFLOPS, BLAS default vs ML selection"]
    from repro.bench.report import sparkline

    panels = {}
    for r in rows:
        panels.setdefault(r["panel"], []).append(r)
    for panel, prs in panels.items():
        lines.append(f"-- {panel}   default {sparkline([r['default_gflops'] for r in prs])}"
                     f"  ml {sparkline([r['ml_gflops'] for r in prs])}")
        for r in prs:
            lines.append(f"   x={r['x']:5d} default={r['default_gflops']:9.1f} "
                         f"ml={r['ml_gflops']:9.1f} (p={r['threads']})")
    save_result(f"fig{fig}_predesigned_{platform}", "\n".join(lines))

    ratios = np.array([r["ml_gflops"] / r["default_gflops"] for r in rows])
    families = np.array([r["family"] for r in rows])

    # ML wins overall and rarely loses (paper: occasional slight adverse
    # speedups when only m is small).
    assert np.median(ratios) >= 1.0
    assert (ratios > 0.8).mean() > 0.85

    # The two-small-dims rows show the dramatic pathology fixes
    # (paper reports 81.6x and 33.9x on Gadi).
    two_small = ratios[families == "two_small"]
    assert two_small.max() > 5.0
    assert np.median(two_small) > 1.2

    # Square sweeps: modest but real gains, never catastrophic losses.
    square = ratios[families == "square"]
    assert square.min() > 0.7
