"""Extension — does ADSALA's headroom grow with core count?

The paper's conclusion: "as a general rule platforms with high CPU core
counts can potentially benefit more from ML-based GEMM and for larger
aggregate matrix sizes."  We test the claim directly by synthesising a
family of Cascade-Lake-like nodes with 8..64 cores per socket and
measuring the *oracle headroom* — the mean speedup of the per-shape best
thread count over the max-thread default — on a fixed shape sample.
"""

from dataclasses import replace

import numpy as np

from repro.gemm.partition import choose_thread_grid
from repro.machine.noise import QUIET
from repro.machine.presets import gadi, gadi_topology
from repro.machine.simulator import MachineSimulator
from repro.sampling.domain import GemmDomainSampler

MB = 1024 * 1024


def scaled_node(cores_per_socket: int):
    """A gadi-flavoured node with a different core count per socket.

    Memory bandwidth scales sub-linearly with cores (channel counts do
    not grow with core count), which is exactly why bigger sockets have
    more to gain from thread throttling.
    """
    topo = replace(gadi_topology(),
                   name=f"clx{cores_per_socket}",
                   cores_per_module=cores_per_socket,
                   mem_bw_gbs_per_socket=141.0 * np.sqrt(cores_per_socket / 24.0))
    return replace(gadi(), topology=topo)


def _headroom(cores_per_socket: int, shapes) -> float:
    sim = MachineSimulator(scaled_node(cores_per_socket), noise=QUIET)
    grid = choose_thread_grid(sim.max_threads())
    speedups = []
    for spec in shapes:
        best = sim.optimal_threads(spec, grid)
        speedups.append(sim.true_time(spec, sim.max_threads())
                        / sim.true_time(spec, best))
    return float(np.exp(np.mean(np.log(speedups))))  # geometric mean


def test_headroom_grows_with_core_count(benchmark, save_result):
    shapes = GemmDomainSampler(memory_cap_bytes=100 * MB, seed=21).sample(40)
    sizes = [8, 16, 32, 64]
    headrooms = {}
    for cores in sizes:
        if cores == 24:
            continue
        headrooms[cores] = (benchmark(_headroom, cores, shapes)
                            if cores == sizes[0] else _headroom(cores, shapes))

    lines = ["Extension: oracle speedup headroom vs socket core count "
             "(2-socket CLX-like nodes, 100 MB shape sample)",
             f"{'cores/socket':>13} {'logical CPUs':>13} {'geomean headroom':>17}"]
    for cores in sizes:
        lines.append(f"{cores:13d} {cores * 4:13d} {headrooms[cores]:17.2f}")
    save_result("scaling_study", "\n".join(lines))

    values = [headrooms[c] for c in sizes]
    # The paper's conclusion: more cores, more to gain.
    assert values[-1] > values[0]
    # And monotone across the sweep (weakly, allowing one inversion).
    inversions = sum(1 for a, b in zip(values, values[1:]) if b < a * 0.98)
    assert inversions <= 1
    # Even the small node benefits (> 1).
    assert min(values) > 1.0
