"""Engine extension — batched prediction throughput.

Not a paper figure: this experiment quantifies the serving win of the
engine refactor.  The scalar path pays the full feature-build /
pipeline / model round trip per GEMM call; the engine's
``predict_threads_batch`` pays it once per batch, so amortised per-shape
prediction cost falls as the batch grows — which is what makes the
speedup estimate ``s = t_orig / (t_ADSALA + t_eval)`` survive high call
rates.
"""

from repro.bench.report import format_table
from repro.bench.throughput import prediction_throughput

BATCH_SIZES = (1, 4, 16, 64, 256)


def test_batch_prediction_throughput(benchmark, save_result, gadi_prod_bundle):
    predictor = gadi_prod_bundle.predictor(cache_size=1)
    rows = benchmark.pedantic(
        prediction_throughput, args=(predictor,),
        kwargs=dict(n_shapes=256, batch_sizes=BATCH_SIZES, repeats=3),
        rounds=1, iterations=1)

    save_result("batch_throughput",
                format_table(rows, title="amortised prediction cost "
                                         f"({gadi_prod_bundle.config.model_name})"))

    by_batch = {row["batch_size"]: row for row in rows}
    # The acceptance bar: batch-64 amortised cost measurably below the
    # single-call cost, and monotone-ish gains as batches grow.
    assert by_batch[64]["per_shape_us"] < by_batch[1]["per_shape_us"]
    assert by_batch[64]["speedup"] > 1.5
    assert by_batch[256]["per_shape_us"] <= by_batch[4]["per_shape_us"]
