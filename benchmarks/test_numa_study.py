"""Extension — NUMA memory-policy study (paper Section V-B2).

The paper pins the NUMA policy to *interleave* following Intel's
benchmark guidance and notes that it "stabilises the GEMM runtime".
This study quantifies both halves of that statement on the simulated
Gadi node: interleave delivers (a) the best full-node bandwidth and (b)
the lowest run-to-run variability, compared with first-touch (local) and
single-domain (bind) placements.
"""

import numpy as np

from repro.gemm.interface import GemmSpec
from repro.machine.presets import gadi
from repro.machine.simulator import MachineSimulator


def _policy_profile(numa_mode, n_runs=60):
    sim = MachineSimulator(gadi(), seed=0, numa=numa_mode)
    spec = GemmSpec(3000, 3000, 3000)  # spans both sockets at 48 threads
    times = np.array([sim.run(spec, 48, iteration=i).time
                      for i in range(n_runs)])
    return float(np.median(times)), float(np.std(times) / np.mean(times))


def test_numa_interleave_fast_and_stable(benchmark, save_result):
    results = {"interleave": benchmark.pedantic(_policy_profile,
                                                args=("interleave",),
                                                rounds=1, iterations=1)}
    for mode in ("local", "bind"):
        results[mode] = _policy_profile(mode)

    lines = ["Extension: NUMA policy study (Gadi, 3000^3 SGEMM, 48 threads)",
             f"{'policy':>12} {'median time (ms)':>17} {'coeff. of variation':>20}"]
    for mode, (median, cv) in results.items():
        lines.append(f"{mode:>12} {median * 1e3:17.3f} {cv:20.3f}")
    save_result("numa_study", "\n".join(lines))

    t_inter, cv_inter = results["interleave"]
    t_local, cv_local = results["local"]
    t_bind, _ = results["bind"]
    # Interleave is fastest for a team spanning both sockets...
    assert t_inter <= t_local * 1.02
    assert t_inter < t_bind
    # ...and the most stable (the paper's observation).
    assert cv_inter < cv_local
