"""Fig. 10 — speedup heatmaps over (m, k, n) on both platforms.

Paper findings: GEMMs with large n are significantly accelerated on
Setonix; small-footprint shapes gain the most on both platforms; the
speedup pattern is asymmetric in the three dimensions.
"""

import numpy as np

from benchmarks.conftest import measured_speedups
from repro.bench.report import heatmap_summary
from repro.bench.runner import ExperimentContext


def _speedups_with_shapes(ctx, machine, bundle, seed=12345):
    shapes = ctx.fresh_test_shapes(500, n=174, seed=seed)
    s = measured_speedups(ctx, machine, bundle, memory_cap_mb=500,
                          n_shapes=174, seed=seed)
    dims = np.array([spec.dims for spec in shapes])
    mem = np.array([spec.memory_mb for spec in shapes])
    return dims, mem, s


def test_fig10_speedup_heatmaps(benchmark, ctx, save_result,
                                setonix_prod_bundle, gadi_prod_bundle):
    result = {}
    result["setonix"] = benchmark.pedantic(
        _speedups_with_shapes, args=(ctx, "setonix", setonix_prod_bundle),
        rounds=1, iterations=1)
    result["gadi"] = _speedups_with_shapes(ctx, "gadi", gadi_prod_bundle)

    sections = []
    for machine, (dims, mem, s) in result.items():
        sections.append(f"== Fig 10 ({machine}): speedup over (m, k) ==")
        sections.append(heatmap_summary(dims[:, 0], dims[:, 1], s,
                                        x_label="m", y_label="k",
                                        value_label="speedup"))
    save_result("fig10_speedup_heatmap", "\n".join(sections))

    for machine, (dims, mem, s) in result.items():
        small = mem < np.quantile(mem, 0.3)
        large = mem > np.quantile(mem, 0.7)
        # Small-footprint GEMMs gain more than large ones on average.
        assert np.median(s[small]) > np.median(s[large]) * 0.9, machine
        # Strong accelerations exist somewhere in the domain.
        assert s.max() > 2.0, machine
