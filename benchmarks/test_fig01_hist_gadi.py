"""Fig. 1 — histogram of optimal thread counts on Gadi, SGEMM <= 100 MB.

Paper finding: with 96 logical CPUs available, the measured-fastest
thread count is usually far below the maximum; "thread counts lower than
48 often provide better GEMM wall-time".
"""

import numpy as np

from benchmarks.conftest import GADI_GRID
from repro.bench.report import ascii_histogram


def _optimal_hist(ctx):
    data = ctx.dataset("gadi", n_shapes=220, memory_cap_mb=100,
                       thread_grid=GADI_GRID)
    _, best_t, _, _ = data.optimal_threads()
    return best_t


def test_fig01_optimal_thread_histogram(benchmark, ctx, save_result):
    best_t = benchmark(_optimal_hist, ctx)

    text = ascii_histogram(
        best_t, bins=12,
        title="Fig 1: optimal thread count histogram (Gadi, <=100 MB SGEMM)")
    save_result("fig01_hist_gadi", text)

    # Paper shape: the bulk of optima sit below half the maximum...
    frac_below_half = float(np.mean(best_t < 48))
    assert frac_below_half > 0.5, f"only {frac_below_half:.0%} below 48 threads"
    # ...and the maximum (96) is rarely the best choice.
    frac_max = float(np.mean(best_t == 96))
    assert frac_max < 0.25
    # Yet some large squarish shapes do want many threads.
    assert best_t.max() >= 48
