"""Section VI-A — learning curves: how much training data is enough?

The paper built train/validation learning curves and concluded that
1763 GEMM samples suffice below 500 MB ("more training data did not lead
to a significant increase in the validation performance").  This
benchmark regenerates the analysis at reproduction scale: validation
RMSE versus campaign size should flatten well before the full campaign.
"""

import numpy as np

from benchmarks.conftest import GADI_GRID
from repro.core.features import FeatureBuilder
from repro.ml.learning_curve import learning_curve
from repro.ml.model_selection import KFold
from repro.ml.xgb import XGBRegressor


def _curve(ctx):
    data = ctx.dataset("gadi", n_shapes=200, memory_cap_mb=500,
                       thread_grid=GADI_GRID)
    X = FeatureBuilder("both").build(data.m, data.k, data.n, data.threads)
    y = np.log(data.runtime)  # scale-free loss across the runtime range
    model = XGBRegressor(n_estimators=40, random_state=0)
    return learning_curve(model, X, y, train_sizes=[0.1, 0.25, 0.5, 1.0],
                          cv=KFold(3, random_state=0), random_state=0)


def test_learning_curve_flattens(benchmark, ctx, save_result):
    sizes, train_scores, val_scores = benchmark.pedantic(
        _curve, args=(ctx,), rounds=1, iterations=1)

    val_mean = val_scores.mean(axis=1)
    train_mean = train_scores.mean(axis=1)
    lines = ["Section VI-A: learning curve (XGBoost, Gadi campaign, log-RMSE)",
             f"{'train size':>11} {'train RMSE':>11} {'val RMSE':>9}"]
    for s, tr, va in zip(sizes, train_mean, val_mean):
        lines.append(f"{s:11d} {tr:11.4f} {va:9.4f}")
    save_result("learning_curve", "\n".join(lines))

    # Validation error improves substantially from the smallest size...
    assert val_mean[-1] < val_mean[0]
    # ...but the last doubling of data brings only a modest gain: the
    # curve has flattened (the paper's "1763 samples suffice" argument).
    gain_total = val_mean[0] - val_mean[-1]
    gain_last = val_mean[-2] - val_mean[-1]
    assert gain_last < 0.5 * gain_total
    # No pathological overfitting: train error below validation error.
    assert train_mean[-1] <= val_mean[-1] * 1.1
