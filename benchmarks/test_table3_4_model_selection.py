"""Tables III & IV — model bake-off on Setonix and Gadi.

Paper findings reproduced as assertions:

* linear models sit near normalised RMSE ~0.8-1.0; tree ensembles are
  far more accurate, with XGBoost the best;
* Random Forest has competitive RMSE but an evaluation time orders of
  magnitude above XGBoost, destroying its estimated speedup;
* XGBoost combines the best RMSE with fast evaluation and wins the
  estimated-speedup selection on both platforms.
"""

import pytest

from repro.bench.report import format_table

LINEAR = {"Linear Regression", "ElasticNet", "Bayes Regression"}


def _rows(bundle):
    return {r.name: r for r in bundle.report.rows}


@pytest.mark.parametrize("platform", ["setonix", "gadi"])
def test_tables_3_4_model_bakeoff(platform, benchmark, ctx, save_result,
                                  setonix_bundle, gadi_bundle):
    bundle = setonix_bundle if platform == "setonix" else gadi_bundle
    table = benchmark(bundle.report.as_table)

    title = ("Table III (Setonix): model performance and estimated speedups"
             if platform == "setonix"
             else "Table IV (Gadi): model performance and estimated speedups")
    save_result(f"table{'3' if platform == 'setonix' else '4'}_models_{platform}",
                format_table(table, title=title)
                + f"\n\nselected model: {bundle.report.selected}")

    rows = _rows(bundle)

    # Tree ensembles crush linear models on accuracy.
    best_linear = min(rows[n].nrmse for n in LINEAR)
    assert rows["XGBoost"].nrmse < 0.5 * best_linear
    # XGBoost is at or near the best accuracy overall (paper: strictly
    # best at 0.13/0.05; with our reduced ensemble sizes LightGBM can
    # tie it, so "within 25% of the minimum" is the robust form).
    best_nrmse = min(r.nrmse for r in rows.values())
    assert rows["XGBoost"].nrmse <= 1.25 * best_nrmse

    # Linear models evaluate much faster than the big ensembles.
    assert (rows["Bayes Regression"].speedup.eval_time_s
            < rows["Random Forest"].speedup.eval_time_s)
    # Random Forest's deep unbounded trees make it the slow evaluator of
    # the tree family (paper: 20816 us vs 45 us for XGBoost on Setonix;
    # our reduced forests keep the ordering at a smaller ratio).
    assert (rows["Random Forest"].speedup.eval_time_s
            > 1.2 * rows["XGBoost"].speedup.eval_time_s)
    # Eval overhead costs Random Forest real speedup.
    rf = rows["Random Forest"].speedup
    assert rf.estimated_mean < rf.ideal_mean

    # The winner delivers genuine estimated speedup over always-max.
    winner = rows[bundle.report.selected].speedup
    assert winner.estimated_mean > 1.0
    assert winner.estimated_aggregate > 1.0

    # XGBoost is competitive with whichever model wins the selection
    # (the paper selects XGBoost outright on both platforms; with our
    # reduced ensembles the gap between the top tree models narrows —
    # see EXPERIMENTS.md for the deviation discussion).
    xgb = rows["XGBoost"].speedup.estimated_mean
    assert xgb >= 0.75 * winner.estimated_mean
