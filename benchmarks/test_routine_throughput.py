"""Routine-generic serving — mixed-routine traffic through one server.

Not a paper figure: this experiment validates the routine-generic
runtime end-to-end.  A Poisson trace interleaving GEMM, GEMV, SYRK and
TRSM requests is replayed through a single
:class:`~repro.serve.server.GemmServer` with one shard per routine
(:class:`~repro.serve.router.RoutineRouter`), each shard serving its
routine's own trained predictor, and the report shows sustained
requests/second plus the per-routine traffic/latency split.

The acceptance metric is **bitwise parity**: for every routine, the
thread choices the mixed server produced must equal the dedicated
single-routine path exactly — on both the compiled-plan and the
object-pipeline predictor (the engine guarantees the two agree, and
micro-batching must not break either).

Smoke mode for CI: ``ROUTINE_BENCH_SMOKE=1`` shrinks the installations
and the trace so routing or keying regressions fail fast without a
full campaign.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.core.routines import get_routine, routine_names, routine_of
from repro.engine import GemmService
from repro.serve import GemmServer, RoutineRouter, poisson_trace, replay_trace

SMOKE = os.environ.get("ROUTINE_BENCH_SMOKE") == "1"
N_SHAPES = 24 if SMOKE else 80          # installation campaign size
N_POOL = 6 if SMOKE else 20             # distinct problems per routine
N_REQUESTS = 48 if SMOKE else 320       # mixed trace length
RATE_HZ = 2000.0
GRID = [1, 2, 4, 8, 12, 16]
MB = 1024 * 1024


@pytest.fixture(scope="module")
def routine_bundles():
    """One tiny-node installation per registered routine."""
    from repro.ml.registry import candidate_models
    from repro.train.matrix import build_workflow

    names = ("Bayes Regression", "Decision Tree") if SMOKE \
        else ("Bayes Regression", "XGBoost")
    cands = [c for c in candidate_models(budget="fast") if c.name in names]
    bundles = {}
    for routine in routine_names():
        workflow = build_workflow(
            routine, "tiny", seed=0, n_shapes=N_SHAPES,
            memory_cap_bytes=8 * MB, thread_grid=GRID, candidates=cands,
            tune_iters=1 if SMOKE else 2, cv_folds=2, repeats=3,
            eval_time_s=1e-5)
        bundles[routine] = workflow.run()
    return bundles


def _spec_pool(seed: int = 3) -> list:
    """Interleaved mixed-routine request pool, deterministic."""
    rng = np.random.default_rng(seed)
    pool = []
    for i in range(N_POOL):
        for routine in routine_names():
            info = get_routine(routine)
            dims = rng.integers(16, 700, size=info.n_dims)
            pool.append(info.build(*dims))
    return pool


def _shards(ctx, bundles, compiled: bool) -> dict:
    shards = {}
    for routine, bundle in bundles.items():
        machine = ctx.simulator("tiny")
        service = GemmService.from_bundle(bundle, machine,
                                          cache_size=4 * N_POOL)
        if not compiled:
            # Swap in the object-path predictor: same artefacts, no plan.
            service.predictor = bundle.predictor(
                cache_size=4 * N_POOL,
                thread_grid=service.thread_grid.tolist(), compiled=False)
        shards[routine] = service
    return shards


def test_mixed_routine_serving_matches_single_routine_bitwise(
        ctx, routine_bundles, save_result, save_bench_json):
    trace = poisson_trace(_spec_pool(), rate_hz=RATE_HZ,
                          n_requests=N_REQUESTS, n_clients=4, seed=0)

    outcomes = {}
    for label, compiled in (("compiled", True), ("object", False)):
        server = GemmServer(_shards(ctx, routine_bundles, compiled),
                            router=RoutineRouter(), max_batch=16,
                            max_wait_ms=4.0, max_queue=256)
        outcomes[label] = replay_trace(server, trace), server

    rows, parity_rows = [], []
    for label, (outcome, server) in outcomes.items():
        assert outcome.served == N_REQUESTS  # backpressure, never loss
        rows.append(outcome.report_row(f"mixed ({label})"))

        # --- the acceptance assertion: per-routine bitwise parity ----
        # Dedicated single-routine services over the same artefacts,
        # run synchronously in trace order.
        dedicated = _shards(ctx, routine_bundles, compiled)
        expected = [dedicated[routine_of(item.spec)].run(item.spec).n_threads
                    for item in trace]
        got = outcome.thread_choices()
        assert got == expected, f"{label} path diverged from single-routine"

        for routine, entry in sorted(server.telemetry.routine_stats().items()):
            parity_rows.append({
                "path": label, "routine": routine,
                "served": entry["served"],
                "p99_ms": entry["latency_ms"]["p99_ms"],
                "bitwise_parity": "yes"})

    # Compiled and object paths agree with each other too (transitive,
    # but assert it directly — it is the engine's core guarantee).
    assert outcomes["compiled"][0].thread_choices() == \
        outcomes["object"][0].thread_choices()

    report = "\n\n".join([
        format_table(rows, title=f"mixed-routine serve replay "
                                 f"({N_REQUESTS} requests @ {RATE_HZ:g}/s, "
                                 f"{len(routine_names())} routines)"),
        format_table(parity_rows,
                     title="per-routine selections vs dedicated path"),
    ])
    save_result("routine_throughput", report)
    for label, (outcome, server) in outcomes.items():
        row = outcome.report_row()
        save_bench_json("routine", f"mixed_{label}", {
            "req_per_s": row["req_per_s"],
            "p50_ms": row.get("p50_ms"),
            "p95_ms": row.get("p95_ms"),
            "served": row["served"],
            "model_passes": row["model_passes"],
            "routines": {
                routine: entry["served"] for routine, entry
                in sorted(server.telemetry.routine_stats().items())}})

    # Every routine genuinely participated and was answered by its own
    # model (one model pass minimum per routine shard).
    stats = outcomes["compiled"][1].stats()
    for routine in routine_names():
        assert stats["shards"][routine]["model_passes"] >= 1
        assert stats["routines"][routine]["served"] > 0
