"""Engine extension — compiled-plan prediction latency.

Not a paper figure: this experiment quantifies the compiled-inference
win on the model the paper shows being *erased* by evaluation cost — the
random forest of Tables III/IV, whose object path pays a full vectorised
traversal per tree per batch.  The compiled plan packs every tree into
one node array walked for all trees at once and folds the preprocessing
into a fused pass, so the same batch costs a handful of large-array
numpy calls instead of thousands of tiny ones.

The acceptance bar: compiled batch prediction at least 3x faster than
the object path on a forest bundle, with every thread choice bitwise
identical.  Smoke mode for CI: ``PREDICT_BENCH_SMOKE=1`` shrinks the
installation and the shape set.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.report import format_table

SMOKE = os.environ.get("PREDICT_BENCH_SMOKE") == "1"
MB = 1024 * 1024

N_SHAPES = 96 if SMOKE else 256    # distinct query shapes
BATCH = 32                         # shapes per predict_threads_batch call
REPEATS = 3 if SMOKE else 5        # timed passes (best wins)


def _forest_bundle():
    """A Random-Forest-only installation (the slow-to-evaluate model)."""
    from repro.core.training import InstallationWorkflow
    from repro.machine.presets import by_name
    from repro.machine.simulator import MachineSimulator
    from repro.ml.registry import candidate_models

    sim = MachineSimulator(by_name("tiny" if SMOKE else "gadi"), seed=0)
    cands = [c for c in candidate_models(budget="fast")
             if c.name == "Random Forest"]
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=(8 if SMOKE else 100) * MB,
        n_shapes=60 if SMOKE else 150, candidates=cands,
        tune_iters=1, cv_folds=2, repeats=3, seed=0)
    return workflow.run()


def _distinct_shapes(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    shapes = set()
    while len(shapes) < n:
        shapes.add(tuple(int(x) for x in rng.integers(16, 4096, 3)))
    return sorted(shapes)


def _best_pass_seconds(predictor, shapes, repeats: int) -> float:
    def one_pass() -> float:
        predictor.invalidate_memo()
        t0 = time.perf_counter()
        for start in range(0, len(shapes), BATCH):
            predictor.predict_threads_batch(shapes[start:start + BATCH])
        return time.perf_counter() - t0

    one_pass()  # warm-up
    return min(one_pass() for _ in range(repeats))


def test_compiled_forest_latency(save_result, save_bench_json):
    bundle = _forest_bundle()
    shapes = _distinct_shapes(N_SHAPES)
    obj = bundle.predictor(cache_size=1, compiled=False)
    comp = bundle.predictor(cache_size=1, compiled=True)

    # Parity first: the speedup is only meaningful if choices agree.
    obj.invalidate_memo()
    comp.invalidate_memo()
    np.testing.assert_array_equal(obj.predict_threads_batch(shapes),
                                  comp.predict_threads_batch(shapes))

    t_obj = _best_pass_seconds(obj, shapes, REPEATS)
    t_comp = _best_pass_seconds(comp, shapes, REPEATS)
    speedup = t_obj / t_comp

    plan = bundle.plan.describe()
    rows = [
        {"path": "object", "per_shape_us":
            round(t_obj / len(shapes) * 1e6, 2),
         "total_ms": round(t_obj * 1e3, 3), "speedup": 1.0},
        {"path": "compiled", "per_shape_us":
            round(t_comp / len(shapes) * 1e6, 2),
         "total_ms": round(t_comp * 1e3, 3),
         "speedup": round(speedup, 2)},
    ]
    arrays = plan["model_arrays"]
    save_result("predict_latency", format_table(
        rows, title=f"forest predict latency, batch {BATCH} "
                    f"({arrays['n_trees']} trees, "
                    f"{arrays['n_nodes']} packed nodes)"))
    save_bench_json("predict", "compiled_forest", {
        "object_per_shape_us": rows[0]["per_shape_us"],
        "compiled_per_shape_us": rows[1]["per_shape_us"],
        "speedup": round(speedup, 2),
        "n_shapes": len(shapes), "batch": BATCH})

    assert plan["fully_lowered"]
    assert speedup >= 3.0, (
        f"compiled path only {speedup:.2f}x faster "
        f"({t_obj * 1e3:.1f} ms vs {t_comp * 1e3:.1f} ms)")
