"""Fig. 7 — core-based vs thread-based affinity on both platforms.

Paper finding: core-based placement (``OMP_PLACES=cores``) is faster
whenever the team is below roughly half the logical CPU count, and the
two policies converge at the maximum.
"""

import numpy as np

from repro.gemm.interface import GemmSpec
from repro.machine.affinity import AffinityPolicy
from repro.sampling.domain import GemmDomainSampler

MB = 1024 * 1024


def _affinity_curves(ctx, machine):
    sim = ctx.simulator(machine)
    shapes = GemmDomainSampler(memory_cap_bytes=500 * MB, seed=42).sample(25)
    max_t = sim.max_threads()
    grid = sorted({1, 2, 4, 8, max_t // 8, max_t // 4, max_t // 2,
                   3 * max_t // 4, max_t})
    rows = []
    for p in grid:
        t_cores = np.mean([sim.true_time(s, p, affinity=AffinityPolicy.CORES)
                           for s in shapes])
        t_threads = np.mean([sim.true_time(s, p, affinity=AffinityPolicy.THREADS)
                             for s in shapes])
        rows.append((p, t_cores, t_threads))
    return rows


def test_fig07_affinity_comparison(benchmark, ctx, save_result):
    curves = {"setonix": _affinity_curves(ctx, "setonix"),
              "gadi": benchmark(_affinity_curves, ctx, "gadi")}

    lines = ["Fig 7: mean GEMM time (ms), core-based vs thread-based affinity"]
    for machine, rows in curves.items():
        lines.append(f"-- {machine}")
        lines.append(f"{'threads':>8} {'cores-based':>12} {'thread-based':>13} {'ratio':>7}")
        for p, tc, tt in rows:
            lines.append(f"{p:8d} {tc * 1e3:12.3f} {tt * 1e3:13.3f} {tt / tc:7.2f}")
    save_result("fig07_affinity", "\n".join(lines))

    for machine, rows in curves.items():
        max_t = rows[-1][0]
        for p, t_cores, t_threads in rows:
            if p <= max_t // 2 and p > 1:
                # Core-based wins below half the logical CPUs.
                assert t_cores <= t_threads * 1.01, (machine, p)
        # Policies converge at the maximum thread count.
        p, tc, tt = rows[-1]
        assert abs(tt - tc) / tc < 0.05, (machine, p)
