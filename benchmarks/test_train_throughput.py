"""Training extension — parallel tuning wall-clock vs the serial path.

Not a paper figure: this experiment quantifies what the staged
training pipeline adds to the offline path.  One small gathered
campaign is installed twice through the identical pipeline — once with
``n_jobs=1`` and once fanned across worker processes — and the
comparison reports tuning wall-clock, the speedup at each worker
count, and (the correctness acceptance) that every worker count
selected a bitwise-identical model.

Smoke mode for CI: ``TRAIN_BENCH_SMOKE=1`` enables the run (mirroring
``SERVE_BENCH_SMOKE``); the speedup floor is only asserted when the
host actually has the cores to parallelise onto.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.bench.report import format_table
from repro.core.gather import DataGatherer
from repro.core.training import InstallationWorkflow
from repro.machine.presets import by_name
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models

SMOKE = os.environ.get("TRAIN_BENCH_SMOKE") == "1"
pytestmark = pytest.mark.skipif(
    not SMOKE, reason="training benchmark is opt-in: TRAIN_BENCH_SMOKE=1")

MB = 1024 * 1024
GRID = [1, 2, 4, 8, 12, 16]
N_JOBS = 4
#: Enough CV work per candidate that fan-out dominates pool overhead.
TUNE_ITERS, CV_FOLDS = 4, 3
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="module")
def campaign():
    sim = MachineSimulator(by_name("tiny"), seed=0)
    gatherer = DataGatherer(sim, thread_grid=GRID, repeats=2)
    return gatherer.gather(n_shapes=60, memory_cap_bytes=16 * MB, seed=0)


def _install(data, n_jobs: int, executor: str):
    sim = MachineSimulator(by_name("tiny"), seed=0)
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=16 * MB, n_shapes=60, thread_grid=GRID,
        candidates=candidate_models(budget="fast"),
        tune_iters=TUNE_ITERS, cv_folds=CV_FOLDS, repeats=2, seed=0,
        eval_time_s=1e-5, n_jobs=n_jobs, executor=executor)
    t0 = time.perf_counter()
    bundle = workflow.run(data)
    return bundle, time.perf_counter() - t0


def test_parallel_tuning_speedup(campaign, save_bench_json):
    serial_bundle, serial_s = _install(campaign, n_jobs=1,
                                       executor="thread")
    parallel_bundle, parallel_s = _install(campaign, n_jobs=N_JOBS,
                                           executor="process")
    speedup = serial_s / parallel_s

    rows = [
        {"mode": "serial", "workers": 1, "wall_s": round(serial_s, 3),
         "speedup": 1.0, "selected": serial_bundle.report.selected},
        {"mode": "parallel", "workers": N_JOBS,
         "wall_s": round(parallel_s, 3), "speedup": round(speedup, 2),
         "selected": parallel_bundle.report.selected},
    ]
    table = format_table(rows, title="training pipeline tuning wall-clock")
    print()
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "train_throughput.txt"), "w") as fh:
        fh.write(table + "\n")
    save_bench_json("train", "tuning_serial", {
        "wall_s": round(serial_s, 3), "workers": 1,
        "selected": serial_bundle.report.selected})
    save_bench_json("train", "tuning_parallel", {
        "wall_s": round(parallel_s, 3), "workers": N_JOBS,
        "speedup": round(speedup, 2),
        "selected": parallel_bundle.report.selected})

    # Correctness before speed: any worker count, same model — bitwise.
    assert parallel_bundle.report.selected == serial_bundle.report.selected
    assert pickle.dumps(parallel_bundle.model) \
        == pickle.dumps(serial_bundle.model)

    cores = os.cpu_count() or 1
    if cores >= N_JOBS:
        assert speedup >= 2.0, (
            f"parallel tuning at {N_JOBS} workers on {cores} cores "
            f"achieved only {speedup:.2f}x over serial")
    else:
        print(f"(host has {cores} core(s): the >= 2x floor needs "
              f">= {N_JOBS}; recording {speedup:.2f}x without asserting)")
