"""Table VII — profiler breakdown of the two pathological GEMMs on Gadi.

Paper: (m,k,n) = (64, 2048, 64) and (64, 64, 4096), each repeated 1000
times, profiled at 96 threads (default) and at the ML-selected count.
The data copy dominates the 96-thread wall time; the ML choice removes
nearly all sync/copy cost and wins by 81.6x and 33.9x respectively.
"""

import pytest

from repro.bench.report import format_table
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor
from repro.gemm.interface import GemmSpec
from repro.machine.profile import profile_gemm

CASES = [GemmSpec(64, 2048, 64), GemmSpec(64, 64, 4096)]


def _profiles(ctx, bundle):
    sim = ctx.simulator("gadi")
    predictor = ThreadPredictor(FeatureBuilder(bundle.config.feature_groups),
                                bundle.pipeline, bundle.model,
                                bundle.config.thread_grid)
    reports = []
    for spec in CASES:
        p_ml = predictor.predict_threads(spec.m, spec.k, spec.n)
        reports.append((profile_gemm(sim, spec, 96, repetitions=1000),
                        profile_gemm(sim, spec, p_ml, repetitions=1000)))
    return reports


def test_table7_profiler_breakdown(benchmark, ctx, save_result, gadi_prod_bundle):
    reports = benchmark(_profiles, ctx, gadi_prod_bundle)

    rows = []
    for default, ml in reports:
        label = f"{default.spec.m},{default.spec.k},{default.spec.n}"
        rows.append(default.row(f"{label} no ML"))
        rows.append(ml.row(f"{label} with ML"))
    save_result("table7_profile",
                format_table(rows, title="Table VII: profiling on Gadi, "
                                          "1000 repetitions (seconds)"))

    for default, ml in reports:
        # The ML choice is far below the maximum thread count...
        assert ml.n_threads < 96 // 2
        # ...and wins big (paper: 81.6x and 33.9x).
        assert default.total / ml.total > 5.0
        # At 96 threads the data copy dominates the wall time.
        assert default.copy > default.kernel
        assert default.copy > default.sync

    # Case 2's paper-selected count is 1 thread: sync and copy vanish.
    _, ml_case2 = reports[1]
    if ml_case2.n_threads == 1:
        assert ml_case2.sync == 0.0 and ml_case2.copy == 0.0
