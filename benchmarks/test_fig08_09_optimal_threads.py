"""Figs. 8 & 9 — structure of the optimal thread count (Setonix & Gadi).

Fig. 8: for shapes with at least one dimension below 1000, the fastest
thread count tends to be less than half the maximum (Setonix, 500 MB).
Fig. 9: heatmaps of the optimal thread count over (m, k, n); large
squarish shapes want roughly half the maximum (i.e. all physical cores),
small/skinny shapes far fewer.
"""

import numpy as np

from benchmarks.conftest import GADI_GRID, SETONIX_GRID
from repro.bench.report import ascii_histogram, heatmap_summary


def _campaign(ctx, machine, grid):
    return ctx.dataset(machine, n_shapes=200, memory_cap_mb=500,
                       thread_grid=grid)


def test_fig08_small_dim_histogram(benchmark, ctx, save_result):
    data = _campaign(ctx, "setonix", SETONIX_GRID)
    filtered = benchmark(data.min_dim_below, 1000)
    _, best_t, _, _ = filtered.optimal_threads()

    text = ascii_histogram(
        best_t, bins=12,
        title="Fig 8: optimal threads, min(m,k,n) < 1000 (Setonix, 500 MB)")
    save_result("fig08_hist_small_dim", text)

    # Paper: "the fastest number of threads tends to be less than half
    # of the maximum available number" (max = 256).
    assert float(np.mean(best_t < 128)) > 0.6
    assert float(np.median(best_t)) < 128


def test_fig09_optimal_thread_heatmaps(benchmark, ctx, save_result):
    sections = []
    results = {}
    for machine, grid in (("setonix", SETONIX_GRID), ("gadi", GADI_GRID)):
        data = _campaign(ctx, machine, grid)
        if machine == "setonix":
            shapes, best_t, _, _ = benchmark(data.optimal_threads)
        else:
            shapes, best_t, _, _ = data.optimal_threads()
        results[machine] = (shapes, best_t)
        sections.append(f"== Fig 9 ({machine}): optimal threads over (m, k) ==")
        sections.append(heatmap_summary(
            shapes[:, 0], shapes[:, 1], best_t.astype(float),
            x_label="m", y_label="k", value_label="optimal threads"))
    save_result("fig09_optimal_heatmap", "\n".join(sections))

    for machine, (shapes, best_t) in results.items():
        max_t = max(SETONIX_GRID) if machine == "setonix" else max(GADI_GRID)
        phys = max_t // 2
        size = shapes.prod(axis=1).astype(float)
        aspect = shapes.max(axis=1) / shapes.min(axis=1)
        big_square = (size > np.quantile(size, 0.75)) & (aspect < 20)
        small = size < np.quantile(size, 0.25)
        if big_square.any() and small.any():
            # Large squarish shapes want far more threads than small ones,
            # landing near the physical core count ("half the maximum").
            assert np.median(best_t[big_square]) >= 3 * np.median(best_t[small]), machine
            assert np.median(best_t[big_square]) >= phys // 2, machine
