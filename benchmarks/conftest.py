"""Shared fixtures for the paper-reproduction benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The
expensive artefacts (timing campaigns, trained installations) are cached
process-wide in :class:`repro.bench.runner.ExperimentContext`, so the
pytest-benchmark timings measure the per-experiment analysis, not
redundant re-training.

Rendered tables/figures are written to ``benchmarks/results/<name>.txt``
so the reproduction output survives alongside ``bench_output.txt``.

Reproduction settings (documented deviations in DESIGN.md):

* ``budget="fast"`` — ensemble sizes scaled down from the paper's
  defaults so the whole suite runs in minutes on a laptop.
* ``label_transform="identity"`` — the paper regresses raw runtime.
* ``eval_time_scale=0.025`` — models the paper's compiled C++ runtime
  evaluation; our interpreted predict path is ~40x slower than the
  deployment the paper measures.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.runner import ExperimentContext

MB = 1024 * 1024
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Candidate thread counts per platform (trimmed grids keeping the
#: endpoints and the structure visible in the paper's histograms).
SETONIX_GRID = [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 224, 256]
GADI_GRID = [1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 80, 96]

#: Shared installation settings for the reproduction bundles.
INSTALL_SETTINGS = dict(
    n_shapes=200,
    memory_cap_mb=500,
    budget="fast",
    label_transform="identity",
    eval_time_scale=0.025,
    tune_iters=2,
    cv_folds=2,
)


def grid_for(machine: str):
    return SETONIX_GRID if machine == "setonix" else GADI_GRID


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.get()


@pytest.fixture(scope="session")
def setonix_bundle(ctx):
    return ctx.bundle("setonix", thread_grid=SETONIX_GRID, **INSTALL_SETTINGS)


@pytest.fixture(scope="session")
def gadi_bundle(ctx):
    return ctx.bundle("gadi", thread_grid=GADI_GRID, **INSTALL_SETTINGS)


def _production_bundle(ctx, machine: str, hyperthreading: bool = True):
    """The deployment configuration used for end-to-end speedup
    experiments: log labels (the library default — scale-free loss over
    the us..s runtime range) and the tree-family shortlist the paper's
    selection converges to.  The identity-label bundles above exist to
    reproduce the Tables III/IV accuracy comparison in the paper's
    literal raw-runtime setup.
    """
    from repro.core.training import InstallationWorkflow
    from repro.ml.registry import candidate_models

    sim = ctx.simulator(machine, hyperthreading=hyperthreading)
    grid = [t for t in grid_for(machine) if t <= sim.max_threads(hyperthreading)]
    cands = [c for c in candidate_models(budget="fast")
             if c.name in ("XGBoost", "LightGBM", "Random Forest")]
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=500 * MB, n_shapes=200, thread_grid=grid,
        label_transform="log", candidates=cands, tune_iters=2, cv_folds=2,
        eval_time_scale=0.025, seed=0)
    return workflow.run()


@pytest.fixture(scope="session")
def setonix_prod_bundle(ctx):
    return _production_bundle(ctx, "setonix")


@pytest.fixture(scope="session")
def gadi_prod_bundle(ctx):
    return _production_bundle(ctx, "gadi")


@pytest.fixture(scope="session")
def setonix_prod_bundle_noht(ctx):
    return _production_bundle(ctx, "setonix", hyperthreading=False)


@pytest.fixture(scope="session")
def gadi_prod_bundle_noht(ctx):
    return _production_bundle(ctx, "gadi", hyperthreading=False)


@pytest.fixture(scope="session")
def save_result():
    """Write one experiment's rendered output to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def save_bench_json():
    """Merge one experiment's metrics into ``BENCH_<suite>.json``.

    The machine-readable companion of :func:`save_result`: one JSON
    file per suite under ``benchmarks/results/``, one entry per
    experiment, merged rather than overwritten so the serve and predict
    benchmarks accumulate into a single artefact CI can upload and diff
    across runs.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(suite: str, entry: str, metrics: dict) -> str:
        path = os.path.join(RESULTS_DIR, f"BENCH_{suite}.json")
        data = {}
        if os.path.exists(path):
            with open(path) as fh:
                data = json.load(fh)
        data[entry] = metrics
        with open(path + ".tmp", "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
        os.replace(path + ".tmp", path)
        return path

    return _save


def measured_speedups(ctx, machine: str, bundle, memory_cap_mb: int,
                      n_shapes: int = 174, hyperthreading: bool = True,
                      seed: int = 12345) -> np.ndarray:
    """Per-GEMM speedups of ADSALA over the max-thread baseline.

    The paper's Section VI-C protocol: a fresh scrambled-Halton test set,
    measured (noisy) runtimes, speedup inclusive of model evaluation
    time.  With ``hyperthreading=False`` the candidate grid and the
    baseline are restricted to physical cores, as in Table VI.
    """
    from repro.core.predictor import ThreadPredictor
    from repro.core.features import FeatureBuilder

    sim = ctx.simulator(machine, hyperthreading=hyperthreading)
    grid = [t for t in bundle.config.thread_grid
            if t <= sim.max_threads(hyperthreading)]
    predictor = ThreadPredictor(
        FeatureBuilder(bundle.config.feature_groups), bundle.pipeline,
        bundle.model, grid)
    eval_time = predictor.measure_eval_time() * 0.025
    shapes = ctx.fresh_test_shapes(memory_cap_mb, n=n_shapes, seed=seed)
    speedups = []
    for spec in shapes:
        p = predictor.predict_threads(spec.m, spec.k, spec.n)
        t_ml = sim.timed_run(spec, p, repeats=10,
                             hyperthreading=hyperthreading)
        t_base = sim.timed_run(spec, max(grid), repeats=10,
                               hyperthreading=hyperthreading)
        speedups.append(t_base / (t_ml + eval_time))
    return np.asarray(speedups)
