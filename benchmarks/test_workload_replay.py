"""Extension — end-to-end application workload replays.

The paper motivates ADSALA with application GEMM streams; these replays
measure what an application sees: cumulative wall-time over a realistic
call sequence, including memoisation effects, versus the static
max-thread configuration.
"""

from repro.bench.workloads import mixed_hpc, replay, resnet_inference, scf_iterations
from repro.core.library import AdsalaGemm


def _replay_all(ctx, bundle):
    sim = ctx.simulator("setonix")
    traces = [resnet_inference(batches=8), scf_iterations(iterations=4),
              mixed_hpc(n_calls=40, memory_cap_mb=200)]
    results = []
    for trace in traces:
        with AdsalaGemm(bundle, sim) as gemm:
            results.append(replay(trace, gemm))
    return results


def test_workload_replays(benchmark, ctx, save_result, setonix_prod_bundle):
    results = benchmark.pedantic(_replay_all, args=(ctx, setonix_prod_bundle),
                                 rounds=1, iterations=1)

    lines = ["Extension: application workload replays (Setonix)",
             f"{'trace':>22} {'calls':>6} {'uniq':>5} {'ADSALA ms':>10} "
             f"{'baseline ms':>12} {'speedup':>8} {'memo':>6}"]
    for r in results:
        lines.append(f"{r.trace.name:>22} {len(r.trace):6d} "
                     f"{r.trace.unique_shapes:5d} "
                     f"{r.adsala_seconds * 1e3:10.2f} "
                     f"{r.baseline_seconds * 1e3:12.2f} "
                     f"{r.speedup:7.2f}x {r.memo_hit_rate:6.1%}")
    save_result("workload_replay", "\n".join(lines))

    by_name = {r.trace.name: r for r in results}
    # Every workload gains end-to-end.
    for r in results:
        assert r.speedup > 1.0, r.trace.name
    # The batched DL trace exploits memoisation heavily...
    resnet = next(r for r in results if "resnet" in r.trace.name)
    assert resnet.memo_hit_rate > 0.5
    # ...while the all-distinct HPC mix cannot.
    mixed = next(r for r in results if r.trace.name == "mixed_hpc")
    assert mixed.memo_hit_rate == 0.0
    # The skinny DL shapes gain much more than the mixed stream's
    # aggregate (the paper's small-irregular-GEMM motivation).
    assert resnet.speedup > mixed.speedup * 0.8
