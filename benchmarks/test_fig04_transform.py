"""Fig. 4 — feature distributions before/after Yeo-Johnson (Setonix, 500 MB).

Paper finding: the sampled GEMM feature distributions are heavily skewed;
the Yeo-Johnson transform with MLE lambdas maps them to near-Gaussian.
"""

import numpy as np

from benchmarks.conftest import SETONIX_GRID
from repro.core.features import FeatureBuilder
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer


def _skew(col):
    c = col - col.mean()
    s2 = np.mean(c ** 2)
    return float(np.mean(c ** 3) / s2 ** 1.5) if s2 > 0 else 0.0


def _fit_transform(ctx):
    data = ctx.dataset("setonix", n_shapes=200, memory_cap_mb=500,
                       thread_grid=SETONIX_GRID)
    X = FeatureBuilder("both").build(data.m, data.k, data.n, data.threads)
    tf = YeoJohnsonTransformer().fit(X)
    return X, tf.transform(X), tf


def test_fig04_yeo_johnson_normalises_features(benchmark, ctx, save_result):
    X, Z, tf = benchmark(_fit_transform, ctx)

    names = FeatureBuilder("both").names
    lines = ["Fig 4: feature skewness before/after Yeo-Johnson (Setonix, 500 MB)",
             f"{'feature':>18} {'skew before':>12} {'skew after':>11} {'lambda':>8}"]
    before_abs, after_abs = [], []
    for j, name in enumerate(names):
        b, a = _skew(X[:, j]), _skew(Z[:, j])
        before_abs.append(abs(b))
        after_abs.append(abs(a))
        lines.append(f"{name:>18} {b:12.2f} {a:11.2f} {tf.lambdas_[j]:8.3f}")
    save_result("fig04_transform", "\n".join(lines))

    # Paper shape: most raw features are strongly right-skewed...
    assert np.median(before_abs) > 1.0
    # ...and the transform collapses the skew toward Gaussian.
    assert np.median(after_abs) < 0.5
    assert np.mean(np.asarray(after_abs) < np.asarray(before_abs)) > 0.7
