"""Figs. 11 & 12 — GFLOPS by memory bucket, baseline vs ML (both platforms).

Paper findings: ~30% throughput gain in the 0-100 MB bucket on both
platforms; on Setonix the advantage persists across the whole 0-500 MB
range, while on Gadi it fades toward parity as footprints grow.
"""

import numpy as np
import pytest

from repro.bench.gflops import bucket_gflops
from repro.bench.report import format_table
from repro.core.features import FeatureBuilder
from repro.core.predictor import ThreadPredictor


def _gflops_buckets(ctx, machine, bundle):
    sim = ctx.simulator(machine)
    predictor = ThreadPredictor(FeatureBuilder(bundle.config.feature_groups),
                                bundle.pipeline, bundle.model,
                                bundle.config.thread_grid)
    shapes = ctx.fresh_test_shapes(500, n=174, seed=12345)
    max_t = max(bundle.config.thread_grid)
    mem, flops, t_base, t_ml = [], [], [], []
    for spec in shapes:
        p = predictor.predict_threads(spec.m, spec.k, spec.n)
        mem.append(spec.memory_mb)
        flops.append(spec.flops)
        t_base.append(sim.timed_run(spec, max_t, repeats=10))
        t_ml.append(sim.timed_run(spec, p, repeats=10))
    return bucket_gflops(mem, flops, t_base, t_ml)


@pytest.mark.parametrize("platform", ["setonix", "gadi"])
def test_figs_11_12_gflops_by_bucket(platform, benchmark, ctx, save_result,
                                     setonix_prod_bundle, gadi_prod_bundle):
    bundle = setonix_prod_bundle if platform == "setonix" else gadi_prod_bundle
    buckets = benchmark.pedantic(_gflops_buckets, args=(ctx, platform, bundle),
                                 rounds=1, iterations=1)

    fig = "11" if platform == "setonix" else "12"
    rows = [{"bucket (MB)": b.label, "n": b.n,
             "baseline GFLOPS": round(b.baseline_gflops, 1),
             "ML GFLOPS": round(b.ml_gflops, 1),
             "ratio": round(b.speedup, 2)} for b in buckets]
    save_result(f"fig{fig}_gflops_{platform}",
                format_table(rows, title=f"Fig {fig} ({platform}): GFLOPS "
                                         "baseline (max threads) vs ML"))

    populated = [b for b in buckets if b.n > 0]
    assert len(populated) >= 3
    # ML never loses throughput in aggregate in any bucket...
    for b in populated:
        assert b.speedup > 0.95, b.label
    # ...and the 0-100 MB bucket shows a clear gain (paper: ~30%).
    assert populated[0].speedup > 1.15
    if platform == "gadi":
        # Gadi's advantage fades as the footprint grows (converges to 1).
        assert populated[-1].speedup < populated[0].speedup
