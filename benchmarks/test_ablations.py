"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each ablation switches off one
ingredient of the ADSALA recipe and measures the effect on the selected
model's accuracy / estimated speedup on the Gadi platform.
"""

import numpy as np
import pytest

from benchmarks.conftest import GADI_GRID, INSTALL_SETTINGS
from repro.bench.report import format_table
from repro.core.training import InstallationWorkflow
from repro.machine.presets import gadi
from repro.machine.simulator import MachineSimulator
from repro.ml.registry import candidate_models
from repro.sampling.domain import GemmDomainSampler
from repro.sampling.halton import halton_sequence

MB = 1024 * 1024


def _install(variant_kwargs, n_shapes=120):
    """A reduced two-candidate installation for ablation comparisons."""
    sim = MachineSimulator(gadi(), seed=0)
    cands = [c for c in candidate_models(budget="fast")
             if c.name in ("Linear Regression", "XGBoost")]
    kwargs = dict(thread_grid=GADI_GRID, candidates=cands, tune_iters=2,
                  cv_folds=2, eval_time_scale=0.025, seed=0)
    kwargs.update(variant_kwargs)
    workflow = InstallationWorkflow(sim, memory_cap_bytes=500 * MB,
                                    n_shapes=n_shapes, **kwargs)
    return workflow.run()


def _xgb_row(bundle):
    return bundle.report.row("XGBoost")


class TestFeatureSetAblation:
    """Table II features vs raw (m, k, n, p): the engineered features
    should help the regressor, especially the parallel Group 2 terms."""

    def test_ablation_feature_groups(self, benchmark, save_result):
        variants = {}
        for groups in ("both", "group1", "raw"):
            variants[groups] = benchmark.pedantic(
                _install, args=({"feature_groups": groups},),
                rounds=1, iterations=1) if groups == "both" else _install(
                    {"feature_groups": groups})

        rows = []
        for name, bundle in variants.items():
            r = _xgb_row(bundle)
            rows.append({"features": name,
                         "xgb_nrmse": round(r.nrmse, 3),
                         "xgb_ideal_mean_speedup": round(r.speedup.ideal_mean, 2)})
        save_result("ablation_features",
                    format_table(rows, title="Ablation: feature sets"))

        # Engineered features never hurt the speedup materially.
        full = _xgb_row(variants["both"]).speedup.ideal_mean
        raw = _xgb_row(variants["raw"]).speedup.ideal_mean
        assert full >= 0.8 * raw
        # And all variants still beat always-max.
        for name, bundle in variants.items():
            assert _xgb_row(bundle).speedup.ideal_mean > 1.0, name


class TestLabelTransformAblation:
    """Log labels equalise the loss across the us..s runtime range; the
    identity labels (the paper's literal setup) concentrate it on the
    slowest shapes."""

    def test_ablation_label_transform(self, benchmark, save_result):
        variants = {"identity": benchmark.pedantic(
            _install, args=({"label_transform": "identity"},),
            rounds=1, iterations=1)}
        for label in ("sqrt", "log"):
            variants[label] = _install({"label_transform": label})

        rows = [{"label": name,
                 "xgb_nrmse(label-space)": round(_xgb_row(b).nrmse, 3),
                 "xgb_ideal_mean_speedup": round(_xgb_row(b).speedup.ideal_mean, 2)}
                for name, b in variants.items()]
        save_result("ablation_label_transform",
                    format_table(rows, title="Ablation: label transform"))

        for name, bundle in variants.items():
            assert _xgb_row(bundle).speedup.ideal_mean > 1.0, name


class TestPreprocessingAblations:
    def test_ablation_yeo_johnson_and_lof(self, benchmark, save_result):
        base = benchmark.pedantic(_install, args=({},), rounds=1, iterations=1)
        no_yj = _install({"use_yeo_johnson": False})
        no_lof = _install({"use_lof": False})

        rows = [{"variant": name, "xgb_nrmse": round(_xgb_row(b).nrmse, 3),
                 "selected": b.report.selected}
                for name, b in (("full pipeline", base),
                                ("no Yeo-Johnson", no_yj),
                                ("no LOF", no_lof))]
        save_result("ablation_preprocessing",
                    format_table(rows, title="Ablation: preprocessing stages"))

        # The pipeline variants all train something useful; removing a
        # stage must not catastrophically break the workflow.
        for name, bundle in (("no-yj", no_yj), ("no-lof", no_lof)):
            assert _xgb_row(bundle).speedup.ideal_mean > 1.0, name


class TestSamplingAblation:
    """Scrambled Halton vs iid uniform sampling: the low-discrepancy set
    should cover the shape domain at least as evenly (measured by the
    dispersion of nearest-neighbour distances in log-shape space)."""

    def test_ablation_sampling_dispersion(self, benchmark, save_result):
        sampler = GemmDomainSampler(memory_cap_bytes=500 * MB, seed=0)
        halton_specs = benchmark(sampler.sample, 150)
        sobol_specs = GemmDomainSampler(memory_cap_bytes=500 * MB, seed=0,
                                        sequence="sobol").sample(150)

        rng = np.random.default_rng(0)
        lo, hi = np.sqrt(sampler.dim_min), np.sqrt(sampler.dim_max)
        uniform_specs = []
        while len(uniform_specs) < 150:
            dims = np.round((lo + rng.random(3) * (hi - lo)) ** 2).astype(int)
            from repro.gemm.counts import gemm_memory_bytes
            if gemm_memory_bytes(*np.maximum(dims, 1)) <= 500 * MB:
                from repro.gemm.interface import GemmSpec
                uniform_specs.append(GemmSpec(*np.maximum(dims, 1)))

        def nn_dispersion(specs):
            pts = np.log(np.array([s.dims for s in specs], dtype=float))
            d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1)
            np.fill_diagonal(d2, np.inf)
            nn = np.sqrt(d2.min(axis=1))
            return float(nn.std() / nn.mean())

        h = nn_dispersion(halton_specs)
        s = nn_dispersion(sobol_specs)
        u = nn_dispersion(uniform_specs)
        save_result("ablation_sampling",
                    f"Ablation: sampling regularity (lower = more even)\n"
                    f"scrambled Halton nn-dispersion: {h:.3f}\n"
                    f"scrambled Sobol nn-dispersion:  {s:.3f}\n"
                    f"iid uniform nn-dispersion:      {u:.3f}")
        # Both low-discrepancy families are no less even than iid uniform.
        assert h <= u * 1.1
        assert s <= u * 1.2


class TestMemoisationAblation:
    """Prediction memoisation removes the per-call model evaluation for
    repeated shapes (the paper's loop-workload optimisation)."""

    def test_ablation_memoisation_overhead(self, benchmark, save_result,
                                           gadi_bundle):
        import time

        predictor = gadi_bundle.predictor()

        def repeated_calls(memoise):
            if not memoise:
                predictor.invalidate_memo()
            total = 0
            for _ in range(50):
                if not memoise:
                    predictor.invalidate_memo()
                total += predictor.predict_threads(256, 256, 256)
            return total

        def timed(memoise, rounds=5):
            best = float("inf")
            for _ in range(rounds):
                t0 = time.perf_counter()
                repeated_calls(memoise)
                best = min(best, time.perf_counter() - t0)
            return best

        without = timed(memoise=False)
        with_memo = timed(memoise=True)
        benchmark(repeated_calls, True)  # timing table entry (memoised path)

        save_result("ablation_memoise",
                    f"Ablation: 50 repeated predictions for one shape "
                    f"(best of 5 rounds)\n"
                    f"without memoisation: {without * 1e3:.3f} ms\n"
                    f"with memoisation:    {with_memo * 1e3:.3f} ms\n"
                    f"saving: {without / with_memo:.1f}x")
        assert with_memo < without
