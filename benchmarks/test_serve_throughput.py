"""Serving extension — micro-batched replay vs per-request serving.

Not a paper figure: this experiment quantifies what the serving
subsystem adds on top of the engine.  A Poisson-arrival request trace
is replayed twice through :class:`repro.serve.server.GemmServer` over
the same installed artefacts — once with dynamic micro-batching
(window/size scheduler) and once degenerated to one-request batches —
and the comparison reports sustained requests/second, the batch-size
distribution, latency percentiles (p50/p95/p99 through the shared
:func:`repro.bench.stats.latency_summary` helper) and, the acceptance
metric, the number of model passes each mode paid.

Smoke mode for CI: ``SERVE_BENCH_SMOKE=1`` shrinks the installation and
the trace so scheduler regressions fail fast without a full campaign.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.report import batch_size_table, format_table, latency_table
from repro.engine import GemmService
from repro.gemm.interface import GemmSpec
from repro.serve import GemmServer, poisson_trace, replay_trace

SMOKE = os.environ.get("SERVE_BENCH_SMOKE") == "1"
N_POOL = 30 if SMOKE else 120          # distinct shapes in the trace
N_REQUESTS = 90 if SMOKE else 360      # trace length (pool cycles => repeats)
RATE_HZ = 1500.0                       # Poisson arrival rate
MAX_BATCH = 32
MAX_WAIT_MS = 5.0


def _spec_pool(n: int, seed: int = 0) -> list:
    """Deterministic distinct shapes (the cache can't absorb the pool)."""
    rng = np.random.default_rng(seed)
    shapes = set()
    while len(shapes) < n:
        m, k, n_dim = (int(x) for x in rng.integers(16, 2048, size=3))
        shapes.add((m, k, n_dim))
    return [GemmSpec(m, k, n_dim) for m, k, n_dim in sorted(shapes)]


@pytest.fixture(scope="module")
def serve_bundle(ctx, request):
    if SMOKE:
        return ctx.bundle("gadi", n_shapes=50, memory_cap_mb=100,
                          budget="fast", label_transform="log",
                          tune_iters=1, cv_folds=2, eval_time_scale=0.025)
    return request.getfixturevalue("gadi_prod_bundle")


def _replay(ctx, bundle, trace, *, max_batch: int, max_wait_ms: float):
    service = GemmService.from_bundle(bundle, ctx.simulator("gadi"),
                                      cache_size=2 * N_POOL)
    server = GemmServer(service, max_batch=max_batch,
                        max_wait_ms=max_wait_ms, max_queue=512)
    return replay_trace(server, trace), server


def test_serve_throughput_vs_per_request(ctx, serve_bundle, save_result):
    trace = poisson_trace(_spec_pool(N_POOL), rate_hz=RATE_HZ,
                          n_requests=N_REQUESTS, n_clients=4, seed=0)

    batched, batched_server = _replay(ctx, serve_bundle, trace,
                                      max_batch=MAX_BATCH,
                                      max_wait_ms=MAX_WAIT_MS)
    single, _ = _replay(ctx, serve_bundle, trace,
                        max_batch=1, max_wait_ms=0.0)

    rows = [batched.report_row("micro-batched"),
            single.report_row("per-request")]
    report = "\n\n".join([
        format_table(rows, title="serve replay: Poisson trace "
                                 f"({N_REQUESTS} requests @ {RATE_HZ:g}/s, "
                                 f"{N_POOL} unique shapes)"),
        latency_table({"micro-batched": batched_server.telemetry.latency(),
                       "queue wait": batched_server.telemetry.wait()},
                      title="micro-batched latency (ms)"),
        batch_size_table(batched.stats["batch_size_histogram"],
                         title="micro-batched batch-size distribution"),
    ])
    save_result("serve_throughput", report)

    # Nothing may be dropped at this load (backpressure, not rejection).
    assert batched.served == single.served == N_REQUESTS

    # Both modes evaluate each unique shape exactly once (LRU dedup)...
    assert batched.stats["evaluations"] == single.stats["evaluations"] == N_POOL
    # ...but micro-batching amortises them over far fewer model passes —
    # the acceptance metric for the serving subsystem.
    assert batched.stats["model_passes"] < single.stats["model_passes"]
    assert single.stats["model_passes"] == N_POOL

    # The scheduler genuinely formed multi-request batches under load.
    histogram = batched.stats["batch_size_histogram"]
    assert max(histogram) > 1
    assert sum(size * count for size, count in histogram.items()) == N_REQUESTS

    # Latency percentiles are reported for both modes.
    for outcome in (batched, single):
        row = outcome.report_row()
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
        assert outcome.requests_per_sec > 0
