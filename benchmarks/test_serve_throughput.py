"""Serving extension — micro-batched replay vs per-request serving.

Not a paper figure: this experiment quantifies what the serving
subsystem adds on top of the engine.  A Poisson-arrival request trace
is replayed twice through :class:`repro.serve.server.GemmServer` over
the same installed artefacts — once with dynamic micro-batching
(window/size scheduler) and once degenerated to one-request batches —
and the comparison reports sustained requests/second, the batch-size
distribution, latency percentiles (p50/p95/p99 through the shared
:func:`repro.bench.stats.latency_summary` helper) and, the acceptance
metric, the number of model passes each mode paid.

A second experiment compares the tier-0 **decision-table** serving
path against the compiled-plan path on an all-lattice trace: same
server, same trace, bitwise-identical thread selections, but the table
path answers every cache miss with an O(1) lattice lookup instead of a
fused model pass.  Acceptance: >= 3x sustained requests/second with
zero model passes.

A third experiment prices **request tracing**: the same
decision-dominated replay with the span collector on and off.  The
decision-table path with an instant backend is the worst case for the
observability layer — there is almost no real work per request to
hide the trace stamps behind.  Acceptance: thread selections bitwise
identical, zero extra model passes, every finished trace a complete
span chain, and <= 5% sustained-throughput overhead.

A fourth experiment measures the **plateau interpolation** win on an
off-lattice-heavy trace (75% of the pool drawn from the validated
off-lattice probe distribution, 25% lattice points): a
``snap="plateau"`` table answers the near-lattice tail from tier 0,
while the exact-snap table pays a compiled forest pass per off-lattice
shape.  Acceptance: >= 2x sustained requests/second with **zero**
selection divergence between the two paths.

A fifth experiment prices the slab-batched bulk submit path: a
256-request burst through ``max_batch=16`` must allocate exactly
``ceil(256/16) = 16`` slab futures (asserted by counting
``SlabRequest`` construction) while producing records bitwise
identical, and in the same order, as per-request ``submit`` calls.

A sixth experiment measures the **multi-process fleet**: the same
kernel-bound mixed-routine burst through a 4-worker
:class:`repro.fleet.FleetServer` and through one in-process server.
The :class:`repro.bench.loadgen.CpuBoundBackend` blocks each request's
worker for a real kernel-occupancy window (plus a GIL-holding spin),
so a single process serialises the burst while separate workers'
kernels overlap — genuine process parallelism, not simulator
arithmetic, and measurable even on a single-CPU host.  Acceptance:
>= 2.5x sustained requests/second with thread selections
bitwise-identical to single-process serving.

All experiments append machine-readable metrics to
``benchmarks/results/BENCH_serve.json`` (the artefact CI uploads).

Smoke mode for CI: ``SERVE_BENCH_SMOKE=1`` shrinks the installation and
the trace so scheduler regressions fail fast without a full campaign.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.report import batch_size_table, format_table, latency_table
from repro.engine import GemmService
from repro.gemm.interface import GemmSpec
from repro.serve import GemmServer, poisson_trace, replay_trace

SMOKE = os.environ.get("SERVE_BENCH_SMOKE") == "1"
N_POOL = 30 if SMOKE else 120          # distinct shapes in the trace
N_REQUESTS = 90 if SMOKE else 360      # trace length (pool cycles => repeats)
RATE_HZ = 1500.0                       # Poisson arrival rate
MAX_BATCH = 32
MAX_WAIT_MS = 5.0

N_TABLE_POOL = 200 if SMOKE else 600   # distinct lattice points in the trace
TABLE_RATE_HZ = 100000.0               # decision cost dominates at this rate
MB = 1024 * 1024


def _spec_pool(n: int, seed: int = 0) -> list:
    """Deterministic distinct shapes (the cache can't absorb the pool)."""
    rng = np.random.default_rng(seed)
    shapes = set()
    while len(shapes) < n:
        m, k, n_dim = (int(x) for x in rng.integers(16, 2048, size=3))
        shapes.add((m, k, n_dim))
    return [GemmSpec(m, k, n_dim) for m, k, n_dim in sorted(shapes)]


@pytest.fixture(scope="module")
def serve_bundle(ctx, request):
    if SMOKE:
        return ctx.bundle("gadi", n_shapes=50, memory_cap_mb=100,
                          budget="fast", label_transform="log",
                          tune_iters=1, cv_folds=2, eval_time_scale=0.025)
    return request.getfixturevalue("gadi_prod_bundle")


def _replay(ctx, bundle, trace, *, max_batch: int, max_wait_ms: float):
    service = GemmService.from_bundle(bundle, ctx.simulator("gadi"),
                                      cache_size=2 * N_POOL)
    server = GemmServer(service, max_batch=max_batch,
                        max_wait_ms=max_wait_ms, max_queue=512)
    return replay_trace(server, trace), server


def _bench_metrics(outcome) -> dict:
    """BENCH_serve.json entry: throughput, tail latency, model passes."""
    row = outcome.report_row()
    return {"req_per_s": row["req_per_s"],
            "p50_ms": row.get("p50_ms"),
            "p95_ms": row.get("p95_ms"),
            "served": row["served"],
            "model_passes": row["model_passes"]}


def test_serve_throughput_vs_per_request(ctx, serve_bundle, save_result,
                                         save_bench_json):
    trace = poisson_trace(_spec_pool(N_POOL), rate_hz=RATE_HZ,
                          n_requests=N_REQUESTS, n_clients=4, seed=0)

    batched, batched_server = _replay(ctx, serve_bundle, trace,
                                      max_batch=MAX_BATCH,
                                      max_wait_ms=MAX_WAIT_MS)
    single, _ = _replay(ctx, serve_bundle, trace,
                        max_batch=1, max_wait_ms=0.0)

    rows = [batched.report_row("micro-batched"),
            single.report_row("per-request")]
    report = "\n\n".join([
        format_table(rows, title="serve replay: Poisson trace "
                                 f"({N_REQUESTS} requests @ {RATE_HZ:g}/s, "
                                 f"{N_POOL} unique shapes)"),
        latency_table({"micro-batched": batched_server.telemetry.latency(),
                       "queue wait": batched_server.telemetry.wait()},
                      title="micro-batched latency (ms)"),
        batch_size_table(batched.stats["batch_size_histogram"],
                         title="micro-batched batch-size distribution"),
    ])
    save_result("serve_throughput", report)
    save_bench_json("serve", "micro_batched", _bench_metrics(batched))
    save_bench_json("serve", "per_request", _bench_metrics(single))

    # Nothing may be dropped at this load (backpressure, not rejection).
    assert batched.served == single.served == N_REQUESTS

    # Both modes evaluate each unique shape exactly once (LRU dedup)...
    assert batched.stats["evaluations"] == single.stats["evaluations"] == N_POOL
    # ...but micro-batching amortises them over far fewer model passes —
    # the acceptance metric for the serving subsystem.
    assert batched.stats["model_passes"] < single.stats["model_passes"]
    assert single.stats["model_passes"] == N_POOL

    # The scheduler genuinely formed multi-request batches under load.
    histogram = batched.stats["batch_size_histogram"]
    assert max(histogram) > 1
    assert sum(size * count for size, count in histogram.items()) == N_REQUESTS

    # Latency percentiles are reported for both modes.
    for outcome in (batched, single):
        row = outcome.report_row()
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
        assert outcome.requests_per_sec > 0


# -- decision-table path vs compiled-plan path ---------------------------

class _InstantBackend:
    """Zero-cost execution: the replay measures decision overhead only.

    With a (simulated) GEMM in the loop both serving paths pay the same
    dominant execution cost and the tier-0 win drowns in it; an instant
    backend makes sustained throughput a pure function of the
    prediction tier.
    """

    def __init__(self, thread_grid):
        self.name = "instant"
        self.thread_grid = np.asarray(sorted(set(int(t) for t in thread_grid)),
                                      dtype=np.int64)

    def timed_run(self, spec, n_threads: int, repeats: int = 1, **kw) -> float:
        return 0.0


@pytest.fixture(scope="module")
def table_bundle():
    """A heavy-forest installation with a campaign decision table.

    The forest is deliberately expensive to evaluate (the paper's
    ruinous-RMSE-winner configuration, scaled to install quickly) so
    the compiled-plan pass has a realistic per-request cost for the
    table path to beat.
    """
    from repro.core.training import InstallationWorkflow
    from repro.machine.presets import by_name
    from repro.machine.simulator import MachineSimulator
    from repro.ml.forest import RandomForestRegressor
    from repro.ml.registry import CandidateModel

    sim = MachineSimulator(by_name("tiny"), seed=0)
    forest = CandidateModel(
        name="Random Forest", factory=RandomForestRegressor,
        defaults={"n_estimators": 160, "max_leaves": 1024,
                  "min_samples_leaf": 1, "random_state": 0},
        search_space={"min_samples_leaf": [1]}, family="tree")
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=8 * MB, n_shapes=40, candidates=[forest],
        tune_iters=1, cv_folds=2, repeats=3, seed=0)
    bundle = workflow.run()
    bundle.compile_table()
    return bundle


def _lattice_pool(table, n: int, seed: int = 0) -> list:
    """Distinct lattice points — shapes the tier-0 table answers."""
    points = table.lattice_points()
    rng = np.random.default_rng(seed)
    index = rng.choice(len(points), size=min(n, len(points)), replace=False)
    return [GemmSpec(int(m), int(k), int(n_dim))
            for m, k, n_dim in points[np.sort(index)]]


def test_table_throughput_vs_compiled_plan(table_bundle, save_result,
                                           save_bench_json):
    import gc

    table = table_bundle.table
    pool = _lattice_pool(table, N_TABLE_POOL)
    trace = poisson_trace(pool, rate_hz=TABLE_RATE_HZ,
                          n_requests=len(pool), n_clients=4, seed=0)
    backend = _InstantBackend(table_bundle.config.thread_grid)

    def replay(with_table: bool):
        predictor = table_bundle.predictor(cache_size=2 * len(pool),
                                           compiled=True, table=with_table)
        service = GemmService(predictor, backend=backend)
        server = GemmServer(service, max_batch=MAX_BATCH,
                            max_wait_ms=MAX_WAIT_MS, max_queue=1024)
        # A replay lasts tens of milliseconds, so one stray GC pass
        # (over every object earlier benchmarks left alive) skews it;
        # collect up front and keep the collector out of the window.
        gc.collect()
        gc.disable()
        try:
            return replay_trace(server, trace)
        finally:
            gc.enable()

    def best(with_table: bool, trials: int = 3):
        outcomes = [replay(with_table) for _ in range(trials)]
        return max(outcomes, key=lambda o: o.requests_per_sec)

    plan_outcome = best(with_table=False)
    table_outcome = best(with_table=True)
    speedup = (table_outcome.requests_per_sec
               / plan_outcome.requests_per_sec)

    rows = [table_outcome.report_row("decision-table"),
            plan_outcome.report_row("compiled-plan")]
    for row, outcome in zip(rows, (table_outcome, plan_outcome)):
        row["speedup"] = round(outcome.requests_per_sec
                               / plan_outcome.requests_per_sec, 2)
    save_result("serve_table_throughput", format_table(
        rows, title="serve replay: decision table vs compiled plan "
                    f"({len(pool)} lattice-point requests "
                    f"@ {TABLE_RATE_HZ:g}/s, instant backend)"))
    save_bench_json("serve", "table_path", {
        **_bench_metrics(table_outcome),
        "table_hits": table_outcome.stats.get("table_hits", 0),
        "speedup_vs_plan": round(speedup, 2)})
    save_bench_json("serve", "plan_path", _bench_metrics(plan_outcome))

    # Nothing dropped, and both paths answered every request.
    assert plan_outcome.served == table_outcome.served == len(pool)

    # The acceptance bar of the tier hierarchy: selections bitwise
    # identical on lattice points...
    assert table_outcome.thread_choices() == plan_outcome.thread_choices()
    # ...with the whole trace answered from the table (zero model
    # passes; one table hit per distinct shape) ...
    assert table_outcome.stats["model_passes"] == 0
    assert table_outcome.stats["table_hits"] == len(pool)
    assert table_outcome.stats.get("table_fallbacks", 0) == 0
    assert plan_outcome.stats["model_passes"] > 0

    # ...at >= 3x the sustained request rate of the plan path.
    assert speedup >= 3.0, (
        f"table path only {speedup:.2f}x the plan path "
        f"({table_outcome.requests_per_sec:.0f} vs "
        f"{plan_outcome.requests_per_sec:.0f} req/s)")


# -- plateau interpolation on off-lattice traffic ------------------------

@pytest.fixture(scope="module")
def plateau_bundle(table_bundle):
    """The same installation with a ``snap="plateau"`` table."""
    import dataclasses

    bundle = dataclasses.replace(table_bundle, table=None)
    bundle.compile_table(snap="plateau")
    return bundle


def _off_lattice_pool(table, n: int, seed: int = 0) -> list:
    """Distinct off-lattice shapes the plateau table absorbs.

    Drawn from the *validated* probe distribution — exactly the traffic
    the build-time sweep vetted, so an interpolated answer is plan-equal
    by construction — and filtered to surviving (non-demoted) cells:
    the near-lattice tail this tier exists to serve.  An exact-snap
    table pays a plan pass for every one of these.
    """
    from repro.compile.table import PLATEAU_PROBES, _plateau_probe_points

    probes = _plateau_probe_points(table.axes, None, PLATEAU_PROBES)
    _, _, interpolated = table.lookup_batch_ex(probes)
    probes = probes[interpolated]
    rng = np.random.default_rng(seed)
    index = rng.choice(len(probes), size=min(n, len(probes)), replace=False)
    return [GemmSpec(int(m), int(k), int(n_dim))
            for m, k, n_dim in probes[np.sort(index)]]


def test_plateau_throughput_on_off_lattice_trace(table_bundle, plateau_bundle,
                                                 save_result,
                                                 save_bench_json):
    """Plateau tier-0 vs exact-table-with-plan-fallback, same trace."""
    import gc

    table = plateau_bundle.table
    pool = _off_lattice_pool(table, 3 * N_TABLE_POOL // 4, seed=3)
    pool += _lattice_pool(table, N_TABLE_POOL - len(pool), seed=5)
    trace = poisson_trace(pool, rate_hz=TABLE_RATE_HZ,
                          n_requests=len(pool), n_clients=4, seed=0)
    backend = _InstantBackend(table_bundle.config.thread_grid)

    def replay(bundle):
        predictor = bundle.predictor(cache_size=2 * len(pool),
                                     compiled=True, table=True)
        service = GemmService(predictor, backend=backend)
        server = GemmServer(service, max_batch=MAX_BATCH,
                            max_wait_ms=MAX_WAIT_MS, max_queue=1024)
        gc.collect()
        gc.disable()
        try:
            return replay_trace(server, trace)
        finally:
            gc.enable()

    def best(bundle, trials: int = 3):
        outcomes = [replay(bundle) for _ in range(trials)]
        return max(outcomes, key=lambda o: o.requests_per_sec)

    fallback_outcome = best(table_bundle)    # exact table: misses hit the plan
    plateau_outcome = best(plateau_bundle)   # plateau: misses absorbed
    speedup = (plateau_outcome.requests_per_sec
               / fallback_outcome.requests_per_sec)

    rows = [plateau_outcome.report_row("plateau table"),
            fallback_outcome.report_row("exact table + plan fallback")]
    for row, outcome in zip(rows, (plateau_outcome, fallback_outcome)):
        row["speedup"] = round(outcome.requests_per_sec
                               / fallback_outcome.requests_per_sec, 2)
    save_result("serve_plateau_throughput", format_table(
        rows, title="serve replay: plateau interpolation vs plan fallback "
                    f"({len(pool)} requests, 75% off-lattice "
                    f"@ {TABLE_RATE_HZ:g}/s, instant backend)"))
    save_bench_json("serve", "plateau_path", {
        **_bench_metrics(plateau_outcome),
        "table_interpolated": plateau_outcome.stats.get(
            "table_interpolated", 0),
        "table_fallbacks": plateau_outcome.stats.get("table_fallbacks", 0),
        "speedup_vs_fallback": round(speedup, 2)})
    save_bench_json("serve", "plan_fallback_path", {
        **_bench_metrics(fallback_outcome),
        "table_fallbacks": fallback_outcome.stats.get("table_fallbacks", 0)})

    # Nothing dropped on either path.
    assert plateau_outcome.served == fallback_outcome.served == len(pool)

    # Zero selection divergence: an interpolated answer is only ever
    # the one the plan-fallback path computes the long way round.
    assert plateau_outcome.thread_choices() == fallback_outcome.thread_choices()

    # The plateau genuinely absorbed off-lattice traffic into tier 0
    # (interpolated hits counted separately), while the exact table fell
    # back to the plan for it.  (Model *passes* are per batch, so they
    # need not differ — the fallback path's passes are just far bigger.)
    assert plateau_outcome.stats.get("table_interpolated", 0) > 0
    assert fallback_outcome.stats["table_fallbacks"] > 0
    assert plateau_outcome.stats.get("table_fallbacks", 0) \
        < fallback_outcome.stats["table_fallbacks"]

    # The acceptance bar: >= 2x sustained request rate on the
    # off-lattice-heavy trace.
    assert speedup >= 2.0, (
        f"plateau path only {speedup:.2f}x the plan-fallback path "
        f"({plateau_outcome.requests_per_sec:.0f} vs "
        f"{fallback_outcome.requests_per_sec:.0f} req/s)")


# -- slab-batched bulk submit --------------------------------------------

def test_slab_submit_future_economy(table_bundle, save_result,
                                    save_bench_json, monkeypatch):
    """One future per micro-batch on a 256-burst, records identical."""
    import asyncio
    import gc
    import time

    from repro.serve.request import SlabRequest

    burst = _lattice_pool(table_bundle.table, 256, seed=9)
    assert len(burst) == 256
    backend = _InstantBackend(table_bundle.config.thread_grid)

    def make_server():
        predictor = table_bundle.predictor(cache_size=2 * len(burst),
                                           compiled=True, table=True)
        service = GemmService(predictor, backend=backend)
        return GemmServer(service, max_batch=16, max_wait_ms=MAX_WAIT_MS,
                          max_queue=1024, max_pending=2048, fair_share=None)

    created = []

    def counting_slab(*args, **kwargs):
        slab = SlabRequest(*args, **kwargs)
        created.append(slab)
        return slab

    monkeypatch.setattr("repro.serve.server.SlabRequest", counting_slab)

    async def bulk():
        async with make_server() as server:
            t0 = time.perf_counter()
            records = await server.submit_many(burst)
            return records, time.perf_counter() - t0

    async def streaming():
        async with make_server() as server:
            t0 = time.perf_counter()
            records = await asyncio.gather(*(server.submit(s)
                                             for s in burst))
            return records, time.perf_counter() - t0

    gc.collect()
    slab_records, slab_dt = asyncio.run(bulk())
    single_records, single_dt = asyncio.run(streaming())

    # The acceptance assertion: ceil(256 / 16) slabs, one future each.
    assert len(created) == 16
    assert all(slab.count == 16 for slab in created)
    assert len({id(slab.future) for slab in created}) == 16

    # Bulk and streaming submission produce identical records in order.
    assert [(r.spec, r.n_threads) for r in slab_records] \
        == [(r.spec, r.n_threads) for r in single_records]

    slab_rps = len(burst) / slab_dt
    single_rps = len(burst) / single_dt
    save_result("serve_slab_submit", format_table(
        [{"mode": "submit_many (slabs)", "req_per_s": round(slab_rps, 1),
          "futures": len(created)},
         {"mode": "per-request submit", "req_per_s": round(single_rps, 1),
          "futures": len(burst)}],
        title="256-request burst: slab-batched vs per-request submission "
              "(max_batch=16, instant backend)"))
    save_bench_json("serve", "slab_submit", {
        "req_per_s": round(slab_rps, 1), "served": len(burst),
        "futures": len(created)})
    save_bench_json("serve", "per_request_submit", {
        "req_per_s": round(single_rps, 1), "served": len(burst),
        "futures": len(burst)})


# -- tracing overhead ----------------------------------------------------

def test_tracing_overhead(table_bundle, save_result, save_bench_json):
    """Span collection must cost <= 5% throughput in the worst case."""
    import gc

    table = table_bundle.table
    pool = _lattice_pool(table, N_TABLE_POOL)
    trace = poisson_trace(pool, rate_hz=TABLE_RATE_HZ,
                          n_requests=len(pool), n_clients=4, seed=0)
    backend = _InstantBackend(table_bundle.config.thread_grid)

    def replay(tracing: bool, with_table: bool = True):
        predictor = table_bundle.predictor(cache_size=2 * len(pool),
                                           compiled=True, table=with_table)
        service = GemmService(predictor, backend=backend)
        server = GemmServer(service, max_batch=MAX_BATCH,
                            max_wait_ms=MAX_WAIT_MS, max_queue=1024,
                            tracing=tracing)
        gc.collect()
        gc.disable()
        try:
            return replay_trace(server, trace), server
        finally:
            gc.enable()

    def best(tracing: bool, trials: int = 3):
        outcomes = [replay(tracing) for _ in range(trials)]
        return max(outcomes, key=lambda pair: pair[0].requests_per_sec)

    off_outcome, _ = best(tracing=False)
    on_outcome, on_server = best(tracing=True)
    overhead = 1.0 - (on_outcome.requests_per_sec
                      / off_outcome.requests_per_sec)
    trace_stats = on_server.collector.stats()

    rows = [off_outcome.report_row("tracing off"),
            on_outcome.report_row("tracing on")]
    rows[0]["overhead_pct"] = 0.0
    rows[1]["overhead_pct"] = round(100.0 * overhead, 2)
    save_result("serve_tracing_overhead", format_table(
        rows, title="serve replay: tracing on vs off "
                    f"({len(pool)} lattice-point requests "
                    f"@ {TABLE_RATE_HZ:g}/s, instant backend)"))
    save_bench_json("serve", "tracing_off", _bench_metrics(off_outcome))
    save_bench_json("serve", "tracing_on", {
        **_bench_metrics(on_outcome),
        "overhead_pct": round(100.0 * overhead, 2),
        "complete_chains": trace_stats["complete"]})

    # Observability must not change behaviour: selections bitwise
    # identical, and not one extra model pass.
    assert on_outcome.thread_choices() == off_outcome.thread_choices()
    assert on_outcome.stats["model_passes"] \
        == off_outcome.stats["model_passes"] == 0

    # Every finished request produced a complete six-span chain.
    assert trace_stats["traces"] == on_outcome.served
    assert trace_stats["complete"] == on_outcome.served
    assert trace_stats["dropped"] == 0

    # The compiled-plan path (model passes > 0) agrees too: tracing
    # adds zero model passes even when the model is in the loop.
    plan_on, _ = replay(tracing=True, with_table=False)
    plan_off, _ = replay(tracing=False, with_table=False)
    assert plan_on.thread_choices() == plan_off.thread_choices()
    assert plan_on.stats["model_passes"] \
        == plan_off.stats["model_passes"] > 0

    # The acceptance bar: <= 5% sustained-throughput overhead in the
    # decision-dominated worst case (best-of-3 each side).
    assert overhead <= 0.05, (
        f"tracing costs {100 * overhead:.1f}% throughput "
        f"({on_outcome.requests_per_sec:.0f} vs "
        f"{off_outcome.requests_per_sec:.0f} req/s)")


# -- multi-process fleet vs single server --------------------------------

FLEET_WORKERS = 4
FLEET_ITERS = 1000                          # CPU spin per request
FLEET_KERNEL_S = 0.004                      # blocking kernel time per request
N_FLEET_REQUESTS = 96 if SMOKE else 256


@pytest.fixture(scope="module")
def fleet_registry(tmp_path_factory):
    """A registry publishing a quick installation for gemm and gemv.

    Fleet workers are separate processes, so the control plane must be
    on disk — this is the only benchmark fixture that cannot hand the
    server a live bundle object.
    """
    from repro.core.training import InstallationWorkflow
    from repro.machine.presets import by_name
    from repro.machine.simulator import MachineSimulator
    from repro.ml.registry import candidate_models
    from repro.train.registry import ModelRegistry

    sim = MachineSimulator(by_name("tiny"), seed=0)
    cands = [c for c in candidate_models(budget="fast")
             if c.name == "Linear Regression"]
    workflow = InstallationWorkflow(
        sim, memory_cap_bytes=8 * MB, n_shapes=40, candidates=cands,
        tune_iters=1, cv_folds=2, repeats=2, seed=0)
    bundle = workflow.run()
    root = tmp_path_factory.mktemp("fleet-bench") / "registry"
    registry = ModelRegistry(root)
    registry.publish(bundle, routine="gemm")
    registry.publish(bundle, routine="gemv")
    return root


def _fleet_pool(n: int, seed: int = 7) -> list:
    """Mixed GEMM/GEMV shapes (every third request is a GEMV)."""
    from repro.blas.gemv import GemvSpec

    rng = np.random.default_rng(seed)
    pool = []
    for i in range(n):
        m, k, n_dim = (int(x) for x in rng.integers(16, 512, size=3))
        if i % 3 == 2:
            pool.append(GemvSpec(m, 8 * k))
        else:
            pool.append(GemmSpec(m, k, n_dim))
    return pool


def test_fleet_throughput(fleet_registry, save_result, save_bench_json):
    """4-worker fleet vs one server on a kernel-bound mixed-routine burst.

    Per-request work is a small GIL-holding spin plus a blocking
    4 ms kernel-occupancy window (``CpuBoundBackend(sleep_s=...)``) —
    the window, like a real synchronous BLAS call, keeps one worker
    busy while *other workers'* kernels overlap, so the fleet's win is
    measurable even inside a single-CPU container where pure spin work
    cannot overlap across processes.
    """
    import asyncio
    import time

    from repro.bench.loadgen import CpuBoundBackend
    from repro.fleet import FleetServer
    from repro.machine.presets import by_name
    from repro.machine.simulator import MachineSimulator
    from repro.train.registry import ModelRegistry

    burst = _fleet_pool(N_FLEET_REQUESTS)

    async def run_single():
        registry = ModelRegistry(fleet_registry)
        service = GemmService.from_registry(
            registry, MachineSimulator(by_name("tiny"), seed=0),
            machine_name="tiny",
            backend=CpuBoundBackend(iters=FLEET_ITERS,
                                    sleep_s=FLEET_KERNEL_S))
        server = GemmServer(service, max_batch=16, max_wait_ms=2.0,
                            max_queue=512, fair_share=None)
        async with server:
            t0 = time.perf_counter()
            records = await server.submit_many(burst)
            return records, time.perf_counter() - t0

    async def run_fleet():
        server = FleetServer.from_registry(
            fleet_registry, "tiny", workers=FLEET_WORKERS,
            backend="repro.bench.loadgen:cpu_bound_backend",
            backend_args=(("iters", FLEET_ITERS),
                          ("sleep_s", FLEET_KERNEL_S)))
        async with server:
            # Untimed warmup fills each worker's prediction cache, so
            # both modes are measured with warm caches.
            await server.submit_many(burst)
            t0 = time.perf_counter()
            records = await server.submit_many(burst)
            return records, time.perf_counter() - t0

    single_records, single_dt = asyncio.run(run_single())
    fleet_records, fleet_dt = asyncio.run(run_fleet())

    single_rps = len(burst) / single_dt
    fleet_rps = len(burst) / fleet_dt
    speedup = fleet_rps / single_rps

    save_result("serve_fleet_throughput", format_table(
        [{"mode": f"fleet ({FLEET_WORKERS} workers)", "served": len(burst),
          "wall_ms": round(fleet_dt * 1e3, 1),
          "req_per_s": round(fleet_rps, 1), "speedup": round(speedup, 2)},
         {"mode": "single process", "served": len(burst),
          "wall_ms": round(single_dt * 1e3, 1),
          "req_per_s": round(single_rps, 1), "speedup": 1.0}],
        title=f"kernel-bound burst ({N_FLEET_REQUESTS} mixed gemm/gemv "
              f"requests, {FLEET_ITERS} spin iters + "
              f"{FLEET_KERNEL_S * 1e3:.0f} ms kernel each)"))
    save_bench_json("serve", "fleet_4w", {
        "req_per_s": round(fleet_rps, 1), "served": len(burst),
        "workers": FLEET_WORKERS, "speedup_vs_single": round(speedup, 2)})
    save_bench_json("serve", "single_process", {
        "req_per_s": round(single_rps, 1), "served": len(burst)})

    # Every request served on both paths.
    assert all(r is not None for r in single_records)
    assert all(r is not None for r in fleet_records)

    # Process distribution must not change behaviour: selections are
    # bitwise identical to single-process serving, request for request.
    assert [r.n_threads for r in fleet_records] \
        == [r.n_threads for r in single_records]

    # The acceptance bar: real parallel speedup on real CPU work.
    assert speedup >= 2.5, (
        f"{FLEET_WORKERS}-worker fleet only {speedup:.2f}x the single "
        f"process ({fleet_rps:.0f} vs {single_rps:.0f} req/s)")


# -- cost-aware batch formation ------------------------------------------

COST_RATE_HZ = 100.0                       # Poisson arrivals, mixed trace
N_COST_REQUESTS = 120 if SMOKE else 240
HEAVY_EVERY = 4                            # every 4th request is a heavy GEMM
COST_WINDOW_MS = 120.0                     # wide window: count-only batches
                                           # span several heavy arrivals
SECONDS_PER_FLOP = 7.5e-10                 # heavy ~25 ms, light ~6 us


class _CostProportionalBackend:
    """Blocks wall time proportional to the spec's FLOPs.

    A batch's execution window is then the *sum* of its members'
    predicted costs — exactly the quantity ``max_batch_cost`` budgets —
    so a light request stuck in a batch with heavy GEMMs pays their
    wall time, and the cost-budgeted scheduler's win is measurable.
    The *returned* runtime stays a pure function of the spec, keeping
    records bitwise-comparable across modes.
    """

    def __init__(self, thread_grid, seconds_per_flop: float):
        import numpy as _np

        self.name = "cost_proportional"
        self.thread_grid = _np.asarray(
            sorted(set(int(t) for t in thread_grid)), dtype=np.int64)
        self.seconds_per_flop = float(seconds_per_flop)

    def timed_run(self, spec, n_threads: int, repeats: int = 1, **kw) -> float:
        import time as _time

        flops = float(getattr(spec, "flops", 1.0))
        _time.sleep(flops * self.seconds_per_flop)
        return flops / (float(n_threads) * 1e12)


def _mixed_pool(n: int) -> list:
    """Every ``HEAVY_EVERY``-th request a heavy GEMM, the rest light GEMVs."""
    from repro.blas.gemv import GemvSpec

    pool = []
    for i in range(n):
        if i % HEAVY_EVERY == HEAVY_EVERY - 1:
            pool.append(GemmSpec(256, 256, 256))       # ~33.7 MFLOP
        else:
            pool.append(GemvSpec(64, 64 + (i % 32)))   # ~8 kFLOP
    return pool


def test_cost_aware_batching(fleet_registry, save_result, save_bench_json):
    """FLOPs-budgeted batch formation vs count-only on a mixed trace.

    Acceptance: light-routine (gemv) p99 latency >= 2x better under
    ``max_batch_cost`` than count-only batching with the same window
    and size limits, and thread selections bitwise identical — the
    budget moves batch boundaries, never predictions.
    """
    import asyncio  # noqa: F401  (replay_trace drives its own loop)

    from repro.machine.presets import by_name
    from repro.machine.simulator import MachineSimulator
    from repro.train.registry import ModelRegistry

    pool = _mixed_pool(N_COST_REQUESTS)
    trace = poisson_trace(pool, rate_hz=COST_RATE_HZ,
                          n_requests=N_COST_REQUESTS, n_clients=4, seed=2)
    heavy_flops = float(GemmSpec(256, 256, 256).flops)
    budget = 0.5 * heavy_flops  # a heavy always frames alone

    def replay(max_batch_cost):
        registry = ModelRegistry(fleet_registry)
        service = GemmService.from_registry(
            registry, MachineSimulator(by_name("tiny"), seed=0),
            machine_name="tiny",
            backend=_CostProportionalBackend((1, 2, 4, 8, 12, 16),
                                             SECONDS_PER_FLOP))
        server = GemmServer(service, max_batch=64,
                            max_wait_ms=COST_WINDOW_MS, max_queue=1024,
                            max_pending=2048, fair_share=None,
                            max_batch_cost=max_batch_cost)
        return replay_trace(server, trace)

    count_only = replay(None)
    cost_aware = replay(budget)

    # Nothing dropped, and the budget never moved a thread selection.
    assert count_only.served == cost_aware.served == N_COST_REQUESTS
    assert cost_aware.thread_choices() == count_only.thread_choices()

    # The budget genuinely closed batches on predicted cost.
    closes = cost_aware.stats["batch_close_reasons"]
    assert closes.get("cost", 0) > 0
    assert "batch_cost" in cost_aware.stats

    light_cost_p99 = \
        cost_aware.stats["routines"]["gemv"]["latency_ms"]["p99_ms"]
    light_count_p99 = \
        count_only.stats["routines"]["gemv"]["latency_ms"]["p99_ms"]
    heavy_cost_p99 = \
        cost_aware.stats["routines"]["gemm"]["latency_ms"]["p99_ms"]
    heavy_count_p99 = \
        count_only.stats["routines"]["gemm"]["latency_ms"]["p99_ms"]
    improvement = light_count_p99 / light_cost_p99

    rows = []
    for label, outcome, light_p99, heavy_p99 in (
            ("cost-budgeted", cost_aware, light_cost_p99, heavy_cost_p99),
            ("count-only", count_only, light_count_p99, heavy_count_p99)):
        row = outcome.report_row(label)
        row["light_p99_ms"] = light_p99
        row["heavy_p99_ms"] = heavy_p99
        rows.append(row)
    save_result("serve_cost_aware", format_table(
        rows, title="serve replay: FLOPs-budgeted vs count-only batching "
                    f"({N_COST_REQUESTS} mixed gemm/gemv requests "
                    f"@ {COST_RATE_HZ:g}/s, cost-proportional backend, "
                    f"budget {budget:.3g} FLOPs)"))
    save_bench_json("serve", "cost_aware", {
        **_bench_metrics(cost_aware),
        "light_p99_ms": light_cost_p99, "heavy_p99_ms": heavy_cost_p99,
        "cost_closed_batches": closes.get("cost", 0),
        "light_p99_improvement": round(improvement, 2)})
    save_bench_json("serve", "count_only", {
        **_bench_metrics(count_only),
        "light_p99_ms": light_count_p99, "heavy_p99_ms": heavy_count_p99})

    # The acceptance bar: the budget shields light traffic from heavy
    # batch-mates — >= 2x better light-routine tail latency.
    assert improvement >= 2.0, (
        f"cost budget improved light p99 only {improvement:.2f}x "
        f"({light_count_p99:.1f} ms count-only vs "
        f"{light_cost_p99:.1f} ms budgeted)")


def test_cost_aware_fleet_routing_parity(fleet_registry, save_result,
                                         save_bench_json):
    """Cost-weighted routing must not tax a uniform trace.

    On uniform per-request cost the :class:`CostAwareLeastLoadedRouter`
    degenerates to least-loaded-by-count, so a 4-worker fleet must
    sustain the same throughput (0.7x floor absorbs process-spawn and
    scheduling noise) with bitwise-identical selections.
    """
    import asyncio
    import time

    from repro.fleet import FleetServer

    burst = [GemmSpec(64 + (i % 8), 128, 96) for i in range(N_FLEET_REQUESTS)]

    def run_fleet(router: str):
        async def go():
            server = FleetServer.from_registry(
                fleet_registry, "tiny", workers=FLEET_WORKERS,
                router=router,
                backend="repro.bench.loadgen:cpu_bound_backend",
                backend_args=(("iters", FLEET_ITERS),
                              ("sleep_s", FLEET_KERNEL_S)))
            async with server:
                await server.submit_many(burst)        # warm caches
                t0 = time.perf_counter()
                records = await server.submit_many(burst)
                dt = time.perf_counter() - t0
                return records, dt, server.stats()

        return asyncio.run(go())

    count_records, count_dt, _ = run_fleet("least_loaded")
    cost_records, cost_dt, cost_stats = run_fleet("cost_least_loaded")

    cost_rps = len(burst) / cost_dt
    count_rps = len(burst) / count_dt
    parity = cost_rps / count_rps

    # Routing policy must not change behaviour.
    assert [r.n_threads for r in cost_records] \
        == [r.n_threads for r in count_records]

    # The front priced every dispatch: outstanding-cost accounting
    # exists per worker and settled back to zero after the drain.
    workers = cost_stats["workers"]
    assert all("cost_in_flight" in w for w in workers.values())
    assert all(w["cost_in_flight"] == 0.0 for w in workers.values())
    assert all("outstanding_cost_flops" in w["counters"]
               for w in workers.values())

    save_result("serve_cost_routing", format_table(
        [{"router": "cost_least_loaded", "req_per_s": round(cost_rps, 1),
          "parity": round(parity, 2)},
         {"router": "least_loaded", "req_per_s": round(count_rps, 1),
          "parity": 1.0}],
        title=f"uniform burst ({N_FLEET_REQUESTS} requests, "
              f"{FLEET_WORKERS} workers): cost-weighted vs count routing"))
    save_bench_json("serve", "fleet_cost_router", {
        "req_per_s": round(cost_rps, 1), "served": len(burst),
        "parity_vs_least_loaded": round(parity, 2)})

    # The acceptance bar: no worse than least-loaded on uniform cost.
    assert parity >= 0.7, (
        f"cost-aware routing only {parity:.2f}x least-loaded "
        f"({cost_rps:.0f} vs {count_rps:.0f} req/s)")
