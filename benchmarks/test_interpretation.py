"""Extension — which Table II features drive the runtime model?

The paper motivates its two feature groups (serial terms and per-thread
parallel terms) from the GEMM cost structure.  Gain-based feature
importances of the trained boosting model let us check that story
directly: the FLOP-related terms (m*k*n and its per-thread variant) and
the thread count itself should dominate.
"""

import numpy as np

from benchmarks.conftest import GADI_GRID
from repro.core.features import FeatureBuilder
from repro.ml.xgb import XGBRegressor


def _importances(ctx):
    data = ctx.dataset("gadi", n_shapes=200, memory_cap_mb=500,
                       thread_grid=GADI_GRID)
    fb = FeatureBuilder("both")
    X = fb.build(data.m, data.k, data.n, data.threads)
    y = np.log(data.runtime)
    model = XGBRegressor(n_estimators=60, random_state=0).fit(X, y)
    return fb.names, model.feature_importances_


def test_feature_importances_match_cost_structure(benchmark, ctx, save_result):
    names, imp = benchmark.pedantic(_importances, args=(ctx,),
                                    rounds=1, iterations=1)

    order = np.argsort(-imp)
    lines = ["Extension: gain importances of the runtime model (Gadi, XGBoost)"]
    for i in order:
        bar = "#" * int(round(50 * imp[i] / imp[order[0]]))
        lines.append(f"{names[i]:>18} {imp[i]:7.3f} {bar}")
    save_result("interpretation_importances", "\n".join(lines))

    by_name = dict(zip(names, imp))
    # The FLOP terms (serial + per-thread) carry the bulk of the signal.
    flop_mass = by_name["m*k*n"] + by_name["m*k*n/p"]
    assert flop_mass > 0.2
    # Thread-dependent features (Group 2 + n_threads itself) matter:
    # without them the model could not rank thread counts at all.
    thread_mass = sum(v for k, v in by_name.items() if "/p" in k) \
        + by_name["n_threads"]
    assert thread_mass > 0.1
    # Importances are a distribution.
    np.testing.assert_allclose(imp.sum(), 1.0)
