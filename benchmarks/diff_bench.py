"""Compare two BENCH_*.json artefacts and flag regressions.

The benchmark suites persist machine-readable metrics to
``benchmarks/results/BENCH_<suite>.json`` (one entry per experiment).
CI uploads them per run; this tool diffs two of those files so a
throughput or latency regression shows up as a diff line instead of a
number someone has to eyeball::

    python benchmarks/diff_bench.py old/BENCH_serve.json new/BENCH_serve.json
    python benchmarks/diff_bench.py old.json new.json --tolerance 0.15

The comparison is direction-aware: for throughput-like metrics
(``req_per_s``, ``speedup``, ...) only a *drop* beyond the tolerance is
a regression; for latency/wall-clock-like metrics (``*_ms``, ``*_s``,
``overhead_pct``) only a *rise* is.  Count-like metrics (``served``,
``model_passes``, ...) regress on drift in either direction beyond the
tolerance, and non-numeric values (e.g. the selected model name) are
reported as ``changed`` without failing the diff.  Exit status is 1
when any regression was found, 0 otherwise — suitable for a CI gate.

Importable too: :func:`compare_bench` returns the finding rows for
tests and ad-hoc analysis.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Optional

#: Relative change beyond which a metric's drift counts as significant.
DEFAULT_TOLERANCE = 0.10

#: Metric names where bigger is better (a drop is the regression).
HIGHER_IS_BETTER = {"req_per_s", "speedup", "speedup_vs_plan",
                    "complete_chains", "table_hits"}

#: Suffixes marking cost metrics where smaller is better.
LOWER_IS_BETTER_SUFFIXES = ("_ms", "_s", "_pct")


def direction_of(metric: str) -> str:
    """``"higher"``, ``"lower"`` or ``"either"`` — which way is worse."""
    if metric in HIGHER_IS_BETTER or metric.endswith("_per_s"):
        return "higher"
    if metric.endswith(LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    return "either"


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def relative_change(old: float, new: float) -> float:
    """Signed relative change ``(new - old) / |old|`` (inf from zero)."""
    if old == 0:
        return 0.0 if new == 0 else math.inf * (1 if new > 0 else -1)
    return (new - old) / abs(old)


def _finding(entry: str, metric: str, old: Any, new: Any,
             status: str, change: Optional[float] = None) -> Dict[str, Any]:
    return {"entry": entry, "metric": metric, "old": old, "new": new,
            "change": change, "status": status}


def compare_metric(entry: str, metric: str, old: Any, new: Any,
                   tolerance: float) -> Dict[str, Any]:
    """One finding row for one (entry, metric) pair present in both."""
    if not (_is_number(old) and _is_number(new)):
        status = "ok" if old == new else "changed"
        return _finding(entry, metric, old, new, status)
    change = relative_change(float(old), float(new))
    direction = direction_of(metric)
    if direction == "higher":
        worse, better = change < -tolerance, change > tolerance
    elif direction == "lower":
        worse, better = change > tolerance, change < -tolerance
    else:
        worse, better = abs(change) > tolerance, False
    if worse:
        status = "regression"
    elif better:
        status = "improved"
    else:
        status = "ok"
    return _finding(entry, metric, old, new, status, change=change)


def compare_bench(old: Dict[str, dict], new: Dict[str, dict],
                  tolerance: float = DEFAULT_TOLERANCE) -> List[dict]:
    """Diff two loaded BENCH dicts; returns one finding per metric.

    Entries or metrics present on only one side are reported as
    ``added`` / ``removed`` (informational, never a regression — a new
    experiment must not fail the first diff that sees it).
    """
    findings: List[dict] = []
    for entry in sorted(set(old) | set(new)):
        if entry not in new:
            findings.append(_finding(entry, "-", old[entry], None, "removed"))
            continue
        if entry not in old:
            findings.append(_finding(entry, "-", None, new[entry], "added"))
            continue
        old_metrics, new_metrics = old[entry], new[entry]
        for metric in sorted(set(old_metrics) | set(new_metrics)):
            if metric not in new_metrics:
                findings.append(_finding(entry, metric, old_metrics[metric],
                                         None, "removed"))
            elif metric not in old_metrics:
                findings.append(_finding(entry, metric, None,
                                         new_metrics[metric], "added"))
            else:
                findings.append(compare_metric(
                    entry, metric, old_metrics[metric], new_metrics[metric],
                    tolerance))
    return findings


def regressions(findings: List[dict]) -> List[dict]:
    return [f for f in findings if f["status"] == "regression"]


def _fmt(value: Any) -> str:
    if _is_number(value) and isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_findings(findings: List[dict], *, verbose: bool = False) -> str:
    """Human-readable diff: regressions and changes, counts for the rest."""
    lines: List[str] = []
    quiet = 0
    for f in findings:
        if f["status"] == "ok" and not verbose:
            quiet += 1
            continue
        change = (f" ({f['change']:+.1%})"
                  if isinstance(f.get("change"), float)
                  and math.isfinite(f["change"]) else "")
        lines.append(f"  {f['status']:<10} {f['entry']}.{f['metric']}: "
                     f"{_fmt(f['old'])} -> {_fmt(f['new'])}{change}")
    if quiet:
        lines.append(f"  ({quiet} metric(s) within tolerance)")
    return "\n".join(lines) if lines else "  (no findings)"


def load_bench(path: str) -> Dict[str, dict]:
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object of entries")
    return data


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="diff_bench",
        description="Diff two BENCH_*.json files; exit 1 on regression.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative drift allowed before a numeric metric "
                             f"regresses (default {DEFAULT_TOLERANCE:g})")
    parser.add_argument("--verbose", action="store_true",
                        help="also list metrics that are within tolerance")
    args = parser.parse_args(argv)

    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"diff_bench: {exc}", file=sys.stderr)
        return 2

    findings = compare_bench(old, new, tolerance=args.tolerance)
    bad = regressions(findings)
    print(f"diff_bench: {args.old} -> {args.new} "
          f"(tolerance {args.tolerance:.0%})")
    print(render_findings(findings, verbose=args.verbose))
    if bad:
        print(f"{len(bad)} regression(s) beyond tolerance")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
