"""Tables V & VI — speedup statistics on the fresh 174-shape test set.

Table V (hyper-threading on) and Table VI (off), for the 0-500 MB and
0-100 MB memory ranges on both platforms.  Paper findings:

* mean speedup > 1 everywhere; the 0-100 MB range beats 0-500 MB on the
  percentile profile;
* Setonix gains more than Gadi in the 0-500 MB range (1.32x vs 1.07x);
* occasional very large maxima from pathological small/skinny shapes.
"""

import numpy as np
import pytest

from benchmarks.conftest import measured_speedups
from repro.bench.report import format_table
from repro.bench.stats import speedup_stats


def _speedup_table(ctx, bundles, hyperthreading):
    rows, raw = [], {}
    for machine, bundle in bundles.items():
        for cap in (500, 100):
            s = measured_speedups(ctx, machine, bundle, memory_cap_mb=cap,
                                  n_shapes=174,
                                  hyperthreading=hyperthreading)
            raw[(machine, cap)] = s
            row = {"Platform / range": f"{machine} 0-{cap} MB"}
            row.update(speedup_stats(s).as_dict())
            rows.append(row)
    return rows, raw


@pytest.mark.parametrize("ht", [True, False], ids=["table5_ht_on", "table6_ht_off"])
def test_tables_5_6_speedup_statistics(ht, benchmark, ctx, save_result,
                                       setonix_prod_bundle, gadi_prod_bundle,
                                       setonix_prod_bundle_noht,
                                       gadi_prod_bundle_noht):
    # The hyper-threading-off experiment installs on the HT-off machine,
    # as a real deployment would (its campaign never sees SMT counts).
    if ht:
        bundles = {"setonix": setonix_prod_bundle, "gadi": gadi_prod_bundle}
    else:
        bundles = {"setonix": setonix_prod_bundle_noht,
                   "gadi": gadi_prod_bundle_noht}
    rows, raw = benchmark.pedantic(_speedup_table, args=(ctx, bundles, ht),
                                   rounds=1, iterations=1)

    name = "table5_speedup_ht" if ht else "table6_speedup_noht"
    title = ("Table V: ADSALA speedup stats (hyper-threading ON)" if ht
             else "Table VI: ADSALA speedup stats (hyper-threading OFF)")
    save_result(name, format_table(rows, title=title))

    for (machine, cap), s in raw.items():
        stats = speedup_stats(s)
        # The core claim: ADSALA helps on average on every platform/range.
        assert stats.mean > 1.0, (machine, cap, stats.mean)
        # Medians at or above parity; occasional regressions allowed
        # (paper Table V min speedups go down to 0.76).
        assert stats.median >= 0.95, (machine, cap)
        # Pathological shapes produce large maxima (paper: up to 9.05).
        assert stats.maximum > 1.5, (machine, cap)

    if ht:
        s_set = speedup_stats(raw[("setonix", 500)])
        s_gadi = speedup_stats(raw[("gadi", 500)])
        # Paper: Setonix 1.32x vs Gadi 1.07x in 0-500 MB — Setonix keeps
        # the larger advantage on the wide range.
        assert s_set.median >= s_gadi.median * 0.95
