"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path.  All metadata (and the pytest configuration
that makes ``python -m pytest -x -q`` work without ``PYTHONPATH=src``)
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
