"""Serving telemetry: queue depth, batch sizes, latency percentiles.

One :class:`ServeTelemetry` instance per server records every admission
decision and every executed batch.  Latency aggregation goes through
:func:`repro.bench.stats.latency_summary`, the same helper the benchmark
reports use, so a p99 printed by ``server.stats()`` and a p99 printed by
``bench/report.py`` are computed identically.

Counters and latency samples are additionally segmented by *routine*
(the spec's ``routine`` tag), so a mixed GEMM/GEMV/TRSM/SYRK deployment
can answer "which routine's tail latency regressed?" without replaying
the trace.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.stats import latency_summary


class ServeTelemetry:
    """Counters and samples for one server's lifetime."""

    def __init__(self):
        self.submitted = 0
        self.served = 0
        self.failed = 0
        self.table_hits = 0
        self.table_fallbacks = 0
        self.rejected = Counter()      # reason -> count
        self.batch_sizes: list = []    # one entry per executed batch
        self.queue_depths: list = []   # sampled at every admission
        self.latencies: list = []      # seconds, submit -> resolve
        self.waits: list = []          # seconds, submit -> batch start
        self.per_client: dict = {}     # client -> counters
        self.per_routine: dict = {}    # routine -> counters + samples
        self.per_shard_batches = Counter()
        self.reloads = Counter()       # shard -> applied hot-reloads

    # -- recording -------------------------------------------------------
    def _client(self, client: str) -> dict:
        return self.per_client.setdefault(
            client, {"submitted": 0, "served": 0, "failed": 0, "rejected": 0})

    def _routine(self, routine: str) -> dict:
        return self.per_routine.setdefault(
            routine, {"submitted": 0, "served": 0, "failed": 0,
                      "rejected": 0, "latencies": []})

    def record_admission(self, client: str, queue_depth: int,
                         routine: str = None) -> None:
        self.submitted += 1
        self.queue_depths.append(int(queue_depth))
        self._client(client)["submitted"] += 1
        if routine is not None:
            self._routine(routine)["submitted"] += 1

    def record_rejection(self, client: str, reason: str,
                         routine: str = None) -> None:
        self.rejected[reason] += 1
        self._client(client)["rejected"] += 1
        if routine is not None:
            self._routine(routine)["rejected"] += 1

    def record_batch(self, shard: str, size: int) -> None:
        self.batch_sizes.append(int(size))
        self.per_shard_batches[shard] += 1

    def record_done(self, client: str, latency: float, wait: float,
                    routine: str = None) -> None:
        self.served += 1
        self.latencies.append(float(latency))
        self.waits.append(float(wait))
        self._client(client)["served"] += 1
        if routine is not None:
            entry = self._routine(routine)
            entry["served"] += 1
            entry["latencies"].append(float(latency))

    def record_failure(self, client: str, routine: str = None) -> None:
        self.failed += 1
        self._client(client)["failed"] += 1
        if routine is not None:
            self._routine(routine)["failed"] += 1

    def record_reload(self, shard: str) -> None:
        self.reloads[shard] += 1

    def record_table(self, routine: str, hits: int, fallbacks: int) -> None:
        """Decision-table outcomes for one executed batch.

        ``hits`` are predictions answered from a tier-0 table without a
        model pass; ``fallbacks`` are cache misses that fell off the
        table's lattice onto the plan path — the drift signal operators
        watch when traffic leaves the compiled lattice.  Only called
        for shards actually serving through a table, so table-less
        deployments keep their historic stats shape.
        """
        self.table_hits += int(hits)
        self.table_fallbacks += int(fallbacks)
        entry = self._routine(routine)
        entry["table_hits"] = entry.get("table_hits", 0) + int(hits)
        entry["table_fallbacks"] = (entry.get("table_fallbacks", 0)
                                    + int(fallbacks))

    # -- reporting -------------------------------------------------------
    def batch_size_histogram(self) -> dict:
        """``{batch size: number of batches}`` in ascending size order."""
        return dict(sorted(Counter(self.batch_sizes).items()))

    def latency(self):
        """:class:`~repro.bench.stats.LatencySummary` of request latency."""
        return latency_summary(self.latencies)

    def wait(self):
        """:class:`~repro.bench.stats.LatencySummary` of queue-wait time."""
        return latency_summary(self.waits)

    def routine_latency(self, routine: str):
        """:class:`~repro.bench.stats.LatencySummary` for one routine."""
        return latency_summary(
            self.per_routine.get(routine, {}).get("latencies", []))

    def routine_stats(self) -> dict:
        """Per-routine counters with latency percentiles (milliseconds)."""
        out = {}
        for routine, entry in self.per_routine.items():
            row = {k: v for k, v in entry.items() if k != "latencies"}
            if entry["latencies"]:
                row["latency_ms"] = latency_summary(
                    entry["latencies"]).as_row()
            out[routine] = row
        return out

    def stats(self) -> dict:
        """Snapshot dict (latency fields in milliseconds)."""
        n_batches = len(self.batch_sizes)
        out = {
            "submitted": self.submitted,
            "served": self.served,
            "failed": self.failed,
            "rejected": sum(self.rejected.values()),
            "rejected_by_reason": dict(self.rejected),
            "batches": n_batches,
            "mean_batch_size": (round(sum(self.batch_sizes) / n_batches, 3)
                                if n_batches else 0.0),
            "batch_size_histogram": self.batch_size_histogram(),
            "max_queue_depth": max(self.queue_depths, default=0),
            "clients": {c: dict(v) for c, v in self.per_client.items()},
            "routines": self.routine_stats(),
            "reloads": sum(self.reloads.values()),
        }
        if self.table_hits or self.table_fallbacks:
            out["table_hits"] = self.table_hits
            out["table_fallbacks"] = self.table_fallbacks
        if self.latencies:
            out["latency_ms"] = self.latency().as_row()
            out["queue_wait_ms"] = self.wait().as_row()
        return out
