"""Serving telemetry: queue depth, batch sizes, latency percentiles.

One :class:`ServeTelemetry` instance per server records every admission
decision and every executed batch.  Latency aggregation goes through
:func:`repro.bench.stats.latency_summary`, the same helper the benchmark
reports use, so a p99 printed by ``server.stats()`` and a p99 printed by
``bench/report.py`` are computed identically.

Counters and latency samples are additionally segmented by *routine*
(the spec's ``routine`` tag), so a mixed GEMM/GEMV/TRSM/SYRK deployment
can answer "which routine's tail latency regressed?" without replaying
the trace.

Samples are held in bounded :class:`~repro.obs.metrics.Reservoir`
stores rather than plain lists: a long-lived server's memory no longer
grows with traffic, while counts, sums and extrema stay exact (and the
retained sample is the *whole* stream until ``capacity`` observations,
so short-run statistics are bitwise identical to the unbounded
implementation this replaced).  Each instance also registers a
weakly-referenced collector with a
:class:`~repro.obs.metrics.MetricsRegistry`, so exporters can pull the
live counters without the hot path ever touching the registry.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.bench.stats import latency_summary
from repro.obs.metrics import (DEFAULT_CAPACITY, MetricsRegistry, Reservoir,
                               default_registry, next_instance_id)


class ServeTelemetry:
    """Counters and samples for one server's lifetime.

    Parameters
    ----------
    capacity:
        Bound on every retained sample store (latencies, waits, batch
        sizes, queue depths — globally and per routine).  Counts and
        aggregate statistics stay exact past it; only the percentile
        sample is subsampled.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` this instance's
        pull collector registers with (default: the process-wide one).
        The registry holds the collector weakly, so a discarded server
        disappears from snapshots automatically.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 registry: Optional[MetricsRegistry] = None):
        self._capacity = int(capacity)
        self.submitted: int = 0
        self.served: int = 0
        self.failed: int = 0
        self.table_hits: int = 0
        self.table_fallbacks: int = 0
        self.table_interpolated: int = 0
        self.rejected: Counter = Counter()   # reason -> count
        # Bounded sample stores (exact count/sum/min/max; the retained
        # sample is exact below `capacity` observations).
        self.batch_sizes = Reservoir(capacity)   # one entry per batch
        self.batch_costs = Reservoir(capacity)   # predicted FLOPs per batch
        self.queue_depths = Reservoir(capacity)  # sampled per admission
        self.latencies = Reservoir(capacity)     # s, submit -> resolve
        self.waits = Reservoir(capacity)         # s, submit -> batch start
        self._batch_size_counts: Counter = Counter()  # size -> n (exact)
        self._batch_closes: Dict[str, Counter] = {}   # shard -> reason -> n
        self.per_client: Dict[str, dict] = {}    # client -> counters
        self.per_routine: Dict[str, dict] = {}   # routine -> counters+samples
        self.per_shard_batches: Counter = Counter()
        self.reloads: Counter = Counter()        # shard -> applied reloads
        self.instance = next_instance_id("serve")
        (registry if registry is not None
         else default_registry()).register_collector(
            self.metrics, component="serve", instance=self.instance)

    # -- recording -------------------------------------------------------
    def _client(self, client: str) -> dict:
        return self.per_client.setdefault(
            client, {"submitted": 0, "served": 0, "failed": 0, "rejected": 0})

    def _routine(self, routine: str) -> dict:
        return self.per_routine.setdefault(
            routine, {"submitted": 0, "served": 0, "failed": 0,
                      "rejected": 0, "latencies": Reservoir(self._capacity),
                      "waits": Reservoir(self._capacity)})

    def record_admission(self, client: str, queue_depth: int,
                         routine: Optional[str] = None, n: int = 1) -> None:
        """Record ``n`` admitted requests sharing one queue snapshot.

        The bulk-submit path admits a whole slab per call; the depth
        sample is recorded once per call (one queue observation), while
        the counters advance by ``n``.
        """
        self.submitted += n
        self.queue_depths.append(int(queue_depth))
        self._client(client)["submitted"] += n
        if routine is not None:
            self._routine(routine)["submitted"] += n

    def record_rejection(self, client: str, reason: str,
                         routine: Optional[str] = None, n: int = 1) -> None:
        self.rejected[reason] += n
        self._client(client)["rejected"] += n
        if routine is not None:
            self._routine(routine)["rejected"] += n

    def record_batch(self, shard: str, size: int,
                     cost: Optional[float] = None) -> None:
        """One executed batch; ``cost`` is its predicted-FLOPs total
        (recorded only when the scheduler runs under a cost budget)."""
        self.batch_sizes.append(int(size))
        self._batch_size_counts[int(size)] += 1
        self.per_shard_batches[shard] += 1
        if cost is not None:
            self.batch_costs.append(float(cost))

    def record_close(self, shard: str, reason: str) -> None:
        """Why a forming batch stopped collecting: ``size`` (slot cap or
        slot-overflow carry), ``cost`` (predicted-FLOPs budget carry),
        ``window`` (straggler deadline) or ``control``
        (shutdown/reload)."""
        self._batch_closes.setdefault(shard, Counter())[reason] += 1

    def record_done(self, client: str, latency: float, wait: float,
                    routine: Optional[str] = None) -> None:
        self.served += 1
        self.latencies.append(float(latency))
        self.waits.append(float(wait))
        self._client(client)["served"] += 1
        if routine is not None:
            entry = self._routine(routine)
            entry["served"] += 1
            entry["latencies"].append(float(latency))
            entry["waits"].append(float(wait))

    def record_failure(self, client: str,
                       routine: Optional[str] = None) -> None:
        self.failed += 1
        self._client(client)["failed"] += 1
        if routine is not None:
            self._routine(routine)["failed"] += 1

    def record_reload(self, shard: str) -> None:
        self.reloads[shard] += 1

    def record_table(self, routine: str, hits: int, fallbacks: int,
                     interpolated: int = 0) -> None:
        """Decision-table outcomes for one executed batch.

        ``hits`` are predictions answered from a tier-0 table without a
        model pass; ``fallbacks`` are cache misses that fell off the
        table's lattice onto the plan path — the drift signal operators
        watch when traffic leaves the compiled lattice.
        ``interpolated`` is the sub-count of hits answered *between*
        lattice points (plateau cells), distinguishing "traffic sits on
        the lattice" from "the lattice is coarse but plateaus cover
        it".  Only called for shards actually serving through a table,
        so table-less deployments keep their historic stats shape.
        """
        self.table_hits += int(hits)
        self.table_fallbacks += int(fallbacks)
        self.table_interpolated += int(interpolated)
        entry = self._routine(routine)
        entry["table_hits"] = entry.get("table_hits", 0) + int(hits)
        entry["table_fallbacks"] = (entry.get("table_fallbacks", 0)
                                    + int(fallbacks))
        if interpolated:
            entry["table_interpolated"] = (entry.get("table_interpolated", 0)
                                           + int(interpolated))

    # -- reporting -------------------------------------------------------
    def batch_size_histogram(self) -> dict:
        """``{batch size: number of batches}`` in ascending size order.

        Exact over the server's lifetime (counted at record time, not
        recovered from the bounded sample).
        """
        return dict(sorted(self._batch_size_counts.items()))

    def latency(self):
        """:class:`~repro.bench.stats.LatencySummary` of request latency."""
        return latency_summary(self.latencies)

    def wait(self):
        """:class:`~repro.bench.stats.LatencySummary` of queue-wait time."""
        return latency_summary(self.waits)

    def routine_latency(self, routine: str):
        """:class:`~repro.bench.stats.LatencySummary` for one routine."""
        return latency_summary(
            self.per_routine.get(routine, {}).get("latencies", []))

    def routine_wait(self, routine: str):
        """:class:`~repro.bench.stats.LatencySummary` of one routine's
        queue wait (submit -> batch execution start)."""
        return latency_summary(
            self.per_routine.get(routine, {}).get("waits", []))

    def routine_stats(self) -> dict:
        """Per-routine counters with latency percentiles (milliseconds)."""
        out = {}
        for routine, entry in self.per_routine.items():
            row = {k: v for k, v in entry.items()
                   if k not in ("latencies", "waits")}
            if entry["latencies"]:
                row["latency_ms"] = latency_summary(
                    entry["latencies"]).as_row()
            if entry["waits"]:
                row["queue_wait_ms"] = latency_summary(
                    entry["waits"]).as_row()
            out[routine] = row
        return out

    def metrics(self) -> Dict[str, float]:
        """Flat counter pull for a metrics-registry collector."""
        out = {
            "serve_submitted": self.submitted,
            "serve_served": self.served,
            "serve_failed": self.failed,
            "serve_rejected": sum(self.rejected.values()),
            "serve_batches": self.batch_sizes.count,
            "serve_reloads": sum(self.reloads.values()),
        }
        if self.table_hits or self.table_fallbacks:
            out["serve_table_hits"] = self.table_hits
            out["serve_table_fallbacks"] = self.table_fallbacks
            if self.table_interpolated:
                out["serve_table_interpolated"] = self.table_interpolated
        if self.latencies.count:
            out["serve_latency_p99_s"] = self.latencies.percentile(99)
            out["serve_latency_mean_s"] = (self.latencies.total
                                           / self.latencies.count)
        cost_closed = sum(c.get("cost", 0)
                          for c in self._batch_closes.values())
        if cost_closed:
            out["serve_cost_closed_batches"] = cost_closed
        if self.batch_costs.count:
            out["serve_batch_cost_mean_flops"] = (self.batch_costs.total
                                                  / self.batch_costs.count)
        return out

    def stats(self) -> dict:
        """Snapshot dict (latency fields in milliseconds)."""
        n_batches = self.batch_sizes.count
        out = {
            "submitted": self.submitted,
            "served": self.served,
            "failed": self.failed,
            "rejected": sum(self.rejected.values()),
            "rejected_by_reason": dict(self.rejected),
            "batches": n_batches,
            "mean_batch_size": (round(self.batch_sizes.total / n_batches, 3)
                                if n_batches else 0.0),
            "batch_size_histogram": self.batch_size_histogram(),
            "max_queue_depth": (int(self.queue_depths.maximum)
                                if self.queue_depths.count else 0),
            "clients": {c: dict(v) for c, v in self.per_client.items()},
            "routines": self.routine_stats(),
            "reloads": sum(self.reloads.values()),
        }
        if self._batch_closes:
            totals: Counter = Counter()
            for counter in self._batch_closes.values():
                totals.update(counter)
            out["batch_close_reasons"] = dict(totals)
            out["batch_closes_by_shard"] = {
                shard: dict(counter)
                for shard, counter in self._batch_closes.items()}
        if self.batch_costs.count:
            out["batch_cost"] = self.batch_costs.summary()
        if self.table_hits or self.table_fallbacks:
            out["table_hits"] = self.table_hits
            out["table_fallbacks"] = self.table_fallbacks
            if self.table_interpolated:
                out["table_interpolated"] = self.table_interpolated
        if self.latencies:
            out["latency_ms"] = self.latency().as_row()
            out["queue_wait_ms"] = self.wait().as_row()
        return out
