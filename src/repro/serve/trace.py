"""Arrival traces and replay harness for the serving subsystem.

A trace is a list of :class:`TimedRequest` — a spec, a client identity
and an arrival offset.  :func:`poisson_trace` builds the classic
open-loop load-test input (exponential inter-arrival times at a target
rate); :func:`replay_trace` plays any trace against a
:class:`~repro.serve.server.GemmServer` with one asyncio task per
client request, which is exactly the many-concurrent-callers pattern
the server exists to batch.

The CLI ``serve`` command, ``benchmarks/test_serve_throughput.py`` and
``examples/serve_trace.py`` all drive this module rather than each
re-implementing a load generator.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serve.request import ServerOverloaded


@dataclass(frozen=True)
class TimedRequest:
    """One trace entry: ``spec`` arrives ``at`` seconds into the replay.

    ``trace_id`` is an optional trace-context carrier: replayed against
    a tracing-enabled server it names the request's span chain
    (cross-system correlation); left ``None`` the server assigns its
    own id when tracing is on.
    """

    spec: object
    at: float
    client: str = "default"
    trace_id: Optional[str] = None


def poisson_trace(specs, rate_hz: float, n_requests: int = None,
                  n_clients: int = 1, seed: int = 0) -> list:
    """Open-loop Poisson arrivals over a spec pool.

    Specs cycle through ``specs`` in order (so the *spec sequence* is
    independent of the seed and can be replayed synchronously for
    parity checks); only the arrival times are random.  Clients are
    assigned round-robin as ``client-0 .. client-{n_clients-1}``.
    """
    pool = list(specs)
    if not pool:
        raise ValueError("no specs to build a trace from")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    n = len(pool) if n_requests is None else int(n_requests)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_hz, size=n))
    return [TimedRequest(spec=pool[i % len(pool)], at=float(arrivals[i]),
                         client=f"client-{i % n_clients}")
            for i in range(n)]


@dataclass
class ReplayOutcome:
    """What one trace replay produced.

    ``records`` is aligned with the trace: a
    :class:`~repro.engine.service.GemmCallRecord` per served request,
    ``None`` where admission rejected it.
    """

    records: list
    wall_seconds: float
    stats: dict

    @property
    def served(self) -> int:
        return sum(r is not None for r in self.records)

    @property
    def rejected(self) -> int:
        return len(self.records) - self.served

    @property
    def requests_per_sec(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds else 0.0

    def thread_choices(self) -> list:
        """Per-request thread choices (None for rejected requests)."""
        return [None if r is None else r.n_threads for r in self.records]

    def report_row(self, label: str = "replay") -> dict:
        """One summary row for :func:`repro.bench.report.format_table`."""
        row = {
            "mode": label,
            "requests": len(self.records),
            "served": self.served,
            "rejected": self.rejected,
            "wall_ms": round(self.wall_seconds * 1e3, 1),
            "req_per_s": round(self.requests_per_sec, 1),
            "batches": self.stats.get("batches", 0),
            "mean_batch": self.stats.get("mean_batch_size", 0.0),
            "model_passes": self.stats.get("model_passes", 0),
        }
        latency = self.stats.get("latency_ms")
        if latency:
            row.update({"p50_ms": latency["p50_ms"],
                        "p95_ms": latency["p95_ms"],
                        "p99_ms": latency["p99_ms"]})
        return row


async def replay_trace_async(server, trace, time_scale: float = 1.0) -> ReplayOutcome:
    """Replay ``trace`` against an *unstarted* server; drains on exit.

    Each trace entry becomes its own task that sleeps until its arrival
    offset (scaled by ``time_scale``) and then awaits ``submit``;
    overload rejections are recorded as ``None``, not raised.
    """
    loop = asyncio.get_running_loop()

    async def one_client_call(item: TimedRequest):
        await asyncio.sleep(item.at * time_scale)
        try:
            return await server.submit(item.spec, client=item.client,
                                       trace_id=item.trace_id)
        except ServerOverloaded:
            return None

    async with server:
        t0 = loop.time()
        records = await asyncio.gather(*(one_client_call(item)
                                         for item in trace))
        wall = loop.time() - t0
    return ReplayOutcome(records=list(records), wall_seconds=wall,
                         stats=server.stats())


def replay_trace(server, trace, time_scale: float = 1.0) -> ReplayOutcome:
    """Synchronous wrapper around :func:`replay_trace_async`."""
    return asyncio.run(replay_trace_async(server, trace,
                                          time_scale=time_scale))
