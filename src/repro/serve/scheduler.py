"""The micro-batching scheduler: window-or-size batch formation.

One :class:`MicroBatcher` task runs per shard.  It pulls the first
request off the shard queue, then keeps collecting until either
``max_batch`` requests are in hand or ``max_wait_ms`` has elapsed since
the first one arrived — the dynamic-batching idiom of production
inference servers.  The collected batch is fulfilled with **one**
:meth:`~repro.engine.service.GemmService.run_batch` call, whose thread
choices are bitwise identical to per-request
:meth:`~repro.engine.service.GemmService.run` (the engine guarantees
batch == scalar prediction), and each caller's future is resolved with
its own :class:`~repro.engine.service.GemmCallRecord`.

Shutdown is a sentinel enqueued *behind* every already-admitted request
(the queue is FIFO and admission stops first), so closing the server
drains in-flight work instead of dropping it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.core.routines import routine_of
from repro.engine.cache import shape_key as _shape_key
from repro.serve.cost import CostModel
from repro.serve.request import ReloadCommand, SlabRequest

#: Queue sentinel marking the end of the request stream for a shard.
SHUTDOWN = object()


def _entry_size(entry) -> int:
    """Request slots a queue entry occupies (slabs carry many)."""
    return getattr(entry, "count", 1)


@dataclass(frozen=True)
class BatchPolicy:
    """When to close a forming batch.

    Parameters
    ----------
    max_batch:
        Dispatch as soon as this many requests are collected.
    max_wait_ms:
        Dispatch at most this many milliseconds after the *first*
        request of the batch arrived, however few followed it — this is
        the straggler bound on added latency.
    max_batch_cost:
        Optional predicted-FLOPs budget (see
        :class:`~repro.serve.cost.CostModel`): the batch also closes
        when admitting the next entry would push its summed predicted
        cost past this.  Heavy requests form small batches, light ones
        fill large ones; a single over-budget request still gets a
        batch of its own.  ``None`` (the default) keeps batch formation
        count-only.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_batch_cost: float = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_batch_cost is not None and self.max_batch_cost <= 0:
            raise ValueError("max_batch_cost must be > 0 (or None)")


class MicroBatcher:
    """Batch-forming consumer loop for one shard.

    Parameters
    ----------
    service:
        The shard's :class:`~repro.engine.service.GemmService`.
    policy:
        The :class:`BatchPolicy` window/size thresholds.
    telemetry:
        Shared :class:`~repro.serve.telemetry.ServeTelemetry`.
    release:
        Callback invoked once per request after its future resolves
        (the server decrements pending/fair-share accounting here).
    shard:
        Shard name, for telemetry attribution.
    collector:
        Optional :class:`~repro.obs.tracing.SpanCollector`; when set,
        each executed request's :class:`~repro.obs.tracing.RequestTrace`
        is stamped (batch formation, execution window, the tier that
        answered its prediction) and finished into the collector.
        ``None`` keeps the hot path span-free.
    after_batch:
        Optional zero-argument callback invoked once per executed batch
        after every future has resolved — the server evaluates its
        drift monitors here.
    cost_model:
        The :class:`~repro.serve.cost.CostModel` pricing entries when
        the policy carries a ``max_batch_cost`` budget (a default model
        is built when omitted).  With no budget the model is never
        consulted, so the count-only hot path stays cost-free.
    """

    def __init__(self, service, policy: BatchPolicy, telemetry, release,
                 shard: str = "default", collector=None, after_batch=None,
                 cost_model=None):
        self.service = service
        self.policy = policy
        self.telemetry = telemetry
        self.release = release
        self.shard = shard
        self.collector = collector
        self.after_batch = after_batch
        self.cost_model = cost_model if cost_model is not None else CostModel()

    def _entry_cost(self, entry) -> float:
        """Predicted cost of a queue entry (a slab prices all its slots)."""
        if isinstance(entry, SlabRequest):
            return self.cost_model.total_cost(entry.specs)
        return self.cost_model.cost_of_one(entry.spec)

    async def run(self, queue: asyncio.Queue) -> None:
        """Consume ``queue`` until the shutdown sentinel arrives.

        :class:`~repro.serve.request.ReloadCommand` items hot-swap the
        shard's bundle *between* batches: a command closes the batch
        being collected, the batch executes on the old bundle, and the
        swap applies before the next batch forms.
        """
        loop = asyncio.get_running_loop()
        closing = False
        carry = None
        while not closing:
            if carry is not None:
                first, carry = carry, None
            else:
                first = await queue.get()
            if first is SHUTDOWN:
                break
            if isinstance(first, ReloadCommand):
                self._apply_reload(first)
                continue
            batch = [first]
            # Traced runs stamp when batch formation began (the pull of
            # the first request); untraced runs skip the clock read.
            t_form = loop.time() if self.collector is not None else None
            closing, pending_reload, carry = await self._collect(
                queue, batch, loop)
            await self._execute(batch, loop, t_form=t_form)
            if pending_reload is not None:
                self._apply_reload(pending_reload)

    async def _collect(self, queue, batch, loop):
        """Fill ``batch`` until size/cost/window/control closes it.

        Size counts request *slots*, not queue entries — a
        :class:`SlabRequest` occupies ``count`` of them.  Returns
        ``(closing, pending_reload, carry)``: ``closing`` is True on
        shutdown; a :class:`ReloadCommand` stops collection so the
        in-flight batch stays on the bundle it was admitted under; an
        entry that would push the batch past ``max_batch`` — or, when
        the policy carries a ``max_batch_cost`` budget, past the
        predicted-cost budget — comes back as ``carry`` and seeds the
        next batch (the queue is FIFO, so it cannot be put back without
        reordering).  The first entry is always accepted, so a single
        over-budget request forms a batch of its own.  Each close
        records its reason (``size``/``cost``/``window``/``control``)
        into telemetry.
        """
        size = sum(_entry_size(r) for r in batch)
        budget = self.policy.max_batch_cost
        cost = (sum(self._entry_cost(r) for r in batch)
                if budget is not None else 0.0)
        deadline = loop.time() + self.policy.max_wait_ms / 1e3
        while size < self.policy.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.telemetry.record_close(self.shard, "window")
                return False, None, None
            try:
                item = await asyncio.wait_for(queue.get(), remaining)
            except asyncio.TimeoutError:
                self.telemetry.record_close(self.shard, "window")
                return False, None, None
            if item is SHUTDOWN:
                self.telemetry.record_close(self.shard, "control")
                return True, None, None
            if isinstance(item, ReloadCommand):
                self.telemetry.record_close(self.shard, "control")
                return False, item, None
            if size + _entry_size(item) > self.policy.max_batch:
                self.telemetry.record_close(self.shard, "size")
                return False, None, item
            if budget is not None:
                item_cost = self._entry_cost(item)
                if cost + item_cost > budget:
                    self.telemetry.record_close(self.shard, "cost")
                    return False, None, item
                cost += item_cost
            batch.append(item)
            size += _entry_size(item)
        self.telemetry.record_close(self.shard, "size")
        return False, None, None

    def _apply_reload(self, command: ReloadCommand) -> None:
        """Swap the shard's bundle; resolve the command's future."""
        try:
            info = self.service.reload(command.bundle, **command.kwargs)
        except Exception as exc:
            if not command.future.done():
                command.future.set_exception(exc)
            return
        self.telemetry.record_reload(self.shard)
        if not command.future.done():
            command.future.set_result(info)

    def _table_snapshot(self) -> dict:
        """Per-routine decision-table counters of the shard's predictors.

        Per-shard execution is strictly sequential (the batcher awaits
        its own pass), so diffing this snapshot across one
        :meth:`_execute` attributes table hits/fallbacks to exactly that
        batch.
        """
        counters = {}
        predictors = getattr(self.service, "predictors", None)
        if not predictors:  # duck-typed service without predictor map
            return counters
        for routine, predictor in predictors.items():
            if getattr(predictor, "table", None) is not None:
                counters[routine] = (
                    predictor.n_table_hits,
                    predictor.n_table_fallbacks,
                    getattr(predictor, "n_table_interpolated", 0))
        return counters

    def _tiers_of(self, specs, records) -> list:
        """Which prediction tier answered each record's thread choice.

        ``memoised`` marks the cache (or an earlier duplicate in the
        same batch).  The rest are probed against their routine's
        tier-0 table with **one** vectorised
        :meth:`~repro.compile.table.DecisionTable.lookup_batch` call per
        predictor (the probe is a pure lattice lookup —
        side-effect-free, no counters, no model pass; per-request
        scalar probes would re-pay the numpy setup the serving path
        amortises over the batch).  Off-lattice shapes attribute to the
        compiled "plan" when one is installed, else the "object"
        pipeline path.
        """
        tiers = [None] * len(specs)
        predictor_for = getattr(self.service, "predictor_for", None)
        groups = {}  # id(predictor) -> (predictor, [row indices])
        for i, (spec, record) in enumerate(zip(specs, records)):
            if record.memoised:
                tiers[i] = "cache"
            elif predictor_for is None:  # duck-typed service
                tiers[i] = "object"
            else:
                predictor = predictor_for(spec)
                groups.setdefault(id(predictor), (predictor, []))[1].append(i)
        for predictor, rows in groups.values():
            fallthrough = "plan" if getattr(predictor, "plan", None) \
                is not None else "object"
            table = getattr(predictor, "table", None)
            if table is None:
                for i in rows:
                    tiers[i] = fallthrough
                continue
            _, resolved = table.lookup_batch(
                [_shape_key(specs[i]) for i in rows])
            for i, on_lattice in zip(rows, resolved):
                tiers[i] = "table" if on_lattice else fallthrough
        return tiers

    def _stamp_trace(self, trace, record, tier, batch_size, t_form,
                     t_start, t_done) -> None:
        """Fill one request's trace with the batch window and finish it."""
        trace.t_batch_form = t_form if t_form is not None else t_start
        trace.t_exec_start = t_start
        trace.t_exec_done = t_done
        trace.batch_size = batch_size
        trace.tier = tier
        trace.n_threads = record.n_threads
        trace.runtime_s = record.runtime
        self.collector.finish(trace)

    async def _execute(self, batch, loop, t_form: float = None) -> None:
        """One vectorised service pass; resolve every caller's future.

        The pass runs in the loop's default executor so a long batch
        (a real ``ParallelExecutionBackend`` GEMM, say) never blocks
        other shards' windows or new admissions; this shard's own
        batcher stays suspended here, so per-shard execution remains
        strictly sequential and choices stay deterministic.

        A :class:`SlabRequest` entry contributes all its slots to the
        flattened spec list and gets its *single* future resolved with
        the slot-aligned slice of records; telemetry and tracing stay
        per-request, so slab and streaming submissions are
        indistinguishable downstream.
        """
        t_start = loop.time()
        specs = []
        for entry in batch:
            if isinstance(entry, SlabRequest):
                specs.extend(entry.specs)
            else:
                specs.append(entry.spec)
        # Per-batch predicted cost is recorded only under a budget, so
        # count-only serving pays no pricing work on the hot path.
        batch_cost = (self.cost_model.total_cost(specs)
                      if self.policy.max_batch_cost is not None else None)
        self.telemetry.record_batch(self.shard, len(specs), cost=batch_cost)
        tables_before = self._table_snapshot()
        try:
            records = await loop.run_in_executor(
                None, self.service.run_batch, specs)
        except Exception as exc:
            for entry in batch:
                if isinstance(entry, SlabRequest):
                    for spec in entry.specs:
                        self.telemetry.record_failure(
                            entry.client, routine=routine_of(spec))
                    if self.collector is not None and entry.traces is not None:
                        for trace in entry.traces:
                            trace.status = "error"
                            self.collector.finish(trace)
                else:
                    self.telemetry.record_failure(
                        entry.client, routine=routine_of(entry.spec))
                    if self.collector is not None and entry.trace is not None:
                        entry.trace.status = "error"
                        self.collector.finish(entry.trace)
                if not entry.future.done():
                    entry.future.set_exception(exc)
                self.release(entry)
            if self.after_batch is not None:
                self.after_batch()
            return
        t_done = loop.time()
        for routine, counts in self._table_snapshot().items():
            hits, fallbacks, interpolated = counts
            h0, f0, i0 = tables_before.get(routine, (0, 0, 0))
            if hits > h0 or fallbacks > f0:
                self.telemetry.record_table(routine, hits - h0,
                                            fallbacks - f0,
                                            interpolated=interpolated - i0)
        tiers = self._tiers_of(specs, records) \
            if self.collector is not None else None
        n_total = len(specs)
        offset = 0
        for entry in batch:
            n = _entry_size(entry)
            if isinstance(entry, SlabRequest):
                slab_records = list(records[offset:offset + n])
                for spec in entry.specs:
                    self.telemetry.record_done(
                        entry.client, latency=t_done - entry.t_submit,
                        wait=t_start - entry.t_submit,
                        routine=routine_of(spec))
                if not entry.future.done():
                    entry.future.set_result(slab_records)
                if self.collector is not None and entry.traces is not None:
                    for j, (trace, record) in enumerate(
                            zip(entry.traces, slab_records)):
                        self._stamp_trace(trace, record, tiers[offset + j],
                                          n_total, t_form, t_start, t_done)
            else:
                record = records[offset]
                self.telemetry.record_done(
                    entry.client, latency=t_done - entry.t_submit,
                    wait=t_start - entry.t_submit,
                    routine=routine_of(entry.spec))
                if not entry.future.done():
                    entry.future.set_result(record)
                if self.collector is not None and entry.trace is not None:
                    self._stamp_trace(entry.trace, record, tiers[offset],
                                      n_total, t_form, t_start, t_done)
            self.release(entry)
            offset += n
        if self.after_batch is not None:
            self.after_batch()
