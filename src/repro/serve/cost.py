"""Predicted-cost accounting for batch formation and fleet routing.

The scheduler and the fleet front both need the same number: *how
expensive is this request going to be?*  The stack already knows — every
:class:`~repro.core.routines.RoutineSpec` prices itself via ``flops``
(GEMM's ``2mkn + 2mn``, GEMV's bandwidth-bound ``2mn + 2m``, ...), and
SNIPPETS' WSE-2 SUMMA model shows a closed-form FLOPs decomposition
predicts runtime to ~1.5%.  :class:`CostModel` turns that accounting
into a single pricing surface:

* batch formation — :class:`~repro.serve.scheduler.BatchPolicy` can
  close a micro-batch on a predicted-FLOPs budget (``max_batch_cost``)
  instead of waiting for ``max_batch`` slots, so one heavy GEMM no
  longer defines the latency of the thirty cheap GEMVs sharing its
  window;
* slab framing — :func:`chunk_by_cost` chops a routed burst on the same
  budget, so slabs crossing a fleet pipe are cost-balanced, not merely
  count-balanced;
* routing — :class:`~repro.serve.router.CostAwareLeastLoadedRouter`
  weights a worker's in-flight load by outstanding predicted FLOPs, so
  "two huge requests" finally looks heavier than "three tiny ones".

Costs are *relative* weights, not wall-clock predictions: the default
model prices a spec at its raw FLOP count, and ``scales`` lets a
deployment calibrate per-routine multipliers (e.g. boost GEMV's weight
because it is bandwidth-bound and its FLOPs undercount its runtime)
without touching the accounting itself.  Pricing never changes *which*
threads are selected — the per-spec prediction is independent of batch
boundaries — so cost-budgeted serving stays bitwise identical to
count-only serving on the same arrival order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.routines import routine_of
from repro.gemm.counts import gemm_flops


class CostModel:
    """Price specs by predicted FLOPs, with per-routine calibration.

    Parameters
    ----------
    scales:
        Optional ``{routine name: multiplier}`` applied on top of the
        spec's own FLOP count.  Unlisted routines use 1.0.
    default_cost:
        Cost charged for an object that exposes neither ``flops`` nor a
        bare ``(m, k, n)`` triple — every request must weigh *something*
        or a stream of them would never close a budgeted batch.
    """

    def __init__(self, scales: Optional[Dict[str, float]] = None,
                 default_cost: float = 1.0):
        self.scales: Dict[str, float] = {}
        if scales:
            for routine, scale in scales.items():
                self.calibrate(routine, scale)
        if default_cost <= 0:
            raise ValueError("default_cost must be > 0")
        self.default_cost = float(default_cost)

    def calibrate(self, routine: str, scale: float) -> "CostModel":
        """Set one routine's cost multiplier (chainable)."""
        if float(scale) <= 0:
            raise ValueError(
                f"cost scale for {routine!r} must be > 0, got {scale}")
        self.scales[str(routine)] = float(scale)
        return self

    def cost_of_one(self, spec) -> float:
        """Predicted cost of one spec (scaled FLOPs)."""
        flops = getattr(spec, "flops", None)
        if flops is None:
            try:  # a bare (m, k, n) triple is a GEMM by convention
                m, k, n = spec
                flops = gemm_flops(int(m), int(k), int(n))
            except (TypeError, ValueError):
                return self.default_cost
        scale = self.scales.get(routine_of(spec), 1.0)
        return float(flops) * scale

    def cost_of(self, specs) -> list:
        """Per-spec costs for a batch, one float per spec.

        Memoised by the spec's canonical ``key()``: a burst repeats
        shapes (that is what the prediction cache exists for), so each
        distinct shape is priced once.
        """
        memo: dict = {}
        out = []
        for spec in specs:
            key = spec.key() if hasattr(spec, "key") else None
            if key is not None:
                cost = memo.get(key)
                if cost is None:
                    cost = memo[key] = self.cost_of_one(spec)
            else:
                cost = self.cost_of_one(spec)
            out.append(cost)
        return out

    def total_cost(self, specs) -> float:
        """Summed predicted cost of a batch."""
        return sum(self.cost_of(specs))


def chunk_by_cost(slots, costs, max_batch: int, max_cost: float = None):
    """Yield runs of ``slots`` bounded by count *and* predicted cost.

    The budgeted twin of :func:`repro.fleet.transport.chunk_slots`:
    every yielded chunk holds at most ``max_batch`` slots and (when
    ``max_cost`` is set) at most ``max_cost`` summed cost — except that
    a single slot over budget still gets a chunk of its own, because a
    request can only shrink a batch, never be refused by one.  With
    ``max_cost=None`` the boundaries are exactly the count-only ones.

    ``costs`` is slot-aligned with ``slots`` (``costs[i]`` prices
    ``slots[i]``'s spec).
    """
    if int(max_batch) < 1:
        raise ValueError("max_batch must be >= 1")
    if max_cost is not None and float(max_cost) <= 0:
        raise ValueError("max_cost must be > 0 (or None for count-only)")
    chunk: list = []
    chunk_cost = 0.0
    for slot, cost in zip(slots, costs):
        if chunk and (len(chunk) >= max_batch
                      or (max_cost is not None
                          and chunk_cost + cost > max_cost)):
            yield chunk
            chunk, chunk_cost = [], 0.0
        chunk.append(slot)
        chunk_cost += cost
    if chunk:
        yield chunk
