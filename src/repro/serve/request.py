"""Request envelope and admission errors for the serving layer.

A :class:`ServeRequest` is what travels from :meth:`GemmServer.submit`
through a shard queue to the micro-batcher: the spec itself plus the
client identity (for fair-share accounting), the admission timestamp
(for latency telemetry) and the future the caller is awaiting.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field


class ServerOverloaded(RuntimeError):
    """The server refused admission (hard limit or fair-share breach).

    Attributes
    ----------
    client:
        The submitting client.
    reason:
        ``"overload"`` (global hard limit) or ``"fair_share"`` (this
        client alone reached its share of the admission budget; the
        rest is held in reserve for other tenants).
    """

    def __init__(self, message: str, client: str = "default",
                 reason: str = "overload"):
        super().__init__(message)
        self.client = client
        self.reason = reason


class ServerClosed(RuntimeError):
    """Submission after :meth:`GemmServer.close` began (or never started)."""


@dataclass
class ServeRequest:
    """One admitted in-flight request.

    ``t_submit`` is event-loop time at admission; the scheduler stamps
    queue-wait and total latency against it when the batch resolves.
    ``trace`` is the request's
    :class:`~repro.obs.tracing.RequestTrace` scratchpad when the server
    runs with tracing enabled — ``None`` otherwise, so the disabled
    path never allocates trace state.
    """

    spec: object
    client: str
    future: asyncio.Future
    t_submit: float
    shard: str = field(default="default")
    trace: object = field(default=None)


@dataclass
class SlabRequest:
    """One admitted burst of requests sharing a single future.

    The bulk-submit path (:meth:`GemmServer.submit_many`) admits a
    whole routed burst per shard as one queue entry: ``specs`` are the
    slots, ``future`` resolves exactly once with the slot-aligned list
    of :class:`~repro.engine.service.TimingRecord` results (or the
    batch's exception), and the submitter scatters them back to the
    caller's original order.  One future and one queue put per
    micro-batch instead of one per request — the event-loop bookkeeping
    that dominated large-burst submission drops out of the hot path.

    ``traces`` is the slot-aligned list of per-request
    :class:`~repro.obs.tracing.RequestTrace` scratchpads when tracing
    is on, ``None`` otherwise (the disabled path allocates no trace
    state, same contract as :class:`ServeRequest`).
    """

    specs: list
    client: str
    future: asyncio.Future
    t_submit: float
    shard: str = field(default="default")
    traces: list = field(default=None)

    @property
    def count(self) -> int:
        """How many request slots this entry occupies in a batch."""
        return len(self.specs)


@dataclass
class ReloadCommand:
    """Control-plane message: hot-swap a shard's model bundle.

    Travels the same FIFO shard queue as requests, so ordering gives
    zero-downtime semantics for free: every request admitted before the
    reload resolves on the old bundle, every request behind it on the
    new one, and the batch in flight when the command surfaces is never
    split across bundles.  ``future`` resolves with the shard's
    :meth:`~repro.engine.service.GemmService.reload` summary (or its
    exception, leaving the old bundle serving).
    """

    bundle: object
    future: asyncio.Future
    kwargs: dict = field(default_factory=dict)
