"""`GemmServer`: the asyncio front door of the serving subsystem.

Many concurrent clients ``await server.submit(spec)``; the server admits
(or rejects) each request, routes it to a shard — one
:class:`~repro.engine.service.GemmService` per machine profile, routine
family or replica — and a per-shard
:class:`~repro.serve.scheduler.MicroBatcher` forms dynamic batches that
are fulfilled with one vectorised engine pass each.

Admission control is two-tiered:

* a bounded per-shard queue (``max_queue``) applies **backpressure** —
  ``submit`` awaits until a slot frees;
* a global hard limit (``max_pending`` admitted-but-unfinished requests)
  **rejects** with :class:`~repro.serve.request.ServerOverloaded`, and a
  per-client fair-share cap (``fair_share`` × ``max_pending``) stops a
  single greedy tenant from occupying the whole admission budget.

Thread choices are bitwise identical to synchronous
:meth:`GemmService.run <repro.engine.service.GemmService.run>` calls on
the same service, whatever batches the scheduler happens to form.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from typing import Optional

from repro.core.routines import routine_of
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve.cost import CostModel, chunk_by_cost
from repro.obs.monitors import MonitorSet
from repro.obs.tracing import RequestTrace, SpanCollector, new_trace_id
from repro.serve.request import (ReloadCommand, ServeRequest, ServerClosed,
                                 ServerOverloaded, SlabRequest)
from repro.serve.router import ShardRouter, default_router
from repro.serve.scheduler import SHUTDOWN, BatchPolicy, MicroBatcher
from repro.serve.telemetry import ServeTelemetry


class GemmServer:
    """Async request server over one or more ``GemmService`` shards.

    Parameters
    ----------
    shards:
        A single :class:`~repro.engine.service.GemmService` or a dict
        mapping shard names to services (multi-tenant mode).  The server
        does not own the services; closing it leaves them open.
    router:
        A :class:`~repro.serve.router.ShardRouter`; defaults to direct
        routing for one shard and deterministic shape hashing for many.
    max_batch / max_wait_ms:
        The :class:`~repro.serve.scheduler.BatchPolicy` thresholds.
    max_batch_cost:
        Optional predicted-FLOPs budget per micro-batch (cost-aware
        batch formation; see :class:`~repro.serve.cost.CostModel`).
        Batches close when *either* the slot count or the predicted
        cost budget trips; slab chopping in :meth:`submit_many` honours
        the same budget.  Thread selections stay bitwise identical to
        count-only serving — only batch boundaries move.
    cost_model:
        The :class:`~repro.serve.cost.CostModel` pricing requests
        (default: raw per-spec FLOPs).  Also consulted by
        :meth:`cost_of` regardless of whether a budget is set.
    max_queue:
        Per-shard queue capacity; a full queue blocks ``submit`` until a
        batch drains (backpressure, never loss).
    max_pending:
        Hard global cap on admitted-but-unfinished requests; beyond it
        ``submit`` raises :class:`ServerOverloaded` immediately.
        Defaults to ``2 * max_queue * n_shards``.
    fair_share:
        Fraction of ``max_pending`` any single client may hold at
        once, rejected with reason ``"fair_share"`` beyond it.  The
        cap is unconditional — the remaining budget is held in
        *reserve* so a tenant arriving mid-flood still finds admission
        slots, which means even a sole client is bounded by it.  Set
        ``None`` (or ``1.0``) for single-tenant deployments.
    tracing:
        Enable per-request span tracing: every served request's journey
        (admission → queue wait → batch formation → predict-tier
        resolution → execution) is recorded into ``collector`` (a
        bounded :class:`~repro.obs.tracing.SpanCollector`).  Off by
        default; when off, no trace state is allocated anywhere on the
        hot path.  Thread choices are bitwise identical either way and
        tracing adds zero model passes.
    trace_capacity:
        Ring-buffer bound on retained traces when ``tracing`` is on.
    monitors:
        A :class:`~repro.obs.monitors.MonitorSet` (or list of
        :class:`~repro.obs.monitors.DriftMonitor`) evaluated against
        this server after every executed batch.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` the server's
        telemetry publishes into (default: the process-wide one).
    """

    def __init__(self, shards, router: Optional[ShardRouter] = None, *,
                 max_batch: int = 16, max_wait_ms: float = 2.0,
                 max_batch_cost: Optional[float] = None, cost_model=None,
                 max_queue: int = 64, max_pending: Optional[int] = None,
                 fair_share: Optional[float] = 0.5, tracing: bool = False,
                 trace_capacity: int = 4096, monitors=None,
                 registry: Optional[MetricsRegistry] = None):
        if hasattr(shards, "run_batch"):  # a bare GemmService
            shards = {"default": shards}
        if not shards:
            raise ValueError("server needs at least one shard")
        self.shards = dict(shards)
        self.router = router if router is not None \
            else default_router(self.shards)
        self.cost_model = cost_model if cost_model is not None \
            else CostModel()
        self.policy = BatchPolicy(max_batch=max_batch, max_wait_ms=max_wait_ms,
                                  max_batch_cost=max_batch_cost)
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.max_pending = (int(max_pending) if max_pending is not None
                            else 2 * self.max_queue * len(self.shards))
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if fair_share is not None and not 0.0 < fair_share <= 1.0:
            raise ValueError("fair_share must be in (0, 1] or None")
        self.fair_share = fair_share
        self.registry = registry if registry is not None \
            else default_registry()
        self.telemetry = ServeTelemetry(registry=self.registry)
        self.collector = SpanCollector(trace_capacity) if tracing else None
        if monitors is None or isinstance(monitors, MonitorSet):
            self.monitors = monitors
        else:
            self.monitors = MonitorSet(monitors, registry=self.registry)
        self._queues: dict = {}
        self._tasks: list = []
        self._pending = 0
        self._client_pending: dict = {}
        self._started = False
        self._closing = False

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "GemmServer":
        """Create the shard queues and batcher tasks on the running loop."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        after_batch = self._after_batch if self.monitors is not None \
            and len(self.monitors) else None
        for name, service in self.shards.items():
            queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue)
            batcher = MicroBatcher(service, self.policy, self.telemetry,
                                   release=self._release, shard=name,
                                   collector=self.collector,
                                   after_batch=after_batch,
                                   cost_model=self.cost_model)
            self._queues[name] = queue
            self._tasks.append(asyncio.ensure_future(batcher.run(queue)))
        return self

    async def close(self) -> None:
        """Stop admission, drain every queue, join the batcher tasks.

        Requests admitted before ``close`` resolve normally: the
        shutdown sentinel is FIFO-ordered behind them.
        """
        if self._closing:
            return
        self._closing = True
        if not self._started:
            return
        for queue in self._queues.values():
            await queue.put(SHUTDOWN)
        await asyncio.gather(*self._tasks)

    async def __aenter__(self) -> "GemmServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- admission -------------------------------------------------------
    @property
    def pending(self) -> int:
        """Admitted requests not yet resolved (queued + in batch)."""
        return self._pending

    def _fair_share_cap(self) -> int:
        return max(1, int(self.max_pending * self.fair_share))

    def _admit(self, client: str, routine: str) -> None:
        if self._pending >= self.max_pending:
            self.telemetry.record_rejection(client, "overload",
                                            routine=routine)
            raise ServerOverloaded(
                f"{self._pending} requests pending (limit {self.max_pending})",
                client=client, reason="overload")
        if (self.fair_share is not None
                and self._client_pending.get(client, 0) >= self._fair_share_cap()):
            self.telemetry.record_rejection(client, "fair_share",
                                            routine=routine)
            raise ServerOverloaded(
                f"client {client!r} holds {self._client_pending[client]} of "
                f"{self.max_pending} admission slots (fair-share cap "
                f"{self._fair_share_cap()})", client=client,
                reason="fair_share")
        self._pending += 1
        self._client_pending[client] = self._client_pending.get(client, 0) + 1

    def _admit_many(self, client: str, routines: list) -> None:
        """All-or-nothing admission of a burst of ``len(routines)`` slots.

        A burst that does not fit — the hard limit or the client's
        fair share — is rejected whole: partially admitting a slab
        would hand the caller a result list with holes.  Rejection
        telemetry records every slot, per routine.
        """
        n = len(routines)

        def _reject(reason: str, message: str):
            for routine, cnt in Counter(routines).items():
                self.telemetry.record_rejection(client, reason,
                                                routine=routine, n=cnt)
            raise ServerOverloaded(message, client=client, reason=reason)

        if self._pending + n > self.max_pending:
            _reject("overload",
                    f"{self._pending} requests pending + burst of {n} "
                    f"exceeds limit {self.max_pending}")
        if (self.fair_share is not None
                and self._client_pending.get(client, 0) + n
                > self._fair_share_cap()):
            _reject("fair_share",
                    f"client {client!r} holds "
                    f"{self._client_pending.get(client, 0)} of "
                    f"{self.max_pending} admission slots; a burst of {n} "
                    f"exceeds the fair-share cap {self._fair_share_cap()}")
        self._pending += n
        self._client_pending[client] = self._client_pending.get(client, 0) + n

    def _release(self, request) -> None:
        # A SlabRequest releases all its slots at once; plain requests
        # count one.
        n = getattr(request, "count", 1)
        self._pending -= n
        remaining = self._client_pending[request.client] - n
        if remaining > 0:
            self._client_pending[request.client] = remaining
        else:
            del self._client_pending[request.client]  # no unbounded growth

    def _after_batch(self) -> None:
        """Per-executed-batch hook: evaluate the drift monitors."""
        self.monitors.evaluate(self)

    # -- cost ------------------------------------------------------------
    def cost_of(self, specs) -> list:
        """Per-spec predicted costs (scaled FLOPs), one float per spec.

        The same pricing batch formation and slab chopping use when a
        ``max_batch_cost`` budget is set; exposed so operators and
        routers can ask "what would this burst weigh?" without
        submitting it.
        """
        return self.cost_model.cost_of(list(specs))

    # -- serving ---------------------------------------------------------
    async def submit(self, spec, client: str = "default",
                     shard: Optional[str] = None,
                     trace_id: Optional[str] = None):
        """Admit, route, enqueue and await one request.

        Returns the :class:`~repro.engine.service.GemmCallRecord` the
        shard produced.  ``shard`` overrides the router (explicit
        tenant targeting); backpressure is an ``await``, overload an
        exception.  ``trace_id`` names the request's span chain when
        tracing is enabled (one is generated otherwise) and is ignored
        on an untraced server.
        """
        if not self._started:
            raise ServerClosed("server not started (use 'async with' or start())")
        if self._closing:
            raise ServerClosed("server is shutting down")
        shard_name = shard if shard is not None \
            else self.router.route(spec, client)
        if shard_name not in self._queues:
            raise KeyError(f"unknown shard {shard_name!r} "
                           f"(have {sorted(self._queues)})")
        routine = routine_of(spec)
        self._admit(client, routine)
        loop = asyncio.get_running_loop()
        queue = self._queues[shard_name]
        depth = queue.qsize()
        t_submit = loop.time()
        trace = None
        if self.collector is not None:
            trace = RequestTrace(
                trace_id if trace_id is not None else new_trace_id(),
                client, routine, shard_name, depth, t_submit)
        request = ServeRequest(spec=spec, client=client,
                               future=loop.create_future(),
                               t_submit=t_submit, shard=shard_name,
                               trace=trace)
        self.telemetry.record_admission(client, queue_depth=depth,
                                        routine=routine)
        try:
            await queue.put(request)  # backpressure: await-until-slot
        except asyncio.CancelledError:
            self._release(request)
            raise
        return await request.future

    async def submit_many(self, specs, client: str = "default") -> list:
        """Submit a burst as slotted slabs; records come back in input order.

        The whole burst is routed in one ``route_batch`` call, admitted
        all-or-nothing, and enqueued as
        :class:`~repro.serve.request.SlabRequest` entries — one queue
        put and **one future per micro-batch** (each shard's slots are
        chopped into ``max_batch``-sized slabs), not one per request.
        The batcher resolves each slab future once with the
        slot-aligned record list and the results scatter back to the
        caller's original order, so the returned list is exactly what
        per-request :meth:`submit` calls would have produced — the
        per-request event-loop bookkeeping (future churn, queue puts,
        coroutine scheduling) just drops from O(requests) to
        O(micro-batches).  The streaming path keeps :meth:`submit`.
        """
        if not self._started:
            raise ServerClosed("server not started (use 'async with' or start())")
        if self._closing:
            raise ServerClosed("server is shutting down")
        specs = list(specs)
        if not specs:
            return []
        route_batch = getattr(self.router, "route_batch", None)
        if route_batch is not None:
            shard_names = list(route_batch(specs, client))
        else:
            shard_names = [self.router.route(spec, client) for spec in specs]
        by_shard: dict = {}  # shard name -> input slot indices, in order
        for slot, name in enumerate(shard_names):
            if name not in self._queues:
                raise KeyError(f"unknown shard {name!r} "
                               f"(have {sorted(self._queues)})")
            by_shard.setdefault(name, []).append(slot)
        routines = [routine_of(spec) for spec in specs]
        self._admit_many(client, routines)
        loop = asyncio.get_running_loop()
        max_batch = self.policy.max_batch
        budget = self.policy.max_batch_cost
        costs = self.cost_model.cost_of(specs) if budget is not None else None
        slabs = []  # (slab, its input slots)
        for name, slots in by_shard.items():
            queue = self._queues[name]
            if budget is not None:
                chunks = chunk_by_cost(slots, [costs[i] for i in slots],
                                       max_batch, budget)
            else:
                chunks = (slots[start:start + max_batch]
                          for start in range(0, len(slots), max_batch))
            for chunk in chunks:
                depth = queue.qsize()
                t_submit = loop.time()
                traces = None
                if self.collector is not None:
                    traces = [RequestTrace(new_trace_id(), client,
                                           routines[i], name, depth, t_submit)
                              for i in chunk]
                slab = SlabRequest(specs=[specs[i] for i in chunk],
                                   client=client,
                                   future=loop.create_future(),
                                   t_submit=t_submit, shard=name,
                                   traces=traces)
                for routine, cnt in Counter(routines[i]
                                            for i in chunk).items():
                    self.telemetry.record_admission(client, queue_depth=depth,
                                                    routine=routine, n=cnt)
                slabs.append((slab, chunk))
        enqueued = 0
        try:
            for slab, _ in slabs:
                await self._queues[slab.shard].put(slab)  # backpressure
                enqueued += 1
        except asyncio.CancelledError:
            for slab, _ in slabs[enqueued:]:
                self._release(slab)  # enqueued slabs release via the batcher
            raise
        results = [None] * len(specs)
        outcomes = await asyncio.gather(*(slab.future for slab, _ in slabs),
                                        return_exceptions=True)
        error = None
        for (slab, slots), outcome in zip(slabs, outcomes):
            if isinstance(outcome, BaseException):
                error = error if error is not None else outcome
                continue
            for slot, record in zip(slots, outcome):
                results[slot] = record
        if error is not None:
            raise error
        return results

    # -- control plane ---------------------------------------------------
    async def reload(self, bundle, shard: Optional[str] = None,
                     **kwargs) -> dict:
        """Zero-downtime hot-swap of a new model bundle.

        Enqueues a :class:`~repro.serve.request.ReloadCommand` behind
        every already-admitted request on the target shard(s) (all
        shards by default), so in-flight and already-queued requests
        finish on the bundle they were admitted under and the first
        batch formed after the swap uses the new one — no request is
        dropped, rejected or split across bundles.  Blocks until every
        target shard has applied the swap; returns the per-shard
        :meth:`~repro.engine.service.GemmService.reload` summaries.
        A shard whose reload raises keeps serving its old bundle and
        the exception propagates.

        ``kwargs`` forward to the shard's reload: in particular
        ``routine=`` swaps a single routine's predictor inside a
        multi-routine shard (the default is the bundle's own
        ``config.routine`` tag), leaving every other routine serving
        untouched.
        """
        if not self._started:
            raise ServerClosed("server not started (use 'async with' or start())")
        if self._closing:
            raise ServerClosed("server is shutting down")
        targets = list(self._queues) if shard is None else [shard]
        for name in targets:
            if name not in self._queues:
                raise KeyError(f"unknown shard {name!r} "
                               f"(have {sorted(self._queues)})")
        loop = asyncio.get_running_loop()
        commands = {name: ReloadCommand(bundle=bundle,
                                        future=loop.create_future(),
                                        kwargs=kwargs)
                    for name in targets}
        for name, command in commands.items():
            await self._queues[name].put(command)
        return {name: await command.future
                for name, command in commands.items()}

    # -- stats -----------------------------------------------------------
    def stats(self) -> dict:
        """Telemetry plus per-shard engine statistics.

        ``model_passes``/``evaluations`` aggregate the shards' predictor
        counters, which is what the serve benchmark compares against
        per-request serving.
        """
        shard_stats = {name: service.stats()
                       for name, service in self.shards.items()}
        out = {
            **self.telemetry.stats(),
            "pending": self._pending,
            "max_pending": self.max_pending,
            "max_queue": self.max_queue,
            "max_batch": self.policy.max_batch,
            "max_wait_ms": self.policy.max_wait_ms,
            "evaluations": sum(s["evaluations"] for s in shard_stats.values()),
            "model_passes": sum(s["model_passes"] for s in shard_stats.values()),
            "shards": shard_stats,
        }
        # Observability keys appear only when the features are on, so
        # the default stats dict stays exactly its historic shape.
        if self.policy.max_batch_cost is not None:
            out["max_batch_cost"] = self.policy.max_batch_cost
        if self.collector is not None:
            out["trace"] = self.collector.stats()
        if self.monitors is not None and len(self.monitors):
            out["monitors"] = self.monitors.stats()
        return out
