"""Pluggable shard routing: which ``GemmService`` serves a request.

A multi-tenant :class:`~repro.serve.server.GemmServer` fronts several
shards — one per machine profile (e.g. ``gadi`` and ``setonix``
simulators), per routine family, or per replica — and a router maps
each ``(spec, client)`` pair to a shard name.  :class:`HashRouter`,
:class:`SpecTypeRouter`, :class:`RoutineRouter` and
:class:`TenantRouter` are stateless deterministic functions of their
inputs, so replaying a trace through them reproduces the exact same
shard assignment (and therefore the same per-shard cache and batch
behaviour).  :class:`RoundRobinRouter` is the exception: it spreads by
*admission order*, which under concurrent clients depends on task
interleaving — use it for stateless replica load-spreading, not when
replay reproducibility matters.

For mixed-routine traffic, :class:`RoutineRouter` is the deployment
default: one shard per routine name, each holding that routine's
trained predictor, so a single server answers GEMM, GEMV, TRSM and
SYRK requests with the right model.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, runtime_checkable

from repro.core.routines import routine_of
from repro.engine.cache import routine_key


@runtime_checkable
class ShardRouter(Protocol):
    """Structural protocol: map a request to a shard name.

    Routers may additionally expose a vectorised
    ``route_batch(specs, client)`` returning one shard name per spec;
    the server uses it to assign a whole burst in one call instead of
    N protocol dispatches.  Every built-in router implements it (a
    plain ``route`` loop stays the semantic reference: ``route_batch``
    must equal ``[route(s, client) for s in specs]`` element-wise).
    """

    def route(self, spec, client: str = "default") -> str:
        ...  # pragma: no cover - protocol stub


def _require_shards(shards) -> list:
    names = list(shards)
    if not names:
        raise ValueError("router needs at least one shard name")
    return names


class SingleShardRouter:
    """Everything goes to the one shard (the single-tenant default)."""

    def __init__(self, shard: str = "default"):
        self.shard = str(shard)

    def route(self, spec, client: str = "default") -> str:
        return self.shard

    def route_batch(self, specs, client: str = "default") -> list:
        return [self.shard] * len(specs)


class HashRouter:
    """Deterministic shape-hash spreading across identical replicas.

    The same shape always lands on the same shard (its prediction stays
    cached there), and the assignment is stable across processes because
    it hashes the canonical shape key with blake2b rather than Python's
    salted ``hash``.
    """

    def __init__(self, shards):
        self.shards = _require_shards(shards)

    def route(self, spec, client: str = "default") -> str:
        digest = hashlib.blake2b(repr(routine_key(spec)).encode(),
                                 digest_size=8).digest()
        return self.shards[int.from_bytes(digest, "little") % len(self.shards)]

    def route_batch(self, specs, client: str = "default") -> list:
        # One digest per *distinct* key: repeated shapes in a burst
        # (the common case the cache exists for) hash once.
        memo: dict = {}
        out = []
        for spec in specs:
            key = routine_key(spec)
            shard = memo.get(key)
            if shard is None:
                shard = memo[key] = self.route(spec, client)
            out.append(shard)
        return out


class RoundRobinRouter:
    """Cycle through shards in admission order (replica load-spreading)."""

    def __init__(self, shards):
        self.shards = _require_shards(shards)
        self._next = 0

    def route(self, spec, client: str = "default") -> str:
        shard = self.shards[self._next]
        self._next = (self._next + 1) % len(self.shards)
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        n = len(self.shards)
        out = [self.shards[(self._next + i) % n] for i in range(len(specs))]
        self._next = (self._next + len(specs)) % n
        return out


class SpecTypeRouter:
    """Route by spec type (one shard per routine family).

    Lookup walks the spec's MRO, mirroring
    :class:`~repro.engine.backend.BackendDispatcher`, so registering a
    base class covers its subclasses.
    """

    def __init__(self, routes: dict, default: str = None):
        for klass in routes:
            if not isinstance(klass, type):
                raise TypeError("routes keys must be classes")
        self.routes = dict(routes)
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        for klass in type(spec).__mro__:
            if klass in self.routes:
                return self.routes[klass]
        if self.default is not None:
            return self.default
        raise TypeError(
            f"no shard registered for spec type {type(spec).__name__}")

    def route_batch(self, specs, client: str = "default") -> list:
        memo: dict = {}  # one MRO walk per distinct spec type
        out = []
        for spec in specs:
            klass = type(spec)
            shard = memo.get(klass)
            if shard is None:
                shard = memo[klass] = self.route(spec, client)
            out.append(shard)
        return out


class RoutineRouter:
    """Route by the spec's *routine name* (one shard per routine family).

    The name-keyed twin of :class:`SpecTypeRouter`: shards are looked
    up by the spec's ``routine`` attribute (bare dims triples count as
    "gemm"), so registry-driven deployments can wire mixed-routine
    traffic without importing any spec class.  With ``routes`` omitted,
    each routine maps to the shard of its own name — the natural layout
    when shards are built from a model registry's ``(routine, machine)``
    cells.
    """

    def __init__(self, routes: dict = None, default: str = None):
        self.routes = dict(routes) if routes is not None else None
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        routine = routine_of(spec)
        if self.routes is None:
            return routine
        shard = self.routes.get(routine, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for routine {routine!r} "
                           f"(have {sorted(self.routes)})")
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        memo: dict = {}  # one table lookup per distinct routine name
        out = []
        for spec in specs:
            routine = routine_of(spec)
            shard = memo.get(routine)
            if shard is None:
                if self.routes is None:
                    shard = routine
                else:
                    shard = self.routes.get(routine, self.default)
                    if shard is None:
                        raise KeyError(
                            f"no shard registered for routine {routine!r} "
                            f"(have {sorted(self.routes)})")
                memo[routine] = shard
            out.append(shard)
        return out


class TenantRouter:
    """Route by client identity (one shard per tenant or tenant group)."""

    def __init__(self, routes: dict, default: str = None):
        self.routes = dict(routes)
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        shard = self.routes.get(client, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for client {client!r}")
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        shard = self.routes.get(client, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for client {client!r}")
        return [shard] * len(specs)


def default_router(shard_names) -> ShardRouter:
    """The server's routing default: single shard direct, else hashed."""
    names = _require_shards(shard_names)
    if len(names) == 1:
        return SingleShardRouter(names[0])
    return HashRouter(names)
