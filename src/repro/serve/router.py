"""Pluggable shard routing: which ``GemmService`` serves a request.

A multi-tenant :class:`~repro.serve.server.GemmServer` fronts several
shards — one per machine profile (e.g. ``gadi`` and ``setonix``
simulators), per routine family, or per replica — and a router maps
each ``(spec, client)`` pair to a shard name.  :class:`HashRouter`,
:class:`SpecTypeRouter`, :class:`RoutineRouter` and
:class:`TenantRouter` are stateless deterministic functions of their
inputs, so replaying a trace through them reproduces the exact same
shard assignment (and therefore the same per-shard cache and batch
behaviour).  :class:`RoundRobinRouter` is the exception: it spreads by
*admission order*, which under concurrent clients depends on task
interleaving — use it for stateless replica load-spreading, not when
replay reproducibility matters.

For mixed-routine traffic, :class:`RoutineRouter` is the deployment
default: one shard per routine name, each holding that routine's
trained predictor, so a single server answers GEMM, GEMV, TRSM and
SYRK requests with the right model.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Protocol, runtime_checkable

from repro.core.routines import routine_of
from repro.engine.cache import routine_key
from repro.serve.cost import CostModel


@runtime_checkable
class ShardRouter(Protocol):
    """Structural protocol: map a request to a shard name.

    Routers may additionally expose a vectorised
    ``route_batch(specs, client)`` returning one shard name per spec;
    the server uses it to assign a whole burst in one call instead of
    N protocol dispatches.  Every built-in router implements it (a
    plain ``route`` loop stays the semantic reference: ``route_batch``
    must equal ``[route(s, client) for s in specs]`` element-wise).
    """

    def route(self, spec, client: str = "default") -> str:
        ...  # pragma: no cover - protocol stub


def _require_shards(shards) -> list:
    names = list(shards)
    if not names:
        raise ValueError("router needs at least one shard name")
    return names


class SingleShardRouter:
    """Everything goes to the one shard (the single-tenant default)."""

    def __init__(self, shard: str = "default"):
        self.shard = str(shard)

    def route(self, spec, client: str = "default") -> str:
        return self.shard

    def route_batch(self, specs, client: str = "default") -> list:
        return [self.shard] * len(specs)


class HashRouter:
    """Deterministic shape-hash spreading across identical replicas.

    The same shape always lands on the same shard (its prediction stays
    cached there), and the assignment is stable across processes because
    it hashes the canonical shape key with blake2b rather than Python's
    salted ``hash``.
    """

    def __init__(self, shards):
        self.shards = _require_shards(shards)

    def route(self, spec, client: str = "default") -> str:
        digest = hashlib.blake2b(repr(routine_key(spec)).encode(),
                                 digest_size=8).digest()
        return self.shards[int.from_bytes(digest, "little") % len(self.shards)]

    def route_batch(self, specs, client: str = "default") -> list:
        # One digest per *distinct* key: repeated shapes in a burst
        # (the common case the cache exists for) hash once.
        memo: dict = {}
        out = []
        for spec in specs:
            key = routine_key(spec)
            shard = memo.get(key)
            if shard is None:
                shard = memo[key] = self.route(spec, client)
            out.append(shard)
        return out


class ConsistentHashRouter:
    """Hash-ring spreading that survives shard membership changes.

    :class:`HashRouter` maps keys with ``hash % n``, so losing one
    shard remaps nearly every key — a dead fleet worker would flush
    every surviving worker's prediction cache.  The ring keeps each
    shard at ``replicas`` virtual points; a key routes to the first
    point clockwise of its own hash, so removing a shard remaps *only*
    the keys that lived on it and adding one steals an even slice from
    everyone.  Assignments hash the canonical shape key with blake2b,
    so they are stable across processes and runs.
    """

    def __init__(self, shards, replicas: int = 64):
        if int(replicas) < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: list = []   # sorted ring positions
        self._owners: list = []   # shard name at each position
        self.shards: list = []
        for shard in _require_shards(shards):
            self.add(shard)

    @staticmethod
    def _hash(data: str) -> int:
        digest = hashlib.blake2b(data.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little")

    def add(self, shard: str) -> None:
        if shard in self.shards:
            return
        self.shards.append(shard)
        for i in range(self.replicas):
            point = self._hash(f"{shard}#{i}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, shard)

    def remove(self, shard: str) -> None:
        if shard not in self.shards:
            return
        if len(self.shards) == 1:
            raise ValueError("cannot remove the last shard from the ring")
        self.shards.remove(shard)
        keep = [i for i, owner in enumerate(self._owners) if owner != shard]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def route(self, spec, client: str = "default") -> str:
        point = self._hash(repr(routine_key(spec)))
        at = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[at]

    def route_batch(self, specs, client: str = "default") -> list:
        memo: dict = {}  # one ring lookup per distinct key
        out = []
        for spec in specs:
            key = routine_key(spec)
            shard = memo.get(key)
            if shard is None:
                shard = memo[key] = self.route(spec, client)
            out.append(shard)
        return out


class LeastLoadedRouter:
    """Route each request to the shard holding the fewest in-flight slots.

    ``loads`` supplies the live occupancy — either a dict the owner
    mutates in place or a zero-argument callable returning one — and
    the router picks the least-loaded shard, breaking ties by shard
    registration order so identical load states route identically.
    ``route_batch`` additionally counts its *own* assignments while it
    spreads a burst: each routed slot will occupy its shard the moment
    the burst is admitted, so simulating that admission is what makes
    the batch land exactly where sequential route-then-admit calls
    would have put it.  Like :class:`RoundRobinRouter`, assignments
    depend on live state, not only on the spec — use it for replica
    load-spreading, not when replay reproducibility matters.
    """

    def __init__(self, shards, loads=None):
        self.shards = _require_shards(shards)
        self._loads = loads if loads is not None else {}

    def current_loads(self) -> dict:
        return dict(self._loads() if callable(self._loads) else self._loads)

    def add(self, shard: str) -> None:
        if shard not in self.shards:
            self.shards.append(shard)

    def remove(self, shard: str) -> None:
        if shard in self.shards:
            if len(self.shards) == 1:
                raise ValueError("cannot remove the last shard")
            self.shards.remove(shard)

    def route(self, spec, client: str = "default") -> str:
        loads = self.current_loads()
        return min(self.shards, key=lambda s: loads.get(s, 0))

    def route_batch(self, specs, client: str = "default") -> list:
        loads = self.current_loads()
        out = []
        for _ in specs:
            shard = min(self.shards, key=lambda s: loads.get(s, 0))
            loads[shard] = loads.get(shard, 0) + 1
            out.append(shard)
        return out


class CostAwareLeastLoadedRouter(LeastLoadedRouter):
    """Least-loaded routing weighted by outstanding *predicted cost*.

    :class:`LeastLoadedRouter` counts in-flight request slots, so a
    worker holding two huge GEMMs looks less loaded than one holding
    three tiny GEMVs.  This router reads ``loads`` as outstanding
    predicted FLOPs per shard (the fleet front supplies its live
    per-worker cost gauge) and ``route_batch`` simulates its own
    assignments by each slot's *cost* rather than by 1 — a burst
    spreads so every shard ends up with a near-equal predicted-FLOPs
    share, whatever the request mix.  Tie-breaking stays registration
    order, so identical load states still route identically.
    """

    def __init__(self, shards, loads=None, cost_model=None):
        super().__init__(shards, loads=loads)
        self.cost_model = cost_model if cost_model is not None \
            else CostModel()

    def route_batch(self, specs, client: str = "default") -> list:
        loads = self.current_loads()
        costs = self.cost_model.cost_of(specs)
        out = []
        for cost in costs:
            shard = min(self.shards, key=lambda s: loads.get(s, 0))
            loads[shard] = loads.get(shard, 0) + cost
            out.append(shard)
        return out


class CanaryRouter:
    """Divert a deterministic key fraction of traffic to one shard.

    Wraps a base router during a canary rollout: every spec whose
    hashed shape key falls into the lowest ``fraction`` of the hash
    space routes to ``canary``, everything else follows the base
    router.  The split is a pure function of the shape key (blake2b,
    not Python's salted ``hash``), so the same request always lands on
    the same side — canary-vs-fleet comparisons see disjoint, stable
    traffic sets rather than a random sample.
    """

    def __init__(self, base, canary: str, fraction: float = 0.25):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.base = base
        self.canary = str(canary)
        self.fraction = float(fraction)

    def _is_canary(self, spec) -> bool:
        digest = hashlib.blake2b(
            b"canary:" + repr(routine_key(spec)).encode(),
            digest_size=8).digest()
        bucket = int.from_bytes(digest, "little") / float(2 ** 64)
        return bucket < self.fraction

    def route(self, spec, client: str = "default") -> str:
        if self._is_canary(spec):
            return self.canary
        return self.base.route(spec, client)

    def route_batch(self, specs, client: str = "default") -> list:
        # The base router must see only the slots it will actually own:
        # a stateful base (least-loaded, round-robin) would otherwise
        # account for slots the canary took.
        flags = [self._is_canary(spec) for spec in specs]
        rest = [i for i, taken in enumerate(flags) if not taken]
        out: list = [self.canary] * len(specs)
        if rest:
            base_route = getattr(self.base, "route_batch", None)
            if base_route is not None:
                names = base_route([specs[i] for i in rest], client)
            else:
                names = [self.base.route(specs[i], client) for i in rest]
            for i, name in zip(rest, names):
                out[i] = name
        return out


class RoundRobinRouter:
    """Cycle through shards in admission order (replica load-spreading)."""

    def __init__(self, shards):
        self.shards = _require_shards(shards)
        self._next = 0

    def route(self, spec, client: str = "default") -> str:
        shard = self.shards[self._next]
        self._next = (self._next + 1) % len(self.shards)
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        n = len(self.shards)
        out = [self.shards[(self._next + i) % n] for i in range(len(specs))]
        self._next = (self._next + len(specs)) % n
        return out


class SpecTypeRouter:
    """Route by spec type (one shard per routine family).

    Lookup walks the spec's MRO, mirroring
    :class:`~repro.engine.backend.BackendDispatcher`, so registering a
    base class covers its subclasses.
    """

    def __init__(self, routes: dict, default: str = None):
        for klass in routes:
            if not isinstance(klass, type):
                raise TypeError("routes keys must be classes")
        self.routes = dict(routes)
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        for klass in type(spec).__mro__:
            if klass in self.routes:
                return self.routes[klass]
        if self.default is not None:
            return self.default
        raise TypeError(
            f"no shard registered for spec type {type(spec).__name__}")

    def route_batch(self, specs, client: str = "default") -> list:
        memo: dict = {}  # one MRO walk per distinct spec type
        out = []
        for spec in specs:
            klass = type(spec)
            shard = memo.get(klass)
            if shard is None:
                shard = memo[klass] = self.route(spec, client)
            out.append(shard)
        return out


class RoutineRouter:
    """Route by the spec's *routine name* (one shard per routine family).

    The name-keyed twin of :class:`SpecTypeRouter`: shards are looked
    up by the spec's ``routine`` attribute (bare dims triples count as
    "gemm"), so registry-driven deployments can wire mixed-routine
    traffic without importing any spec class.  With ``routes`` omitted,
    each routine maps to the shard of its own name — the natural layout
    when shards are built from a model registry's ``(routine, machine)``
    cells.
    """

    def __init__(self, routes: dict = None, default: str = None):
        self.routes = dict(routes) if routes is not None else None
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        routine = routine_of(spec)
        if self.routes is None:
            return routine
        shard = self.routes.get(routine, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for routine {routine!r} "
                           f"(have {sorted(self.routes)})")
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        memo: dict = {}  # one table lookup per distinct routine name
        out = []
        for spec in specs:
            routine = routine_of(spec)
            shard = memo.get(routine)
            if shard is None:
                if self.routes is None:
                    shard = routine
                else:
                    shard = self.routes.get(routine, self.default)
                    if shard is None:
                        raise KeyError(
                            f"no shard registered for routine {routine!r} "
                            f"(have {sorted(self.routes)})")
                memo[routine] = shard
            out.append(shard)
        return out


class TenantRouter:
    """Route by client identity (one shard per tenant or tenant group)."""

    def __init__(self, routes: dict, default: str = None):
        self.routes = dict(routes)
        self.default = default

    def route(self, spec, client: str = "default") -> str:
        shard = self.routes.get(client, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for client {client!r}")
        return shard

    def route_batch(self, specs, client: str = "default") -> list:
        shard = self.routes.get(client, self.default)
        if shard is None:
            raise KeyError(f"no shard registered for client {client!r}")
        return [shard] * len(specs)


def default_router(shard_names) -> ShardRouter:
    """The server's routing default: single shard direct, else hashed."""
    names = _require_shards(shard_names)
    if len(names) == 1:
        return SingleShardRouter(names[0])
    return HashRouter(names)
