"""repro.serve — async request serving over the execution engine.

PR 1 made the engine *able* to answer batches
(:meth:`~repro.engine.service.GemmService.run_batch`); this package
makes the system *form* those batches itself from an asynchronous
request stream:

    clients --await submit()--> GemmServer --route--> shard queues
                                   |                     |
                          admission control        MicroBatcher
                       (backpressure, hard        (max_batch OR
                        limit, fair share)         max_wait_ms window)
                                                         |
                                              GemmService.run_batch
                                              (one vectorised pass)

* :class:`GemmServer` — asyncio front door: admission control with
  backpressure, :class:`ServerOverloaded` rejection and per-client
  fair-share caps; multi-tenant shard routing; telemetry.
* :class:`~repro.serve.scheduler.MicroBatcher` /
  :class:`~repro.serve.scheduler.BatchPolicy` — dynamic micro-batching:
  a batch closes when it reaches ``max_batch`` or ``max_wait_ms`` after
  its first request.
* routers — :class:`~repro.serve.router.HashRouter` /
  :class:`~repro.serve.router.ConsistentHashRouter` (replicas, the
  latter stable under membership changes),
  :class:`~repro.serve.router.LeastLoadedRouter` (live in-flight
  counts), :class:`~repro.serve.router.CanaryRouter` (deterministic
  traffic-fraction split for rollouts),
  :class:`~repro.serve.router.RoutineRouter` /
  :class:`~repro.serve.router.SpecTypeRouter` (per routine family),
  :class:`~repro.serve.router.TenantRouter` (per client).
* :mod:`~repro.serve.trace` — Poisson load generation and the replay
  harness shared by the CLI, the serve benchmark and the examples.

Thread choices are bitwise identical to synchronous
``GemmService.run`` whatever batches the scheduler forms, because the
engine's batch prediction is exact.
"""

from repro.serve.cost import CostModel, chunk_by_cost
from repro.serve.request import (ReloadCommand, ServeRequest, ServerClosed,
                                 ServerOverloaded)
from repro.serve.router import (CanaryRouter, ConsistentHashRouter,
                                CostAwareLeastLoadedRouter, HashRouter,
                                LeastLoadedRouter, RoundRobinRouter,
                                RoutineRouter, ShardRouter,
                                SingleShardRouter, SpecTypeRouter,
                                TenantRouter, default_router)
from repro.serve.scheduler import BatchPolicy, MicroBatcher
from repro.serve.server import GemmServer
from repro.serve.telemetry import ServeTelemetry
from repro.serve.trace import (ReplayOutcome, TimedRequest, poisson_trace,
                               replay_trace, replay_trace_async)

__all__ = [
    "BatchPolicy",
    "CanaryRouter",
    "ConsistentHashRouter",
    "CostAwareLeastLoadedRouter",
    "CostModel",
    "GemmServer",
    "HashRouter",
    "LeastLoadedRouter",
    "MicroBatcher",
    "ReloadCommand",
    "ReplayOutcome",
    "RoundRobinRouter",
    "RoutineRouter",
    "ServeRequest",
    "ServeTelemetry",
    "ServerClosed",
    "ServerOverloaded",
    "ShardRouter",
    "SingleShardRouter",
    "SpecTypeRouter",
    "TenantRouter",
    "TimedRequest",
    "chunk_by_cost",
    "default_router",
    "poisson_trace",
    "replay_trace",
    "replay_trace_async",
]
