"""repro.train — the staged, parallel, resumable installation pipeline.

PR 1 gave the *runtime* path a batched engine and PR 2 an async server;
this package does the same for the *offline* path, the paper's Fig. 2
installation workflow::

    gather -> split -> preprocess -> tune:<candidate> x N -> select
       |        |          |               |                   |
       +--------+----------+---- content-addressed stage cache +
                                   (resume re-runs only what
                                    never finished)

* :class:`~repro.train.pipeline.TrainingPipeline` /
  :class:`~repro.train.stages.Stage` — the five workflow boxes as
  discrete cached stages; one tuning stage per candidate model.
* :mod:`~repro.train.tuning` — (configuration, fold) work items fanned
  across threads or processes with a schedule-independent reduction:
  the selected model is bitwise identical to the serial path at any
  worker count.
* :class:`~repro.train.registry.ModelRegistry` — versioned bundle
  store with SHA-256 checksums, selection metadata and an atomic
  ``latest`` pointer per (routine, machine); the serving layer
  hot-reloads from here without dropping in-flight requests.
* :class:`~repro.train.matrix.TrainingMatrix` — one pipeline run and
  one published bundle per (BLAS routine, machine preset) cell.

:class:`~repro.core.training.InstallationWorkflow` remains the public
facade over all of this — its API is unchanged.
"""

from repro.train.pipeline import TrainingPipeline
from repro.train.registry import ModelRecord, ModelRegistry, RegistryError
from repro.train.stages import Stage, StageCache, run_stages
from repro.train.tuning import ProcessPool, evaluate_params, make_pool
from repro.train.matrix import MatrixResult, RoutineWorkflow, TrainingMatrix

__all__ = [
    "MatrixResult",
    "ModelRecord",
    "ModelRegistry",
    "ProcessPool",
    "RegistryError",
    "RoutineWorkflow",
    "Stage",
    "StageCache",
    "TrainingMatrix",
    "TrainingPipeline",
    "evaluate_params",
    "make_pool",
    "run_stages",
]
