"""Versioned model registry with atomic ``latest`` pointers.

The registry replaces "a directory with two files" as the unit of model
deployment.  On-disk layout::

    <root>/
      registry.json                  # {"schema_version": 1}
      bundles/<routine>-<machine>-v<N>/
          adsala_config.json
          adsala_model.pkl
          MANIFEST.json              # schema, SHA-256 checksums, metadata
      refs/<routine>/<machine>.json  # {"latest": N, "versions": {...}}

Every publish writes a fresh immutable bundle directory (staged under a
temporary name, then atomically renamed), records the bundle's content
checksum and selection-report metadata in its manifest, and flips the
per-(routine, machine) ``latest`` ref with an atomic replace — a reader
(or a serving process hot-reloading between micro-batches) never sees a
half-written bundle.  Loads verify checksums and schema via
:func:`~repro.core.serialize.verify_bundle`, failing loudly on
corruption; plain pre-registry bundle directories remain loadable
through :func:`~repro.core.serialize.load_bundle` for backward
compatibility.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass

import numpy as np

from repro.core.routines import REGISTRY, routine_names
from repro.core.serialize import (PLAN_FILENAME, SCHEMA_VERSION,
                                  TABLE_FILENAME, BundleError,
                                  _combine_digests, _sha256_file,
                                  load_bundle, load_manifest, save_bundle)
from repro.obs.metrics import default_registry

#: Import-time snapshot of the central routine registry
#: (:mod:`repro.core.routines`) — used for static listings such as CLI
#: choices.  Validation consults the *live* ``REGISTRY`` so routines
#: registered later are publishable without re-imports.
ROUTINES = routine_names()


class RegistryError(RuntimeError):
    """Registry-level failures (unknown entry, version conflicts...)."""


@dataclass(frozen=True)
class ModelRecord:
    """One published model version."""

    routine: str
    machine: str
    version: int
    path: str
    checksum: str
    model_name: str
    latest: bool = False

    @property
    def ref(self) -> str:
        suffix = "" if self.version is None else f"@{self.version}"
        return f"{self.routine}/{self.machine}{suffix}"


class ModelRegistry:
    """Filesystem-backed registry of trained bundles.

    Parameters
    ----------
    root:
        Registry directory; created (with its ``registry.json``) on
        first publish.
    """

    def __init__(self, root):
        self.root = os.fspath(root)

    # -- paths -----------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.root, "registry.json")

    def _bundle_dir(self, routine: str, machine: str, version: int) -> str:
        return os.path.join(self.root, "bundles",
                            f"{routine}-{machine}-v{version}")

    def _ref_path(self, routine: str, machine: str) -> str:
        return os.path.join(self.root, "refs", routine, f"{machine}.json")

    def _init_root(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        meta = self._meta_path()
        if not os.path.exists(meta):
            with open(meta + ".tmp", "w") as fh:
                json.dump({"schema_version": SCHEMA_VERSION}, fh)
            os.replace(meta + ".tmp", meta)

    def _read_ref(self, routine: str, machine: str) -> dict:
        path = self._ref_path(routine, machine)
        if not os.path.exists(path):
            return {"latest": None, "versions": {}}
        with open(path) as fh:
            return json.load(fh)

    def _write_ref(self, routine: str, machine: str, ref: dict) -> None:
        path = self._ref_path(routine, machine)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path + ".tmp", "w") as fh:
            json.dump(ref, fh, indent=2, sort_keys=True)
        os.replace(path + ".tmp", path)  # atomic latest-pointer flip

    # -- publish ---------------------------------------------------------
    def publish(self, bundle, routine: str = "gemm", machine: str = None,
                extra: dict = None) -> ModelRecord:
        """Write ``bundle`` as the next version of (routine, machine).

        The bundle directory is staged under a temporary name and
        renamed into place before the ``latest`` ref moves, so
        concurrent readers only ever resolve complete bundles.
        Returns the new :class:`ModelRecord`.
        """
        if routine not in REGISTRY:
            raise RegistryError(f"unknown routine {routine!r}; "
                                f"registered: {sorted(REGISTRY.names())}")
        machine = machine or bundle.config.machine
        self._init_root()
        ref = self._read_ref(routine, machine)
        version = max((int(v) for v in ref["versions"]), default=0) + 1
        final_dir = self._bundle_dir(routine, machine, version)
        staging = final_dir + ".staging"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        manifest = save_bundle(bundle, staging, extra_manifest={
            "routine": routine, "machine": machine, "version": version,
            "selection": (bundle.report.as_table()
                          if bundle.report is not None else None),
            **(extra or {}),
        })
        os.makedirs(os.path.dirname(final_dir), exist_ok=True)
        os.replace(staging, final_dir)
        ref["versions"][str(version)] = {
            "checksum": manifest["checksum"],
            "model_name": bundle.config.model_name,
        }
        ref["latest"] = version
        self._write_ref(routine, machine, ref)
        # Registry mutations are audit events: the control-plane loops
        # (rollout, rollback, retrain) subscribe to exactly this stream.
        registry = default_registry()
        registry.event("registry_publish", routine=routine, machine=machine,
                       version=version, checksum=manifest["checksum"],
                       model_name=bundle.config.model_name)
        registry.counter("registry_publishes",
                         routine=routine, machine=machine).inc()
        return ModelRecord(routine=routine, machine=machine, version=version,
                           path=final_dir, checksum=manifest["checksum"],
                           model_name=bundle.config.model_name, latest=True)

    # -- resolve/load ----------------------------------------------------
    def resolve(self, routine: str, machine: str,
                version="latest") -> ModelRecord:
        """Look up one version (``"latest"``, an int, or a digit string)."""
        ref = self._read_ref(routine, machine)
        if not ref["versions"]:
            raise RegistryError(
                f"no models published for {routine}/{machine} "
                f"in registry {self.root}")
        if version in (None, "latest"):
            version = ref["latest"]
        version = int(version)
        entry = ref["versions"].get(str(version))
        if entry is None:
            raise RegistryError(
                f"{routine}/{machine} has no version {version} "
                f"(published: {sorted(int(v) for v in ref['versions'])})")
        return ModelRecord(routine=routine, machine=machine, version=version,
                           path=self._bundle_dir(routine, machine, version),
                           checksum=entry["checksum"],
                           model_name=entry.get("model_name", ""),
                           latest=version == ref["latest"])

    def load(self, routine: str, machine: str, version="latest"):
        """Checksum-verified bundle load; raises loudly on corruption."""
        record = self.resolve(routine, machine, version)
        bundle = load_bundle(record.path)  # verifies manifest + checksums
        # The artefact files were just hashed against the manifest, so
        # the bundle identity derives from those digests — no second
        # read of the files is needed to cross-check the registry index.
        manifest = load_manifest(record.path)
        if manifest is None:
            raise BundleError(
                f"registry bundle {record.ref} at {record.path} has no "
                f"manifest — the directory was tampered with after "
                f"publication; re-publish the model")
        actual = _combine_digests(manifest["files"])
        if actual != record.checksum:
            raise BundleError(
                f"registry ref for {record.ref} records checksum "
                f"{record.checksum[:12]}… but the bundle directory hashes "
                f"to {actual[:12]}… — the registry index and the bundle "
                f"disagree; re-publish the model")
        return bundle

    # -- compiled plans --------------------------------------------------
    def has_plan(self, record: ModelRecord) -> bool:
        """Whether a bundle directory carries a compiled-plan artefact."""
        return os.path.exists(os.path.join(record.path, PLAN_FILENAME))

    def compile_plan(self, routine: str, machine: str,
                     version="latest") -> dict:
        """(Re)build a bundle's compiled plan, published as a new version.

        Loads the source bundle (config and model checksum-verified; an
        existing plan artefact is neither loaded nor verified, so a
        corrupt or deleted plan is recoverable here), lowers the
        artefacts, and publishes the result as the next version —
        published bundle directories stay immutable and concurrent
        readers keep the staging+rename+atomic-ref guarantees that
        in-place mutation would break.  Returns a summary with the new
        version and plan description.  Idempotent: when the source
        bundle already carries a byte-identical plan the summary
        reports ``up_to_date``, and when nothing was lowerable
        (``plan`` is ``None``) no version is published either.
        """
        record = self.resolve(routine, machine, version)
        bundle = load_bundle(record.path, load_plan=False)
        plan = bundle.compile(force=True)
        if not plan.lowers_anything:
            return {"routine": record.routine, "machine": record.machine,
                    "version": record.version, "checksum": record.checksum,
                    "plan": None}
        if self.has_plan(record):
            # Plan pickling is deterministic, so byte-equality with the
            # artefact actually on disk (not the manifest's record of
            # it — a corrupt file must not read as current) means a
            # republish would mint an identical duplicate version;
            # report up-to-date instead.
            existing = _sha256_file(
                os.path.join(record.path, PLAN_FILENAME))
            fresh = hashlib.sha256(
                pickle.dumps({"plan": plan})).hexdigest()
            if existing == fresh:
                manifest = load_manifest(record.path) or {}
                return {"routine": record.routine,
                        "machine": record.machine,
                        "version": record.version,
                        "checksum": record.checksum,
                        "plan": manifest.get("plan"),
                        "up_to_date": True}
        new_record = self.publish(
            bundle, routine=routine, machine=machine,
            extra={"compiled_from_version": record.version})
        manifest = load_manifest(new_record.path)
        return {"routine": new_record.routine, "machine": new_record.machine,
                "version": new_record.version,
                "compiled_from_version": record.version,
                "checksum": new_record.checksum,
                "plan": manifest.get("plan")}

    # -- decision tables -------------------------------------------------
    def has_table(self, record: ModelRecord) -> bool:
        """Whether a bundle directory carries a decision-table artefact."""
        return os.path.exists(os.path.join(record.path, TABLE_FILENAME))

    def compile_table(self, routine: str, machine: str, version="latest",
                      resolution: int = 16, snap: str = "exact",
                      n_probe: int = 512) -> dict:
        """(Re)build a bundle's decision table, published as a new version.

        The retrofit twin of :meth:`compile_plan`: loads the source
        bundle (config and model checksum-verified; an existing table
        artefact is neither loaded nor verified, so a corrupt or
        deleted table is recoverable here), pre-evaluates the compiled
        plan over the campaign lattice — validated bitwise on every
        lattice point — and publishes the result as the next immutable
        version with a ``table_from_version`` provenance entry.
        Idempotent: a source bundle already carrying a byte-identical
        table reports ``up_to_date`` and mints no duplicate version.
        """
        record = self.resolve(routine, machine, version)
        bundle = load_bundle(record.path, load_table=False)
        table = bundle.compile_table(resolution=resolution, snap=snap,
                                     n_probe=n_probe, force=True)
        if self.has_table(record):
            # Table pickling is deterministic, so byte-equality with
            # the artefact actually on disk (not the manifest's record
            # of it — a corrupt file must not read as current) means a
            # republish would mint an identical duplicate version;
            # report up-to-date instead.
            existing = _sha256_file(
                os.path.join(record.path, TABLE_FILENAME))
            fresh = hashlib.sha256(
                pickle.dumps({"table": table})).hexdigest()
            if existing == fresh:
                manifest = load_manifest(record.path) or {}
                return {"routine": record.routine,
                        "machine": record.machine,
                        "version": record.version,
                        "checksum": record.checksum,
                        "table": manifest.get("table"),
                        "up_to_date": True}
        new_record = self.publish(
            bundle, routine=routine, machine=machine,
            extra={"table_from_version": record.version})
        manifest = load_manifest(new_record.path)
        return {"routine": new_record.routine, "machine": new_record.machine,
                "version": new_record.version,
                "table_from_version": record.version,
                "checksum": new_record.checksum,
                "table": manifest.get("table")}

    def refine_table(self, routine: str, machine: str, version="latest",
                     shapes=(), max_new_per_axis: int = 8,
                     n_probe: int = 512) -> dict:
        """Densify a bundle's table lattice where traffic missed it.

        ``shapes`` is fallback evidence — ``(m, k, n)`` triples that
        probed the published table and fell through (typically a
        predictor's ``fallback_shapes`` reservoir).  The lattice axes
        gain the most-missed off-lattice values
        (:func:`~repro.compile.table.refine_axes`), the table is
        rebuilt over the densified lattice with the same snap mode and
        full build-time validation, and the result is published as the
        next immutable version — the same staging/atomic-ref/provenance
        discipline as :meth:`compile_table`, with a ``generation``
        counter in the table metadata tracking how many refinement
        rounds the lattice has absorbed.

        Idempotent by construction: once the missed values are lattice
        ticks, re-offering the same misses changes no axis, and the
        summary reports ``up_to_date`` without minting a version (so a
        ``serve --refine-after`` loop cannot publish forever on a
        stable traffic mix).
        """
        from repro.compile.table import refine_axes

        shapes = list(shapes)
        record = self.resolve(routine, machine, version)
        bundle = load_bundle(record.path)  # table needed: axes + generation
        old_table = bundle.table
        if old_table is None:
            raise RegistryError(
                f"{record.ref} has no decision table to refine — run "
                f"compile_table first")
        refined = refine_axes(old_table.axes, shapes,
                              max_new_per_axis=max_new_per_axis)
        generation = int(old_table.meta.get("generation", 0))
        if all(np.array_equal(a, b)
               for a, b in zip(refined, old_table.axes)):
            return {"routine": record.routine, "machine": record.machine,
                    "version": record.version, "checksum": record.checksum,
                    "generation": generation,
                    "n_miss_shapes": len(shapes),
                    "up_to_date": True}
        table = bundle.compile_table(axes=refined, snap=old_table.snap,
                                     n_probe=n_probe, force=True)
        table.meta.update({
            "source": "refined",
            "generation": generation + 1,
            "refined_from_version": record.version,
            "n_miss_shapes": len(shapes),
        })
        new_record = self.publish(
            bundle, routine=routine, machine=machine,
            extra={"refined_from_version": record.version,
                   "table_generation": generation + 1})
        manifest = load_manifest(new_record.path)
        return {"routine": new_record.routine, "machine": new_record.machine,
                "version": new_record.version,
                "refined_from_version": record.version,
                "generation": generation + 1,
                "n_miss_shapes": len(shapes),
                "checksum": new_record.checksum,
                "table": manifest.get("table")}

    # -- watch / generation ----------------------------------------------
    def latest_version(self, routine: str, machine: str):
        """The cell's ``latest`` version number, or ``None`` if unpublished."""
        return self._read_ref(routine, machine)["latest"]

    def cell_generation(self, routine: str, machine: str) -> tuple:
        """Cheap change token for one ``(routine, machine)`` cell.

        Returns ``(latest_version, ref_mtime_ns)``.  Every publish
        rewrites the ref file atomically, so the token changes iff the
        cell changed — pollers compare the mtime first and only parse
        the JSON when it moved.  An unpublished cell yields
        ``(None, None)``.
        """
        path = self._ref_path(routine, machine)
        try:
            mtime = os.stat(path).st_mtime_ns
        except OSError:
            return (None, None)
        return (self.latest_version(routine, machine), mtime)

    def watch(self, cells, versions: dict = None) -> "RegistryWatcher":
        """A :class:`RegistryWatcher` over ``cells`` of this registry."""
        return RegistryWatcher(self, cells, versions=versions)

    # -- garbage collection ----------------------------------------------
    def gc(self, keep_last: int = 1, routine: str = None,
           machine: str = None) -> dict:
        """Delete old bundle versions, keeping the newest ``keep_last``.

        Applies per ``(routine, machine)`` cell (optionally filtered to
        one routine and/or machine): the highest ``keep_last`` version
        numbers survive, and the version the ``latest`` ref points at
        is *never* collected even if it is older than the keep window
        (a rollback may have moved ``latest`` backwards).  The ref is
        rewritten — atomically — before any bundle directory is
        removed, so a concurrent reader never resolves a version whose
        files are mid-deletion.  Returns a summary with the removed
        refs; collection is idempotent.
        """
        if int(keep_last) < 1:
            raise RegistryError("gc keep_last must be >= 1")
        keep_last = int(keep_last)
        removed, n_kept = [], 0
        cells = sorted({(r.routine, r.machine) for r in self.entries()})
        for cell_routine, cell_machine in cells:
            if routine is not None and cell_routine != routine:
                continue
            if machine is not None and cell_machine != machine:
                continue
            ref = self._read_ref(cell_routine, cell_machine)
            versions = sorted((int(v) for v in ref["versions"]), reverse=True)
            keep = set(versions[:keep_last])
            if ref["latest"] is not None:
                keep.add(int(ref["latest"]))
            doomed = [v for v in versions if v not in keep]
            n_kept += len(versions) - len(doomed)
            if not doomed:
                continue
            records = [ModelRecord(
                routine=cell_routine, machine=cell_machine, version=v,
                path=self._bundle_dir(cell_routine, cell_machine, v),
                checksum=ref["versions"][str(v)]["checksum"],
                model_name=ref["versions"][str(v)].get("model_name", ""))
                for v in doomed]
            for v in doomed:
                del ref["versions"][str(v)]
            self._write_ref(cell_routine, cell_machine, ref)
            for record in records:
                if os.path.isdir(record.path):
                    shutil.rmtree(record.path)
                removed.append(record)
        if removed:
            registry = default_registry()
            registry.event("registry_gc", keep_last=keep_last,
                           removed=[r.ref for r in removed])
            registry.counter("registry_gc_removed").inc(len(removed))
        return {"removed": [r.ref for r in removed],
                "n_removed": len(removed), "n_kept": n_kept,
                "keep_last": keep_last}

    # -- enumerate -------------------------------------------------------
    def entries(self) -> list:
        """Every published (routine, machine, version), sorted."""
        refs_root = os.path.join(self.root, "refs")
        records = []
        if not os.path.isdir(refs_root):
            return records
        for routine in sorted(os.listdir(refs_root)):
            routine_dir = os.path.join(refs_root, routine)
            for fname in sorted(os.listdir(routine_dir)):
                if not fname.endswith(".json"):
                    continue
                machine = fname[:-len(".json")]
                ref = self._read_ref(routine, machine)
                for v in sorted(int(x) for x in ref["versions"]):
                    entry = ref["versions"][str(v)]
                    records.append(ModelRecord(
                        routine=routine, machine=machine, version=v,
                        path=self._bundle_dir(routine, machine, v),
                        checksum=entry["checksum"],
                        model_name=entry.get("model_name", ""),
                        latest=v == ref["latest"]))
        return records

    def inspect(self, routine: str, machine: str, version="latest") -> dict:
        """The resolved record plus its bundle manifest (no unpickling)."""
        from repro.core.serialize import load_manifest

        record = self.resolve(routine, machine, version)
        manifest = load_manifest(record.path)
        return {"routine": record.routine, "machine": record.machine,
                "version": record.version, "latest": record.latest,
                "path": record.path, "checksum": record.checksum,
                "has_plan": self.has_plan(record),
                "has_table": self.has_table(record), "manifest": manifest}


class RegistryWatcher:
    """Poll a set of ``(routine, machine)`` cells for new ``latest`` refs.

    The fleet's workers watch the registry with one of these: each
    :meth:`poll` stats the cells' ref files (nanosecond mtimes — a
    publish always rewrites the ref atomically) and only parses the
    JSON of cells whose token moved, so an idle poll costs one
    ``stat`` per cell and zero reads.  ``versions`` seeds the known
    state (e.g. the versions a worker actually loaded); cells default
    to whatever is ``latest`` at construction, so only publishes
    *after* the watcher exists count as changes.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` to watch.
    cells:
        Iterable of ``(routine, machine)`` pairs.
    versions:
        Optional ``{(routine, machine): version}`` overriding the
        initial known version per cell.
    """

    def __init__(self, registry: ModelRegistry, cells, versions: dict = None):
        self.registry = registry
        self.generation = 0  # bumps once per detected change
        self._known: dict = {}
        versions = versions or {}
        for cell in cells:
            routine, machine = cell
            latest, mtime = registry.cell_generation(routine, machine)
            known = versions.get((routine, machine), latest)
            self._known[(routine, machine)] = [mtime, known]

    @property
    def cells(self) -> list:
        return sorted(self._known)

    def poll(self) -> list:
        """Changed cells since the last poll, as ``ModelRecord`` list.

        A cell reports at most its *newest* state: intermediate
        versions published between two polls collapse into one record
        (the fleet only ever rolls to ``latest``).
        """
        changed = []
        for (routine, machine), state in self._known.items():
            latest, mtime = self.registry.cell_generation(routine, machine)
            if mtime == state[0]:
                continue
            state[0] = mtime
            if latest is None or latest == state[1]:
                continue
            state[1] = latest
            self.generation += 1
            changed.append(self.registry.resolve(routine, machine, latest))
        return changed
