"""Content fingerprinting for stage artifacts.

The staged pipeline is resumable because every stage's output is stored
under a key derived from *everything that could change it*: the stage's
code version, its configuration slice, and the keys of its upstream
artifacts.  :func:`fingerprint` is the canonical hash behind those keys
— a SHA-256 over a type-tagged, order-normalised encoding, so logically
identical configurations hash identically across processes and runs
(unlike ``hash()``, which is salted per interpreter).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _encode(obj, digest) -> None:
    """Recursively feed a canonical encoding of ``obj`` into ``digest``.

    Every value is prefixed with a type tag so e.g. ``1`` / ``1.0`` /
    ``"1"`` / ``True`` cannot collide, and mappings are visited in
    sorted key order so dict insertion order is irrelevant.
    """
    if obj is None:
        digest.update(b"N")
    elif isinstance(obj, bool):
        digest.update(b"B" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        digest.update(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        digest.update(b"F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        digest.update(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(obj, bytes):
        digest.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        digest.update(b"A" + str(arr.dtype).encode()
                      + str(arr.shape).encode())
        digest.update(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        digest.update(b"L" + str(len(obj)).encode())
        for item in obj:
            _encode(item, digest)
    elif isinstance(obj, (set, frozenset)):
        digest.update(b"E" + str(len(obj)).encode())
        for item in sorted(obj, key=repr):
            _encode(item, digest)
    elif isinstance(obj, dict):
        digest.update(b"D" + str(len(obj)).encode())
        for key in sorted(obj, key=str):
            _encode(str(key), digest)
            _encode(obj[key], digest)
    elif isinstance(obj, type):
        digest.update(b"T" + f"{obj.__module__}.{obj.__qualname__}".encode())
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r} — pass primitives, "
            f"numpy arrays, containers or types (got {obj!r})")


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of a canonical encoding of ``obj``."""
    digest = hashlib.sha256()
    _encode(obj, digest)
    return digest.hexdigest()


def dataset_fingerprint(data) -> str:
    """Fingerprint of a :class:`~repro.core.dataset.TimingDataset`.

    Hashes the measurement arrays themselves, so an externally supplied
    dataset keys the gather stage by content: re-running with the same
    data hits the cache, with different data invalidates everything
    downstream.
    """
    return fingerprint({
        "m": data.m, "k": data.k, "n": data.n,
        "threads": data.threads, "runtime": data.runtime,
        "dtype": str(getattr(data, "dtype", "float32")),
    })
