"""Training matrix: one installation per (BLAS routine, machine preset).

A production deployment serves several routines (GEMM, GEMV, SYRK,
TRSM) across several machine profiles; the matrix runs the staged
pipeline for every cell and publishes each cell's bundle into the
:class:`~repro.train.registry.ModelRegistry`, from which the serving
layer hot-reloads.  All cells share one stage cache — the cache keys
include routine and machine, so cells never collide, and re-running a
partially completed matrix resumes at the first unfinished cell/stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blas.adapter import RoutineSimulator, _RoutineGatherer
from repro.core.routines import REGISTRY, get_routine
from repro.core.training import InstallationWorkflow
from repro.gemm.partition import choose_thread_grid
from repro.machine.presets import PRESETS, by_name
from repro.machine.simulator import MachineSimulator
from repro.sampling.domain import GemmDomainSampler
from repro.train.registry import ModelRegistry
from repro.train.stages import StageCache


class RoutineWorkflow(InstallationWorkflow):
    """Installation workflow whose campaign times a non-GEMM routine.

    The simulator handed to the base class is a
    :class:`~repro.blas.adapter.RoutineSimulator` oracle, so machine
    metadata (name, affinity, grid capacity) flows through unchanged;
    only :meth:`gather` differs — shapes are drawn from the GEMM domain
    sampler and mapped onto routine specs through the central routine
    registry (:mod:`repro.core.routines`).
    """

    def __init__(self, routine: str, oracle, **kwargs):
        if routine not in REGISTRY:
            raise ValueError(f"unknown routine {routine!r}; "
                             f"known: {sorted(REGISTRY.names())}")
        super().__init__(oracle, **kwargs)
        self.routine = routine

    def gather(self):
        import time

        t0 = time.perf_counter()
        sampler = GemmDomainSampler(memory_cap_bytes=self.memory_cap_bytes,
                                    dtype=self.dtype, seed=self.seed)
        info = get_routine(self.routine)
        specs = [info.from_gemm(s) for s in sampler.sample(self.n_shapes)]
        gatherer = _RoutineGatherer(self.simulator, self.thread_grid,
                                    repeats=self.repeats)
        data = gatherer.gather_for_specs(specs)
        self.timings_["gather_s"] = time.perf_counter() - t0
        return data

    def gather_config(self) -> dict:
        return {**super().gather_config(), "routine": self.routine}


def build_workflow(routine: str, machine_name: str, seed: int = 0,
                   **workflow_kwargs) -> InstallationWorkflow:
    """One matrix cell's workflow on a simulated machine preset."""
    simulator = MachineSimulator(by_name(machine_name), seed=seed)
    workflow_kwargs.setdefault(
        "thread_grid", choose_thread_grid(simulator.max_threads()))
    workflow_kwargs.setdefault("memory_cap_bytes", 64 * 1024 * 1024)
    if routine == "gemm":
        return InstallationWorkflow(simulator, seed=seed, **workflow_kwargs)
    return RoutineWorkflow(routine, RoutineSimulator(simulator), seed=seed,
                           **workflow_kwargs)


@dataclass(frozen=True)
class MatrixResult:
    """Published records plus per-cell cache effectiveness."""

    records: list
    stage_stats: dict


class TrainingMatrix:
    """Run the staged pipeline over routines × machine presets.

    Parameters
    ----------
    routines / machines:
        The matrix axes (routine names from the central registry; machine
        preset names).
    registry:
        A :class:`~repro.train.registry.ModelRegistry` or a root path.
    cache:
        Shared stage cache (path or :class:`StageCache`) enabling
        resume across the whole matrix.
    n_jobs / executor:
        Per-cell tuning fan-out.
    workflow_kwargs:
        Forwarded to every cell's workflow (n_shapes, budget,
        tune_iters...).  ``eval_time_s`` defaults to a pinned value so
        matrix cells are bitwise reproducible.
    """

    def __init__(self, routines, machines, registry, cache=None,
                 n_jobs: int = 1, executor: str = "thread", seed: int = 0,
                 **workflow_kwargs):
        self.routines = list(routines)
        for routine in self.routines:
            if routine not in REGISTRY:
                raise ValueError(f"unknown routine {routine!r}; "
                                 f"known: {sorted(REGISTRY.names())}")
        self.machines = list(machines)
        for machine in self.machines:
            if machine.lower() not in PRESETS:
                raise ValueError(
                    f"unknown machine preset {machine!r}; matrix cells "
                    f"train on simulated presets only "
                    f"(known: {sorted(PRESETS)})")
        self.registry = registry if isinstance(registry, ModelRegistry) \
            else ModelRegistry(registry)
        self.cache = cache if isinstance(cache, StageCache) \
            else StageCache(cache)
        self.n_jobs = int(n_jobs)
        self.executor = executor
        self.seed = int(seed)
        workflow_kwargs.setdefault("eval_time_s", 1e-5)
        self.workflow_kwargs = workflow_kwargs

    def cells(self) -> list:
        return [(routine, machine) for routine in self.routines
                for machine in self.machines]

    def run(self, progress=None) -> MatrixResult:
        """Train and publish every cell; returns the published records.

        ``progress`` (a callable taking a message string) receives one
        line per cell — the CLI passes ``print``.
        """
        records = []
        for routine, machine in self.cells():
            workflow = build_workflow(routine, machine, seed=self.seed,
                                      n_jobs=self.n_jobs,
                                      executor=self.executor,
                                      **self.workflow_kwargs)
            bundle = workflow.run(cache=self.cache)
            record = self.registry.publish(bundle, routine=routine,
                                           machine=machine)
            hits = workflow.last_pipeline_.last_run_.cache_hits
            if progress is not None:
                progress(f"[{routine}/{machine}] v{record.version} "
                         f"{record.model_name} "
                         f"checksum {record.checksum[:12]} "
                         f"(stage cache hits: {hits})")
            records.append(record)
        return MatrixResult(records=records, stage_stats=self.cache.stats())
