"""Stage protocol and the content-addressed stage-artifact cache.

The installation workflow (paper Fig. 2) decomposes into discrete
stages — gather, split, preprocess, one tuning stage per candidate,
select — each a :class:`Stage`.  A stage's artifact is stored in a
:class:`StageCache` under a key that fingerprints the stage's code
version, its configuration slice, and its upstream artifact keys, so:

* re-running an identical configuration replays entirely from cache
  (resume after an interrupt re-executes only what never finished);
* tweaking one knob invalidates exactly the stages downstream of it —
  changing ``tune_iters`` re-tunes but never re-gathers;
* two runs that end with the same final stage key are guaranteed to
  have produced identical artifacts, which is what the pipeline's
  bundle-checksum reproducibility tests lean on.
"""

from __future__ import annotations

import json
import os
import pickle

from repro.train.fingerprint import fingerprint


class Stage:
    """One resumable unit of the training pipeline.

    Subclasses define ``name`` (unique within a pipeline), ``requires``
    (upstream stage names whose artifacts are this stage's inputs),
    ``version`` (bump to invalidate cached artifacts when the stage's
    *code* changes meaning), a ``config(ctx)`` slice of the run
    configuration that affects the output, and ``run(ctx, inputs)``.
    """

    name: str = ""
    version: int = 1
    requires: tuple = ()

    def config(self, ctx) -> dict:
        return {}

    def run(self, ctx, inputs: dict):  # pragma: no cover - abstract
        raise NotImplementedError

    def key(self, ctx, upstream_keys: dict) -> str:
        """Content address of this stage's artifact for this run."""
        return fingerprint({
            "stage": self.name,
            "version": self.version,
            "config": self.config(ctx),
            "inputs": {dep: upstream_keys[dep] for dep in self.requires},
        })


class StageCache:
    """Content-addressed artifact store with hit/miss accounting.

    ``root=None`` keeps artifacts in memory (the default pipeline mode:
    no disk I/O, no resume).  With a directory, each artifact is a
    pickle under ``<root>/<stage>/<key>.pkl`` plus a JSON sidecar for
    ``repro models``-style inspection.  Loads that fail for any reason
    are treated as misses — a torn write from a killed run degrades to
    recomputation, never to a crash.
    """

    def __init__(self, root=None):
        self.root = os.fspath(root) if root is not None else None
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0

    # -- paths -----------------------------------------------------------
    def _paths(self, stage: str, key: str):
        directory = os.path.join(self.root, stage)
        return (os.path.join(directory, key + ".pkl"),
                os.path.join(directory, key + ".json"))

    def contains(self, stage: str, key: str) -> bool:
        if self.root is None:
            return (stage, key) in self._memory
        return os.path.exists(self._paths(stage, key)[0])

    # -- load/store ------------------------------------------------------
    def load(self, stage: str, key: str):
        """``(found, value)``; counts a hit or a miss."""
        if self.root is None:
            if (stage, key) in self._memory:
                self.hits += 1
                return True, self._memory[(stage, key)]
            self.misses += 1
            return False, None
        pkl_path, _ = self._paths(stage, key)
        try:
            with open(pkl_path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:  # torn/corrupt artifact: recompute
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, stage: str, key: str, value, meta: dict = None):
        """Persist an artifact; returns the *canonical* value.

        With an on-disk cache the returned value is the artifact read
        back from its pickle, not the original object.  Downstream
        stages therefore always consume the same normalised object
        graph whether the upstream stage executed or replayed — which
        is what makes a resumed run's final bundle *byte-identical*
        (same checksum) to an uninterrupted run's, not merely
        semantically equal (pickle output depends on object sharing,
        and sharing differs between computed and unpickled graphs).
        """
        if self.root is None:
            self._memory[(stage, key)] = value
            return value
        pkl_path, meta_path = self._paths(stage, key)
        os.makedirs(os.path.dirname(pkl_path), exist_ok=True)
        tmp = pkl_path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh)
        os.replace(tmp, pkl_path)  # atomic: a killed run leaves no torn file
        with open(meta_path + ".tmp", "w") as fh:
            json.dump({"stage": stage, "key": key, **(meta or {})}, fh,
                      indent=2, sort_keys=True)
        os.replace(meta_path + ".tmp", meta_path)
        with open(pkl_path, "rb") as fh:
            return pickle.load(fh)

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}


class PipelineRun:
    """Outcome of one pipeline execution: artifacts, keys, cache events."""

    def __init__(self):
        self.artifacts: dict = {}
        self.keys: dict = {}
        self.events: list = []  # (stage_name, "hit" | "run")
        self.durations: dict = {}  # stage_name -> wall seconds

    @property
    def cache_hits(self) -> int:
        return sum(1 for _, kind in self.events if kind == "hit")

    @property
    def executed(self) -> list:
        return [name for name, kind in self.events if kind == "run"]


def run_stages(stages, ctx, cache: StageCache = None) -> PipelineRun:
    """Execute ``stages`` in order, replaying cached artifacts.

    ``stages`` must be topologically ordered (each stage's ``requires``
    appear earlier).  Returns the :class:`PipelineRun` with every
    artifact; raising from a stage leaves all *completed* stages'
    artifacts in the cache, which is exactly what resume picks up.
    """
    import time

    cache = cache if cache is not None else StageCache()
    run = PipelineRun()
    for stage in stages:
        missing = [dep for dep in stage.requires if dep not in run.keys]
        if missing:
            raise ValueError(f"stage {stage.name!r} requires {missing} "
                             f"which did not run earlier in the pipeline")
        key = stage.key(ctx, run.keys)
        t0 = time.perf_counter()
        found, value = cache.load(stage.name, key)
        if found:
            run.events.append((stage.name, "hit"))
        else:
            value = stage.run(ctx, {dep: run.artifacts[dep]
                                    for dep in stage.requires})
            value = cache.store(stage.name, key, value,
                                meta={"version": stage.version,
                                      "config": _jsonable(stage.config(ctx))})
            run.events.append((stage.name, "run"))
        run.durations[stage.name] = time.perf_counter() - t0
        run.artifacts[stage.name] = value
        run.keys[stage.name] = key
    return run


def _jsonable(obj):
    """Best-effort JSON projection of a stage config for the sidecar."""
    try:
        json.dumps(obj)
        return obj
    except (TypeError, ValueError):
        return repr(obj)
