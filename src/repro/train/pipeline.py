"""The staged installation pipeline (paper Fig. 2, made resumable).

``gather -> split -> preprocess -> tune:<candidate>... -> select``

Each box of the paper's installation diagram is a
:class:`~repro.train.stages.Stage` whose artifact is content-addressed
in a :class:`~repro.train.stages.StageCache`: re-running after an
interrupt (or a config tweak) re-executes only invalidated stages, and
tuning — the dominant cost — runs one stage *per candidate model* so a
killed bake-off resumes from the last finished candidate.  Inside a
tuning stage, (configuration, fold) work items fan across the run's
executor pool; the reduction is schedule-independent, so the selected
model is bitwise identical to the serial path at any worker count.

:class:`~repro.core.training.InstallationWorkflow` remains the public
facade: ``workflow.run()`` builds a :class:`TrainingPipeline` under the
hood, so the paper-era API is unchanged while the CLI's ``--jobs`` /
``--resume`` and the training matrix ride the staged machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import ThreadPredictor
from repro.core.selection import (ModelSelectionReport, ModelSelectionRow,
                                  estimate_speedup)
from repro.ml.metrics import normalised_rmse
from repro.ml.model_selection import KFold, fold_indices
from repro.ml.registry import candidate_models
from repro.ml.tuning import RandomizedSearchCV, candidate_seed
from repro.obs.metrics import default_registry
from repro.train.fingerprint import dataset_fingerprint
from repro.train.stages import Stage, StageCache, run_stages
from repro.train.tuning import evaluate_params, make_pool


class _RunContext:
    """Per-run state the stages see: the workflow config, optional
    externally supplied data, and the executor pool."""

    def __init__(self, workflow, data=None, pool=None):
        self.workflow = workflow
        self.data = data
        self.pool = pool


class GatherStage(Stage):
    """Stage 1: the timing campaign (or ingestion of supplied data)."""

    name = "gather"

    def config(self, ctx) -> dict:
        if ctx.data is not None:
            # Externally supplied measurements: key by content.
            return {"ingest": dataset_fingerprint(ctx.data)}
        return ctx.workflow.gather_config()

    def run(self, ctx, inputs):
        if ctx.data is not None:
            return ctx.data
        return ctx.workflow.gather()


class SplitStage(Stage):
    """Stage 2: stratified shape-granularity train/test split."""

    name = "split"
    requires = ("gather",)

    def config(self, ctx) -> dict:
        wf = ctx.workflow
        return {"test_fraction": wf.test_fraction, "seed": wf.seed,
                "dtype": wf.dtype}

    def run(self, ctx, inputs):
        train, test = ctx.workflow.split_shapes(inputs["gather"])
        return {"train": train, "test": test}


class PreprocessStage(Stage):
    """Stage 3: fit preprocessing, build matrices, draw tuning rows."""

    name = "preprocess"
    requires = ("split",)

    def config(self, ctx) -> dict:
        wf = ctx.workflow
        return {
            "feature_groups": wf.feature_groups,
            "label_transform": wf.label_transform,
            "use_yeo_johnson": wf.use_yeo_johnson,
            "use_lof": wf.use_lof,
            "corr_threshold": wf.corr_threshold,
            "lof_neighbors": wf.lof_neighbors,
            "lof_contamination": wf.lof_contamination,
            "tune_subsample": wf.tune_subsample,
            "seed": wf.seed,
        }

    def run(self, ctx, inputs):
        wf = ctx.workflow
        train, test = inputs["split"]["train"], inputs["split"]["test"]
        pipeline, X_train, y_train = wf.preprocess(train)
        config = wf._config_stub()
        X_test_raw = wf.feature_builder.build(test.m, test.k, test.n,
                                              test.threads)
        X_test = pipeline.transform(X_test_raw)
        y_test = config.transform_label(test.runtime)
        rng = np.random.default_rng(wf.seed)
        if X_train.shape[0] > wf.tune_subsample:
            tune_rows = rng.choice(X_train.shape[0], size=wf.tune_subsample,
                                   replace=False)
        else:
            tune_rows = np.arange(X_train.shape[0])
        return {"pipeline": pipeline, "X_train": X_train, "y_train": y_train,
                "X_test": X_test, "y_test": y_test, "tune_rows": tune_rows}


class TuneCandidateStage(Stage):
    """Stage 4 (one per candidate): CV-tune, refit, measure, estimate.

    The artifact is the candidate's full bake-off row material: the
    fitted model, the winning hyper-parameters, the CV table, the
    measured evaluation time and the speedup estimate.  Per-candidate
    granularity is what makes a killed ten-candidate bake-off resume
    from candidate seven instead of candidate one.
    """

    requires = ("split", "preprocess")

    def __init__(self, candidate):
        self.candidate = candidate
        self.name = f"tune:{candidate.name}"

    def config(self, ctx) -> dict:
        wf = ctx.workflow
        cand = self.candidate
        return {
            "candidate": {"name": cand.name, "factory": cand.factory,
                          "defaults": cand.defaults,
                          "search_space": cand.search_space},
            "tune_iters": wf.tune_iters,
            "cv_folds": wf.cv_folds,
            "seed": wf.seed,
            "eval_time_scale": wf.eval_time_scale,
            "eval_time_s": wf.eval_time_s,
            "thread_grid": list(wf.thread_grid),
        }

    def run(self, ctx, inputs):
        wf = ctx.workflow
        cand = self.candidate
        pre = inputs["preprocess"]
        X_train, y_train = pre["X_train"], pre["y_train"]
        tune_rows = pre["tune_rows"]
        X_tune = np.asarray(X_train[tune_rows], dtype=np.float64)
        y_tune = np.asarray(y_train[tune_rows], dtype=np.float64).ravel()

        searcher = RandomizedSearchCV(
            cand.build(), cand.search_space, n_iter=wf.tune_iters,
            random_state=candidate_seed(wf.seed, cand.name))
        params_list = searcher.sampled_params()
        folds = fold_indices(KFold(n_splits=wf.cv_folds, shuffle=True,
                                   random_state=wf.seed), X_tune)
        cv_results = evaluate_params(cand.build(), params_list,
                                     X_tune, y_tune, folds, pool=ctx.pool)
        best_params = cv_results[0]["params"]

        model = cand.build(**best_params)
        model.fit(X_train, y_train)

        predictor = ThreadPredictor(wf.feature_builder, pre["pipeline"],
                                    model, wf.thread_grid)
        if wf.eval_time_s is not None:
            eval_time = float(wf.eval_time_s)
        else:
            eval_time = predictor.measure_eval_time() * wf.eval_time_scale
        speedup = estimate_speedup(predictor, inputs["split"]["test"],
                                   eval_time_s=eval_time)
        nrmse = normalised_rmse(pre["y_test"], model.predict(pre["X_test"]))
        return {"name": cand.name, "model": model,
                "best_params": best_params, "cv_results": cv_results,
                "nrmse": nrmse, "speedup": speedup}


class SelectStage(Stage):
    """Stage 5: the Tables III/IV bake-off and the winning bundle."""

    name = "select"

    def __init__(self, candidate_names):
        self.candidate_names = list(candidate_names)
        self.requires = ("preprocess",) + tuple(
            f"tune:{name}" for name in self.candidate_names)

    def config(self, ctx) -> dict:
        return {"candidates": self.candidate_names}

    def run(self, ctx, inputs):
        from repro.core.training import TrainedBundle

        wf = ctx.workflow
        rows = []
        for name in self.candidate_names:
            art = inputs[f"tune:{name}"]
            rows.append(ModelSelectionRow(name=art["name"],
                                          nrmse=art["nrmse"],
                                          speedup=art["speedup"],
                                          best_params=art["best_params"]))
        report = ModelSelectionReport.select(rows)
        winner = inputs[f"tune:{report.selected}"]["model"]
        config = wf._config_stub()
        config.model_name = report.selected
        config.model_params = report.row(report.selected).best_params
        return TrainedBundle(config=config,
                             pipeline=inputs["preprocess"]["pipeline"],
                             model=winner, report=report)


class TrainingPipeline:
    """Composable, resumable, parallel installation runner.

    Parameters
    ----------
    workflow:
        The :class:`~repro.core.training.InstallationWorkflow` carrying
        all configuration (and the machine).
    cache:
        A :class:`~repro.train.stages.StageCache`, a directory path for
        an on-disk cache, or ``None`` for in-memory (no resume).
    n_jobs / executor:
        Tuning fan-out: worker count and ``"thread"`` or ``"process"``.
        Results are bitwise independent of both.
    """

    def __init__(self, workflow, cache=None, n_jobs: int = 1,
                 executor: str = "thread"):
        self.workflow = workflow
        self.cache = cache if isinstance(cache, StageCache) \
            else StageCache(cache)
        self.n_jobs = int(n_jobs)
        self.executor = executor
        self.last_run_ = None

    def candidates(self) -> list:
        wf = self.workflow
        return list(wf.candidates or candidate_models(
            budget=wf.budget, random_state=wf.seed))

    def stages(self, data=None) -> list:
        candidates = self.candidates()
        return ([GatherStage(), SplitStage(), PreprocessStage()]
                + [TuneCandidateStage(c) for c in candidates]
                + [SelectStage([c.name for c in candidates])])

    def run(self, data=None):
        """Execute (or replay) every stage; returns the selected bundle.

        Completed stages hit the cache; the bundle of two runs with the
        same final stage key is identical, which is what makes a
        killed-and-resumed installation reproduce the uninterrupted
        bundle checksum.
        """
        pool = make_pool(self.n_jobs, self.executor)
        ctx = _RunContext(self.workflow, data=data, pool=pool)
        try:
            run = run_stages(self.stages(data), ctx, self.cache)
        finally:
            pool.close()
        self.last_run_ = run
        # train_s keeps its historical meaning: tuning + selection only
        # (gather time is reported separately as gather_s).
        self.workflow.timings_["train_s"] = sum(
            seconds for name, seconds in run.durations.items()
            if name.startswith("tune:") or name == "select")
        self._publish_metrics(run)
        return run.artifacts["select"]

    def _publish_metrics(self, run) -> None:
        """Per-stage wall times + a run audit event into the registry."""
        registry = default_registry()
        for name, seconds in run.durations.items():
            registry.gauge("train_stage_seconds", stage=name).set(seconds)
        registry.event("train_run",
                       stages_run=len(run.executed),
                       stages_hit=run.cache_hits,
                       train_s=round(self.workflow.timings_["train_s"], 6))

    def stats(self) -> dict:
        """Cache effectiveness of the last run (hit counters for tests
        and the CLI's resume report)."""
        stats = dict(self.cache.stats())
        if self.last_run_ is not None:
            stats["stages_hit"] = self.last_run_.cache_hits
            stats["stages_run"] = len(self.last_run_.executed)
        return stats
