"""Parallel hyper-parameter tuning with serial-equivalent results.

The dominant installation cost is ``RandomizedSearchCV`` over every
candidate model × k CV folds.  This module flattens that into
independent (configuration, fold) work items fanned across an executor
(:class:`~repro.gemm.parallel.WorkerPool` threads by default, worker
processes for GIL-bound fits), then reduces in *draw order* — mean over
folds in fold order, stable sort over configurations — so the winning
configuration, and therefore the refit model, is bitwise identical to a
serial evaluation at any worker count:

* each candidate's configurations come from
  :meth:`~repro.ml.tuning.RandomizedSearchCV.sampled_params` under its
  own :func:`~repro.ml.tuning.candidate_seed` — no stream is shared
  across candidates, so schedule and ordering cannot leak into draws;
* folds are materialised once (:func:`~repro.ml.model_selection.fold_indices`)
  and every worker scores against literally identical splits;
* model fits are deterministic functions of (hyper-parameters, data),
  and workers never mutate shared state.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.parallel import WorkerPool, process_map
from repro.ml.base import clone


#: Per-run tuning data: ``(estimator, X, y, folds, scoring)``, set by
#: :func:`evaluate_params` *before* the pool fans out.  Thread workers
#: read it directly; forked process workers inherit the parent's memory
#: image (``process_map`` forks per ``map`` call, after this is set) —
#: so a task carries only ``(params, fold_index)`` and the data
#: matrices are never pickled per work item.
_WORKSPACE = None


def _score_task(task) -> float:
    """Fit one configuration on one fold and score it (worker body)."""
    params, fold_index = task
    estimator, X, y, folds, scoring = _WORKSPACE
    if scoring is None:
        from repro.ml.metrics import r2_score

        scoring = r2_score
    train_idx, val_idx = folds[fold_index]
    model = clone(estimator).set_params(**params)
    model.fit(X[train_idx], y[train_idx])
    return float(scoring(y[val_idx], model.predict(X[val_idx])))


class ProcessPool:
    """:class:`~repro.gemm.parallel.WorkerPool` interface over processes."""

    def __init__(self, n_workers: int = 1):
        if int(n_workers) < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)

    def map(self, fn, items) -> list:
        return process_map(fn, items, self.n_workers)

    def close(self) -> None:
        pass

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def make_pool(n_jobs: int = 1, executor: str = "thread"):
    """Build the work pool for a pipeline run."""
    if executor == "thread":
        return WorkerPool(n_jobs)
    if executor == "process":
        return ProcessPool(n_jobs)
    raise ValueError(f"unknown executor {executor!r} "
                     f"(choose 'thread' or 'process')")


def evaluate_params(estimator, params_list, X, y, folds, pool=None,
                    scoring=None) -> list:
    """CV-score every configuration; returns serial-ordered results.

    The return value matches ``_BaseSearchCV.fit``'s ``cv_results_``
    construction: a list of ``{"params", "mean_score", "scores"}``
    sorted by mean score descending with a *stable* sort, so ties break
    toward the earlier draw exactly as the serial searcher does.
    """
    global _WORKSPACE

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    params_list = list(params_list)
    if not params_list:
        raise ValueError("empty hyper-parameter search space")
    pool = pool or WorkerPool(1)
    tasks = [(params, fold_index)
             for params in params_list
             for fold_index in range(len(folds))]
    _WORKSPACE = (estimator, X, y, list(folds), scoring)
    try:
        flat = pool.map(_score_task, tasks)
    finally:
        _WORKSPACE = None
    n_folds = len(folds)
    results = []
    for i, params in enumerate(params_list):
        scores = np.asarray(flat[i * n_folds:(i + 1) * n_folds])
        results.append((params, float(np.mean(scores)), scores))
    results.sort(key=lambda r: r[1], reverse=True)  # stable, like serial
    return [{"params": p, "mean_score": m, "scores": s}
            for p, m, s in results]
