"""Yeo-Johnson power transformation with MLE lambda estimation.

The Yeo-Johnson transform (Yeo & Johnson 2000; paper Section II-C)
extends Box-Cox to non-positive values::

    psi(x, lam) = ((x+1)^lam - 1) / lam                     x >= 0, lam != 0
                  log(x+1)                                  x >= 0, lam == 0
                  -((-x+1)^(2-lam) - 1) / (2-lam)           x < 0,  lam != 2
                  -log(-x+1)                                x < 0,  lam == 2

The per-feature lambda is chosen by maximising the Gaussian profile
log-likelihood, exactly as the paper automates it "for each feature from
the original data distribution through maximum likelihood estimation".
The 1-D optimisation uses scipy's bounded Brent search.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, check_array


def yeo_johnson(x: np.ndarray, lam: float) -> np.ndarray:
    """Apply the Yeo-Johnson transform with a fixed lambda."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    if abs(lam) > 1e-10:
        out[pos] = (np.power(x[pos] + 1.0, lam) - 1.0) / lam
    else:
        out[pos] = np.log1p(x[pos])
    if abs(lam - 2.0) > 1e-10:
        out[~pos] = -(np.power(1.0 - x[~pos], 2.0 - lam) - 1.0) / (2.0 - lam)
    else:
        out[~pos] = -np.log1p(-x[~pos])
    return out


def yeo_johnson_inverse(z: np.ndarray, lam: float) -> np.ndarray:
    """Invert the transform (used by tests as a round-trip oracle)."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    if abs(lam) > 1e-10:
        out[pos] = np.power(z[pos] * lam + 1.0, 1.0 / lam) - 1.0
    else:
        out[pos] = np.expm1(z[pos])
    if abs(lam - 2.0) > 1e-10:
        out[~pos] = 1.0 - np.power(1.0 - (2.0 - lam) * z[~pos], 1.0 / (2.0 - lam))
    else:
        out[~pos] = -np.expm1(-z[~pos])
    return out


def _log_likelihood(x: np.ndarray, lam: float) -> float:
    """Gaussian profile log-likelihood of the transformed sample."""
    z = yeo_johnson(x, lam)
    n = x.size
    var = z.var()
    if var <= 0:
        return -np.inf
    # Jacobian term: sum (lam-1) * sign(x) * log(|x|+1)
    jac = (lam - 1.0) * np.sum(np.sign(x) * np.log1p(np.abs(x)))
    return -0.5 * n * np.log(var) + jac


def yeo_johnson_mle_lambda(x: np.ndarray, bounds=(-3.0, 5.0)) -> float:
    """MLE estimate of lambda for one feature via bounded Brent search."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2 or np.all(x == x[0]):
        return 1.0  # identity for degenerate features
    result = optimize.minimize_scalar(
        lambda lam: -_log_likelihood(x, lam), bounds=bounds, method="bounded")
    return float(result.x)


class YeoJohnsonTransformer(BaseEstimator):
    """Per-feature Yeo-Johnson transform with MLE lambdas.

    Parameters
    ----------
    standardize:
        Also zero-mean/unit-variance the transformed output (matching
        sklearn's PowerTransformer default).  ADSALA's pipeline applies
        a separate :class:`~repro.preprocessing.standard.StandardScaler`
        afterwards, so this defaults to off.
    """

    def __init__(self, standardize: bool = False, lambda_bounds=(-3.0, 5.0)):
        self.standardize = standardize
        self.lambda_bounds = lambda_bounds

    def fit(self, X, y=None) -> "YeoJohnsonTransformer":
        X = check_array(X)
        self.lambdas_ = np.array([
            yeo_johnson_mle_lambda(X[:, j], bounds=self.lambda_bounds)
            for j in range(X.shape[1])
        ])
        self.n_features_ = X.shape[1]
        if self.standardize:
            Z = self._raw_transform(X)
            self.mean_ = Z.mean(axis=0)
            std = Z.std(axis=0)
            std[std == 0.0] = 1.0
            self.std_ = std
        return self

    def _raw_transform(self, X) -> np.ndarray:
        return np.column_stack([
            yeo_johnson(X[:, j], self.lambdas_[j]) for j in range(X.shape[1])
        ])

    def transform(self, X, check_input: bool = True) -> np.ndarray:
        self._check_fitted("lambdas_")
        if check_input:
            X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        Z = self._raw_transform(X)
        if self.standardize:
            Z = (Z - self.mean_) / self.std_
        return Z

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def skewness_reduction(self, X) -> np.ndarray:
        """|skew| before minus after, per feature (Fig. 4's effect size)."""
        self._check_fitted("lambdas_")
        X = check_array(X)

        def skew(a):
            a = a - a.mean(axis=0)
            s2 = np.mean(a ** 2, axis=0)
            s3 = np.mean(a ** 3, axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(s2 > 0, s3 / np.power(s2, 1.5), 0.0)

        return np.abs(skew(X)) - np.abs(skew(self.transform(X)))
