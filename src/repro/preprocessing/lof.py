"""Local Outlier Factor (Breunig et al., SIGMOD 2000).

Density-based outlier scoring: each point's *local reachability density*
is compared with that of its k nearest neighbours; points whose density
is much lower than their neighbourhood's receive LOF scores well above 1
and are flagged as local outliers.  The paper applies LOF after
standardisation to remove both global and local outliers from the
gathered timing data (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array


class LocalOutlierFactor(BaseEstimator):
    """Brute-force LOF with a contamination- or threshold-based cutoff.

    Parameters
    ----------
    n_neighbors:
        The ``k`` of the k-distance neighbourhood.
    contamination:
        If set (0..0.5), the fraction of points flagged as outliers (the
        highest LOF scores).  Otherwise points with ``lof > threshold``
        are flagged.
    threshold:
        Score cutoff used when ``contamination`` is None.
    """

    def __init__(self, n_neighbors: int = 20, contamination: float = None,
                 threshold: float = 1.5, chunk_size: int = 512):
        self.n_neighbors = n_neighbors
        self.contamination = contamination
        self.threshold = threshold
        self.chunk_size = chunk_size

    def fit(self, X, y=None) -> "LocalOutlierFactor":
        """Score every sample; sets ``lof_scores_`` and ``inlier_mask_``."""
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.contamination is not None and not 0.0 < self.contamination <= 0.5:
            raise ValueError("contamination must be in (0, 0.5]")
        X = check_array(X)
        n = X.shape[0]
        k = min(self.n_neighbors, n - 1)
        if k < 1:
            raise ValueError("need at least 2 samples for LOF")

        # k nearest neighbours (excluding self), chunked distance matrix.
        neigh_idx = np.empty((n, k), dtype=np.int64)
        neigh_dist = np.empty((n, k))
        sq = np.einsum("ij,ij->i", X, X)
        for start in range(0, n, self.chunk_size):
            q = X[start:start + self.chunk_size]
            d2 = sq[start:start + q.shape[0], None] - 2.0 * q @ X.T + sq[None, :]
            np.maximum(d2, 0.0, out=d2)
            rows = np.arange(q.shape[0])
            d2[rows, np.arange(start, start + q.shape[0])] = np.inf  # drop self
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
            pd = d2[rows[:, None], part]
            order = np.argsort(pd, axis=1)
            neigh_idx[start:start + q.shape[0]] = part[rows[:, None], order]
            neigh_dist[start:start + q.shape[0]] = np.sqrt(pd[rows[:, None], order])

        # k-distance of each point = distance to its k-th neighbour.
        k_dist = neigh_dist[:, -1]
        # reach-dist_k(p, o) = max(k-distance(o), d(p, o))
        reach = np.maximum(k_dist[neigh_idx], neigh_dist)
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        self.lof_scores_ = lrd[neigh_idx].mean(axis=1) / lrd

        if self.contamination is not None:
            n_out = max(1, int(round(n * self.contamination)))
            cutoff = np.partition(self.lof_scores_, n - n_out)[n - n_out]
            self.inlier_mask_ = self.lof_scores_ < max(cutoff, 1.0 + 1e-12)
        else:
            self.inlier_mask_ = self.lof_scores_ <= self.threshold
        return self

    def fit_predict(self, X) -> np.ndarray:
        """+1 for inliers, -1 for outliers (sklearn convention)."""
        self.fit(X)
        return np.where(self.inlier_mask_, 1, -1)

    def filter(self, X, *arrays):
        """Fit on ``X`` and return all arrays with outlier rows removed."""
        self.fit(X)
        mask = self.inlier_mask_
        filtered = [np.asarray(a)[mask] for a in (X,) + arrays]
        return filtered[0] if not arrays else tuple(filtered)
