"""Sequential transformer pipeline.

Chains fit/transform stages so the exact preprocessing fitted at
installation time can be replayed on every runtime feature vector (the
"Config File (For data preprocessing)" of the paper's Figs. 2-3).
"""

from __future__ import annotations

from repro.ml.base import BaseEstimator


class Pipeline(BaseEstimator):
    """Ordered list of named transformers.

    Every stage must expose ``fit``/``transform``.  Unlike sklearn's
    pipeline there is no final estimator — ADSALA keeps the model
    separate because runtime evaluation transforms a single feature
    batch then queries the model many times.
    """

    def __init__(self, steps=None):
        self.steps = list(steps or [])
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names in {names}")

    def fit(self, X, y=None) -> "Pipeline":
        data = X
        for _, stage in self.steps:
            stage.fit(data, y)
            data = stage.transform(data)
        self.fitted_ = True
        return self

    @classmethod
    def from_fitted(cls, steps) -> "Pipeline":
        """Assemble a pipeline from already-fitted stages.

        The installation workflow fits stages interleaved with row
        filtering (LOF removes training rows between transforms), so the
        inference pipeline is assembled afterwards from the fitted
        pieces rather than via :meth:`fit`.
        """
        pipe = cls(steps)
        pipe.fitted_ = True
        return pipe

    def transform(self, X):
        self._check_fitted("fitted_")
        data = X
        for _, stage in self.steps:
            data = stage.transform(data)
        return data

    def fit_transform(self, X, y=None):
        self.fit(X, y)
        return self.transform(X)

    def named_step(self, name: str):
        for step_name, stage in self.steps:
            if step_name == name:
                return stage
        raise KeyError(f"no step named {name!r}; have {[n for n, _ in self.steps]}")

    def __len__(self):
        return len(self.steps)
