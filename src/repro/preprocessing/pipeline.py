"""Sequential transformer pipeline.

Chains fit/transform stages so the exact preprocessing fitted at
installation time can be replayed on every runtime feature vector (the
"Config File (For data preprocessing)" of the paper's Figs. 2-3).

On the inference side :meth:`Pipeline.transform` validates its input
**once** at entry and hands each stage already-validated float64 data
(``check_input=False`` for stages that support it), instead of paying a
full coerce-and-finiteness scan per stage — measurable on large batches,
and value-identical since re-validation never changes the data.
"""

from __future__ import annotations

import inspect

from repro.ml.base import BaseEstimator, check_array

_UNCHECKED_SUPPORT: dict = {}


def _accepts_check_input(stage) -> bool:
    """Whether ``stage.transform`` takes a ``check_input`` flag.

    Cached per class; resolved via signature inspection so third-party
    stages (and pre-refactor pickled ones) keep working unchanged.
    """
    cls = type(stage)
    known = _UNCHECKED_SUPPORT.get(cls)
    if known is None:
        try:
            params = inspect.signature(cls.transform).parameters
            known = "check_input" in params
        except (TypeError, ValueError):
            known = False
        _UNCHECKED_SUPPORT[cls] = known
    return known


class Pipeline(BaseEstimator):
    """Ordered list of named transformers.

    Every stage must expose ``fit``/``transform``.  Unlike sklearn's
    pipeline there is no final estimator — ADSALA keeps the model
    separate because runtime evaluation transforms a single feature
    batch then queries the model many times.
    """

    def __init__(self, steps=None):
        self.steps = list(steps or [])
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names in {names}")

    def fit(self, X, y=None) -> "Pipeline":
        data = X
        for _, stage in self.steps:
            stage.fit(data, y)
            data = stage.transform(data)
        self.fitted_ = True
        return self

    @classmethod
    def from_fitted(cls, steps) -> "Pipeline":
        """Assemble a pipeline from already-fitted stages.

        The installation workflow fits stages interleaved with row
        filtering (LOF removes training rows between transforms), so the
        inference pipeline is assembled afterwards from the fitted
        pieces rather than via :meth:`fit`.
        """
        pipe = cls(steps)
        pipe.fitted_ = True
        return pipe

    def transform(self, X):
        self._check_fitted("fitted_")
        data = check_array(X)
        for _, stage in self.steps:
            if _accepts_check_input(stage):
                data = stage.transform(data, check_input=False)
            else:
                data = stage.transform(data)
        return data

    def fit_transform(self, X, y=None):
        self.fit(X, y)
        return self.transform(X)

    def named_step(self, name: str):
        for step_name, stage in self.steps:
            if step_name == name:
                return stage
        raise KeyError(f"no step named {name!r}; have {[n for n, _ in self.steps]}")

    def __len__(self):
        return len(self.steps)
