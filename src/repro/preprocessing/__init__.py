"""Data preprocessing: the paper's Section II-C / IV-C pipeline.

Order of operations in ADSALA's installation workflow (Section IV-C):

1. :class:`YeoJohnsonTransformer` — per-feature power transform with the
   MLE-estimated lambda, mapping skewed feature distributions to
   near-Gaussian (paper Fig. 4).
2. :class:`StandardScaler` — zero-mean/unit-variance scaling, required
   before LOF "because LOF is a density-based method and thus requires a
   similar scale in all dimensions".
3. :class:`LocalOutlierFactor` — density-based local outlier removal
   (Breunig et al. 2000).
4. :func:`correlation_prune` — drop features whose pairwise correlation
   exceeds 80 %, removing the one with the larger total correlation.

:class:`Pipeline` chains fitted transformers so the runtime library can
replay exactly the transformation fitted at installation time.
"""

from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer, yeo_johnson, yeo_johnson_mle_lambda
from repro.preprocessing.lof import LocalOutlierFactor
from repro.preprocessing.correlation import CorrelationPruner, correlation_prune
from repro.preprocessing.pipeline import Pipeline

__all__ = [
    "StandardScaler",
    "YeoJohnsonTransformer",
    "yeo_johnson",
    "yeo_johnson_mle_lambda",
    "LocalOutlierFactor",
    "CorrelationPruner",
    "correlation_prune",
    "Pipeline",
]
