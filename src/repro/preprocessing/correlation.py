"""Correlation-based feature pruning.

Paper Section IV-C: "We then remove features with correlation
coefficients with other features larger than a threshold of 80%.  For
each correlation feature pair, we remove the feature with the larger
total correlation with the other features."
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array


def correlation_prune(X: np.ndarray, threshold: float = 0.8):
    """Indices of features to keep after greedy correlation pruning.

    Pairs exceeding ``threshold`` absolute Pearson correlation are
    processed from the most correlated down; within a pair, the feature
    with the larger total absolute correlation against all remaining
    features is dropped.

    Returns
    -------
    keep : ndarray of kept feature indices (sorted)
    dropped : list of (dropped_index, partner_index, correlation)
    """
    X = check_array(X)
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    d = X.shape[1]
    if d == 1:
        return np.array([0]), []

    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(X, rowvar=False)
    corr = np.nan_to_num(corr, nan=0.0)  # constant features correlate with nothing
    abs_corr = np.abs(corr)
    np.fill_diagonal(abs_corr, 0.0)

    alive = np.ones(d, dtype=bool)
    dropped = []
    while True:
        masked = abs_corr.copy()
        masked[~alive, :] = 0.0
        masked[:, ~alive] = 0.0
        i, j = np.unravel_index(np.argmax(masked), masked.shape)
        if masked[i, j] <= threshold:
            break
        total_i = masked[i, alive].sum()
        total_j = masked[j, alive].sum()
        victim, partner = (i, j) if total_i >= total_j else (j, i)
        alive[victim] = False
        dropped.append((int(victim), int(partner), float(corr[i, j])))
    return np.nonzero(alive)[0], dropped


class CorrelationPruner(BaseEstimator):
    """Fit/transform wrapper around :func:`correlation_prune`."""

    def __init__(self, threshold: float = 0.8):
        self.threshold = threshold

    def fit(self, X, y=None) -> "CorrelationPruner":
        X = check_array(X)
        self.keep_, self.dropped_ = correlation_prune(X, self.threshold)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X, check_input: bool = True) -> np.ndarray:
        self._check_fitted("keep_")
        if check_input:
            X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        return X[:, self.keep_]

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)
