"""Feature standardisation (zero mean, unit variance)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array


class StandardScaler(BaseEstimator):
    """Per-feature standardisation fitted on training data.

    Constant features get unit scale so they pass through unchanged
    (minus centring) instead of dividing by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X, check_input: bool = True) -> np.ndarray:
        self._check_fitted("mean_")
        if check_input:
            X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_
