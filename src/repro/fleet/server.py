"""The fleet front: admission, routing and rollout over worker processes.

:class:`FleetServer` owns N spawned worker processes (each a full
:class:`~repro.serve.server.GemmServer` over its own
:class:`~repro.engine.service.GemmService`, rebuilt from a
:class:`~repro.fleet.spec.WorkerSpec`) and presents the *same* awaitable
surface as a single server: ``async with``, ``submit``, ``submit_many``,
``reload``, ``stats`` — so :func:`~repro.serve.trace.replay_trace`
drives a fleet unchanged.

Request flow: a burst routes over the alive workers (least-loaded by
live in-flight counts, or consistent-hash for cache affinity), is
admitted all-or-nothing against ``max_pending``, then crosses each
worker's pipe as ``max_batch``-sized
:class:`~repro.fleet.transport.SlabFrame` messages — one reply future
per slab, not per request.  Pipe sends run in the default executor
under a per-worker lock (ordered, never blocking the loop); one reader
task per worker resolves futures as frames come back.

A worker death fans :class:`WorkerFailed` out to exactly the requests
that were on that worker, removes it from the routing ring, and leaves
the rest of the fleet serving; :meth:`FleetServer.respawn` rebuilds it
from its spec, which rejoins with the registry's *current* ``latest``.

Rollout is registry-driven: workers built with ``watch_interval_s``
hot-reload on publish by themselves, and :meth:`FleetServer.rollout`
is the managed path — reload one canary, divert a deterministic
traffic fraction to it, probe canary against a reference worker, then
promote the version fleet-wide or roll the canary back.  Either way
the swap rides each worker's FIFO
:class:`~repro.serve.request.ReloadCommand` queue: in-flight requests
finish on the old bundle and nothing is dropped.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp

from repro.fleet.spec import WorkerSpec
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.transport import (ErrorFrame, ReadyFrame, ReloadedFrame,
                                   ReloadFrame, ResultFrame, SlabFrame,
                                   StatsFrame, StatsReply, StopFrame,
                                   StoppedFrame, chunk_slots,
                                   chunk_slots_by_cost)
from repro.fleet.worker import worker_main
from repro.serve.cost import CostModel
from repro.serve.request import ServerClosed, ServerOverloaded
from repro.serve.router import (CanaryRouter, ConsistentHashRouter,
                                CostAwareLeastLoadedRouter,
                                LeastLoadedRouter)


class WorkerFailed(RuntimeError):
    """A fleet worker process died (or was dead when needed)."""


class _Worker:
    """Front-side handle for one worker process."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.process = None
        self.conn = None
        self.pid = None
        self.alive = False
        self.dead_handled = False   # _on_death ran for this incarnation
        self.pending: dict = {}     # msg_id -> (future, n_slots, t0, cost)
        self.in_flight = 0
        self.cost_in_flight = 0.0   # outstanding predicted FLOPs
        self.versions: dict = {}
        self.reloads = 0
        self.final_stats = None
        self.reader = None
        self.lock = None            # asyncio.Lock, created at spawn time

    def reset(self) -> None:
        """Forget the previous incarnation before a (re)spawn."""
        self.process = None
        self.conn = None
        self.pid = None
        self.alive = False
        self.dead_handled = False
        self.pending = {}
        self.in_flight = 0
        self.cost_in_flight = 0.0
        self.versions = {}
        self.final_stats = None
        self.reader = None


class FleetServer:
    """Front router over a pool of spawned ``GemmServer`` processes.

    Parameters
    ----------
    specs:
        One :class:`~repro.fleet.spec.WorkerSpec` per worker; names
        must be unique.  Each is validated (picklable, resolvable
        backend factory) before anything spawns.
    router:
        ``"least_loaded"`` (default; live in-flight counts),
        ``"cost_least_loaded"`` (live outstanding predicted FLOPs —
        a worker holding two huge requests finally looks heavier than
        one holding three tiny ones),
        ``"hash"``/``"consistent_hash"`` (stable shape→worker affinity
        on a hash ring), or any
        :class:`~repro.serve.router.ShardRouter` instance whose shard
        names are worker names.
    cost_model:
        The :class:`~repro.serve.cost.CostModel` pricing bursts for
        slab chopping, the outstanding-cost gauges and the cost-aware
        router (default: raw per-spec FLOPs).
    max_pending:
        Fleet-wide admission cap; defaults to twice the summed worker
        queue capacity (the front should reject before workers do).
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` for fleet
        telemetry (defaults to the process-wide registry).
    """

    def __init__(self, specs, router="least_loaded", max_pending: int = None,
                 registry=None, spawn_timeout_s: float = 60.0,
                 stats_timeout_s: float = 10.0, cost_model=None):
        specs = [s.validate() for s in specs]
        if not specs:
            raise ValueError("a fleet needs at least one worker spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate worker names in {names}")
        self._workers = {s.name: _Worker(s) for s in specs}
        self.cost_model = cost_model if cost_model is not None \
            else CostModel()
        self.router = self._build_router(router)
        self.max_pending = (int(max_pending) if max_pending is not None
                            else 2 * sum(s.max_queue for s in specs))
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.telemetry = FleetTelemetry(names, registry=registry)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.stats_timeout_s = float(stats_timeout_s)
        self._pending = 0
        self._msg_id = 0
        self._started = False
        self._closing = False
        self._closed = False

    @classmethod
    def from_registry(cls, registry_root, machine: str, workers: int = 2,
                      routines=(), router="least_loaded",
                      version="latest", backend: str = None,
                      backend_args=(), watch_interval_s: float = None,
                      registry=None, name_prefix: str = "worker",
                      **worker_kwargs) -> "FleetServer":
        """A homogeneous fleet: ``workers`` identical specs over one cell set.

        ``worker_kwargs`` forward to every
        :class:`~repro.fleet.spec.WorkerSpec` (``max_batch``,
        ``max_queue``, ``seed``, ...).
        """
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        specs = [WorkerSpec(name=f"{name_prefix}-{i}",
                            registry_root=str(registry_root),
                            machine=str(machine), routines=tuple(routines),
                            version=version, backend=backend,
                            backend_args=tuple(backend_args),
                            watch_interval_s=watch_interval_s,
                            **worker_kwargs)
                 for i in range(int(workers))]
        return cls(specs, router=router, registry=registry)

    # -- plumbing ---------------------------------------------------------
    def _build_router(self, choice):
        names = list(self._workers)
        if choice in ("least_loaded", "least-loaded"):
            return LeastLoadedRouter(names, loads=self._live_loads)
        if choice in ("cost_least_loaded", "cost-least-loaded",
                      "cost_aware"):
            return CostAwareLeastLoadedRouter(names, loads=self._live_costs,
                                              cost_model=self.cost_model)
        if choice in ("hash", "consistent_hash", "consistent-hash"):
            return ConsistentHashRouter(names)
        if isinstance(choice, str):
            raise ValueError(f"unknown router {choice!r} (expected "
                             f"'least_loaded', 'cost_least_loaded', 'hash', "
                             f"or a router instance)")
        return choice

    def _live_loads(self) -> dict:
        return {name: worker.in_flight
                for name, worker in self._workers.items() if worker.alive}

    def _live_costs(self) -> dict:
        return {name: worker.cost_in_flight
                for name, worker in self._workers.items() if worker.alive}

    def _next_id(self) -> int:
        self._msg_id += 1
        return self._msg_id

    def _check_open(self) -> None:
        if not self._started:
            raise ServerClosed(
                "fleet not started (use 'async with' or start())")
        if self._closing:
            raise ServerClosed("fleet is shutting down")

    def _alive(self) -> list:
        return [w for w in self._workers.values() if w.alive]

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        try:
            await asyncio.gather(*(self._spawn(worker)
                                   for worker in self._workers.values()))
        except BaseException:
            await self.close()
            raise

    async def _spawn(self, worker: _Worker) -> None:
        """Spawn one worker and wait for its :class:`ReadyFrame`."""
        loop = asyncio.get_running_loop()
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=worker_main,
                              args=(worker.spec, child_conn),
                              name=f"fleet-{worker.spec.name}", daemon=True)
        process.start()
        child_conn.close()  # child end lives in the child now
        try:
            ready = await asyncio.wait_for(
                loop.run_in_executor(None, parent_conn.recv),
                timeout=self.spawn_timeout_s)
        except (EOFError, OSError, asyncio.TimeoutError) as exc:
            process.terminate()
            parent_conn.close()
            raise WorkerFailed(
                f"worker {worker.spec.name!r} died during startup "
                f"(exitcode {process.exitcode}): {exc!r}") from exc
        if not isinstance(ready, ReadyFrame):
            process.terminate()
            parent_conn.close()
            raise WorkerFailed(f"worker {worker.spec.name!r} sent "
                               f"{type(ready).__name__} instead of ready")
        worker.reset()
        worker.process, worker.conn = process, parent_conn
        worker.pid = ready.pid
        worker.versions = dict(ready.versions)
        worker.alive = True
        worker.lock = asyncio.Lock()
        worker.reader = asyncio.ensure_future(self._read_loop(worker))

    async def _read_loop(self, worker: _Worker) -> None:
        loop = asyncio.get_running_loop()
        conn = worker.conn
        try:
            while True:
                try:
                    frame = await loop.run_in_executor(None, conn.recv)
                except (EOFError, OSError):
                    break
                self._dispatch(worker, frame)
        finally:
            self._on_death(worker)

    def _dispatch(self, worker: _Worker, frame) -> None:
        loop = asyncio.get_running_loop()
        if isinstance(frame, ResultFrame):
            entry = worker.pending.pop(frame.msg_id, None)
            if entry is None:
                return
            future, n_slots, t0, cost = entry
            self._settle(worker, n_slots, cost)
            self.telemetry.record_completed(worker.spec.name, n_slots,
                                            loop.time() - t0)
            if not future.done():
                future.set_result(frame.records)
        elif isinstance(frame, ErrorFrame):
            if frame.msg_id is None:
                self.telemetry.registry.event(
                    "fleet_worker_error", worker=worker.spec.name,
                    kind=frame.kind, message=frame.message)
                return
            entry = worker.pending.pop(frame.msg_id, None)
            if entry is None:
                return
            future, n_slots, _, cost = entry
            self._settle(worker, n_slots, cost)
            if n_slots:
                self.telemetry.record_failure(worker.spec.name, n_slots)
            if not future.done():
                future.set_exception(self._rebuild_error(worker, frame))
        elif isinstance(frame, ReloadedFrame):
            worker.versions[frame.routine] = frame.version
            worker.reloads += 1
            self.telemetry.record_reload(worker.spec.name)
            if frame.msg_id is not None:
                entry = worker.pending.pop(frame.msg_id, None)
                if entry is not None and not entry[0].done():
                    entry[0].set_result(frame)
        elif isinstance(frame, StatsReply):
            entry = worker.pending.pop(frame.msg_id, None)
            if entry is not None and not entry[0].done():
                entry[0].set_result(frame.stats)
        elif isinstance(frame, StoppedFrame):
            worker.final_stats = frame.stats
            worker.versions = dict(frame.stats.get("versions",
                                                   worker.versions))

    @staticmethod
    def _rebuild_error(worker: _Worker, frame: ErrorFrame):
        """Give worker-side rejections back their admission type."""
        if frame.kind == "ServerOverloaded":
            return ServerOverloaded(frame.message)
        return WorkerFailed(f"worker {worker.spec.name!r} {frame.kind}: "
                            f"{frame.message}")

    def _on_death(self, worker: _Worker) -> None:
        """Bookkeeping when a worker's pipe goes quiet (crash or stop)."""
        if worker.dead_handled:
            return
        worker.dead_handled = True
        crashed = worker.final_stats is None and not self._closing
        worker.alive = False
        pending, worker.pending = worker.pending, {}
        for future, n_slots, _, cost in pending.values():
            self._settle(worker, n_slots, cost)
            if n_slots:
                self.telemetry.record_failure(worker.spec.name, n_slots)
            if not future.done():
                future.set_exception(WorkerFailed(
                    f"worker {worker.spec.name!r} died with the request "
                    f"in flight"))
        remove = getattr(self.router, "remove", None)
        if remove is not None:
            try:
                remove(worker.spec.name)
            except ValueError:
                pass  # last shard on the ring; routing will fail loudly
        if crashed:
            self.telemetry.registry.event("fleet_worker_death",
                                          worker=worker.spec.name,
                                          pid=worker.pid,
                                          n_pending=len(pending))

    async def respawn(self, name: str) -> int:
        """Rebuild a dead worker from its spec; returns the new pid.

        The respawned process loads from the registry afresh, so it
        rejoins with the *current* ``latest`` — even if the fleet
        rolled versions while it was down.
        """
        self._check_open()
        worker = self._workers[name]
        if worker.alive:
            raise WorkerFailed(f"worker {name!r} is still alive")
        await self._spawn(worker)
        add = getattr(self.router, "add", None)
        if add is not None:
            add(name)
        self.telemetry.record_respawn(name)
        return worker.pid

    async def close(self) -> None:
        if not self._started or self._closed:
            self._closed = True
            return
        self._closing = True
        loop = asyncio.get_running_loop()
        for worker in self._alive():
            try:
                await self._send(worker, StopFrame())
            except WorkerFailed:
                pass
        readers = [w.reader for w in self._workers.values()
                   if w.reader is not None]
        if readers:
            done, pending = await asyncio.wait(
                readers, timeout=self.spawn_timeout_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for worker in self._workers.values():
            process = worker.process
            if process is not None:
                await loop.run_in_executor(None, process.join, 5.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    await loop.run_in_executor(None, process.join, 5.0)
            if worker.conn is not None:
                worker.conn.close()
            worker.alive = False
        self._closed = True

    async def __aenter__(self) -> "FleetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- transport --------------------------------------------------------
    async def _send(self, worker: _Worker, frame) -> None:
        """Ordered, loop-friendly pipe send (executor under a lock)."""
        loop = asyncio.get_running_loop()
        async with worker.lock:
            try:
                await loop.run_in_executor(None, worker.conn.send, frame)
            except (OSError, BrokenPipeError, ValueError) as exc:
                self._on_death(worker)
                raise WorkerFailed(
                    f"worker {worker.spec.name!r} pipe is gone: "
                    f"{exc!r}") from exc

    def _register(self, worker: _Worker, n_slots: int, cost: float = 0.0):
        """Allocate (msg_id, future); account slots *and* predicted cost."""
        loop = asyncio.get_running_loop()
        msg_id = self._next_id()
        future = loop.create_future()
        worker.pending[msg_id] = (future, n_slots, loop.time(), cost)
        worker.in_flight += n_slots
        worker.cost_in_flight += cost
        self._pending += n_slots
        if cost:
            self.telemetry.record_outstanding(worker.spec.name,
                                              worker.cost_in_flight)
        return msg_id, future

    def _settle(self, worker: _Worker, n_slots: int, cost: float) -> None:
        """Reverse one pending entry's in-flight accounting."""
        worker.in_flight -= n_slots
        self._pending -= n_slots
        if cost:
            worker.cost_in_flight = max(0.0, worker.cost_in_flight - cost)
            self.telemetry.record_outstanding(worker.spec.name,
                                              worker.cost_in_flight)

    # -- serving ----------------------------------------------------------
    async def submit(self, spec, client: str = "default",
                     trace_id: str = None, worker: str = None):
        """Serve one request; returns its ``GemmCallRecord``.

        ``worker`` pins the request to a named worker (rollout probes);
        otherwise the router decides.  ``trace_id`` is accepted for
        :func:`~repro.serve.trace.replay_trace` compatibility (the
        worker's own server assigns trace ids when tracing is on).
        """
        records = await self.submit_many([spec], client=client,
                                         worker=worker)
        return records[0]

    async def submit_many(self, specs, client: str = "default",
                          worker: str = None) -> list:
        """Serve a burst; returns records aligned with ``specs``.

        Routing is one ``route_batch`` call over the alive workers;
        admission is all-or-nothing against ``max_pending``; each
        worker's share crosses the pipe as ``max_batch``-sized slab
        frames.  If any slab fails (worker death, worker-side error)
        the first failure is raised after every slab has settled.
        """
        specs = list(specs)
        if not specs:
            return []
        self._check_open()
        n = len(specs)
        if worker is not None:
            names = [worker] * n
        else:
            names = list(self.router.route_batch(specs, client)
                         if hasattr(self.router, "route_batch")
                         else (self.router.route(s, client) for s in specs))
        for name in set(names):
            target = self._workers.get(name)
            if target is None:
                raise KeyError(f"unknown worker {name!r} "
                               f"(have {sorted(self._workers)})")
            if not target.alive:
                raise WorkerFailed(f"worker {name!r} is not alive")
        if self._pending + n > self.max_pending:
            self.telemetry.record_rejection(n)
            raise ServerOverloaded(
                f"fleet rejected burst of {n}: {self._pending} in flight "
                f"of max {self.max_pending}")
        by_worker: dict = {}
        for i, name in enumerate(names):
            by_worker.setdefault(name, []).append(i)
        # Priced once per burst: slab chopping honours per-worker cost
        # budgets and every dispatch feeds the worker's outstanding-cost
        # gauge (what the cost-aware router balances on).
        costs = self.cost_model.cost_of(specs)
        entries = []  # (slot indices, future)
        sends = []
        for name, slots in by_worker.items():
            target = self._workers[name]
            budget = target.spec.max_batch_cost
            if budget is not None:
                chunks = chunk_slots_by_cost(
                    slots, [costs[i] for i in slots],
                    target.spec.max_batch, budget)
            else:
                chunks = chunk_slots(slots, target.spec.max_batch)
            for chunk in chunks:
                msg_id, future = self._register(
                    target, len(chunk), cost=sum(costs[i] for i in chunk))
                self.telemetry.record_dispatch(name, len(chunk))
                entries.append((chunk, future))
                sends.append(self._send(target, SlabFrame(
                    msg_id, tuple(specs[i] for i in chunk), client=client)))
        await asyncio.gather(*sends, return_exceptions=True)
        # A failed send already fanned WorkerFailed out via _on_death,
        # so every future settles; await them all, then raise the first
        # error so sibling slabs on healthy workers still complete.
        results = await asyncio.gather(*(future for _, future in entries),
                                       return_exceptions=True)
        out = [None] * n
        error = None
        for (chunk, _), result in zip(entries, results):
            if isinstance(result, BaseException):
                if error is None:
                    error = result
                continue
            for slot, record in zip(chunk, result):
                out[slot] = record
        if error is not None:
            raise error
        return out

    # -- control plane ----------------------------------------------------
    async def reload(self, routine: str, version="latest",
                     workers=None) -> dict:
        """Hot-swap one routine's bundle on ``workers`` (default: all alive).

        Each worker loads the version from *its own* registry handle and
        applies it through its server's FIFO reload path — in-flight
        requests finish on the old bundle.  Returns
        ``{worker: {"routine", "version", "generation"}}``.
        """
        self._check_open()
        targets = [w for w in self._alive()
                   if workers is None or w.spec.name in set(workers)]
        if not targets:
            raise WorkerFailed("no alive workers to reload")
        acks = {}
        for target in targets:
            msg_id, future = self._register(target, 0)
            await self._send(target, ReloadFrame(msg_id, str(routine),
                                                 version))
            acks[target.spec.name] = future
        out = {}
        for name, future in acks.items():
            frame = await asyncio.wait_for(future, self.spawn_timeout_s)
            out[name] = {"routine": frame.routine, "version": frame.version,
                         "generation": frame.generation}
        return out

    async def rollout(self, routine: str, version="latest",
                      canary: str = None, fraction: float = 0.25,
                      probes=(), max_divergence: float = 0.0,
                      client: str = "rollout-probe") -> dict:
        """Canary-then-promote a registry version across the fleet.

        One worker (``canary``, default the first alive) reloads to
        ``version``; a :class:`~repro.serve.router.CanaryRouter` then
        diverts a deterministic ``fraction`` of live traffic to it while
        every ``probes`` spec is served by both the canary and a
        reference worker.  If the fraction of probes whose thread
        selection diverges exceeds ``max_divergence`` the canary rolls
        back to its prior version; otherwise the version is promoted to
        the rest of the fleet.  Returns the decision report.
        """
        self._check_open()
        alive = [w.spec.name for w in self._alive()]
        if len(alive) < 2:
            raise WorkerFailed(f"rollout needs >= 2 alive workers, "
                               f"have {len(alive)}")
        canary = str(canary) if canary is not None else alive[0]
        if canary not in alive:
            raise KeyError(f"canary {canary!r} is not an alive worker "
                           f"(have {alive})")
        reference = next(name for name in alive if name != canary)
        old_version = self._workers[canary].versions.get(str(routine))
        ack = await self.reload(routine, version=version, workers=[canary])
        report = {"routine": str(routine), "canary": canary,
                  "reference": reference, "fraction": float(fraction),
                  "old_version": old_version,
                  "version": ack[canary]["version"],
                  "n_probes": len(list(probes))}
        base_router, probes = self.router, list(probes)
        self.router = CanaryRouter(base_router, canary, fraction=fraction)
        try:
            divergence = None
            if probes:
                canary_records = await self.submit_many(
                    probes, client=client, worker=canary)
                reference_records = await self.submit_many(
                    probes, client=client, worker=reference)
                diverged = sum(
                    1 for a, b in zip(canary_records, reference_records)
                    if a.n_threads != b.n_threads)
                divergence = diverged / len(probes)
            report["divergence"] = divergence
        finally:
            self.router = base_router
        promote = divergence is None or divergence <= float(max_divergence)
        if promote:
            rest = [name for name in alive if name != canary]
            if rest:
                await self.reload(routine, version=version, workers=rest)
            report["action"] = "promoted"
        else:
            if old_version is not None:
                await self.reload(routine, version=old_version,
                                  workers=[canary])
            report["action"] = "rolled_back"
        self.telemetry.registry.event(
            "fleet_rollout", routine=report["routine"], canary=canary,
            version=report["version"], action=report["action"],
            divergence=report["divergence"])
        return report

    # -- stats ------------------------------------------------------------
    async def worker_stats(self) -> dict:
        """Live per-worker serving statistics (asks each worker)."""
        self._check_open()
        futures = {}
        for target in self._alive():
            msg_id, future = self._register(target, 0)
            await self._send(target, StatsFrame(msg_id))
            futures[target.spec.name] = future
        return {name: await asyncio.wait_for(future, self.stats_timeout_s)
                for name, future in futures.items()}

    def stats(self) -> dict:
        """Front-side fleet statistics (synchronous, no worker round trip).

        Includes the telemetry totals, per-worker state, and — when
        workers have stopped and reported final statistics — a roll-up
        of their server counters under the same top-level keys a single
        :meth:`~repro.serve.server.GemmServer.stats` uses
        (``batches``, ``mean_batch_size``, ``model_passes``), so
        :class:`~repro.serve.trace.ReplayOutcome` reports a fleet
        replay without special-casing.
        """
        fleet = self.telemetry.stats()
        counters = fleet.pop("workers", {})
        workers = {}
        for name, worker in self._workers.items():
            entry = {"alive": worker.alive, "pid": worker.pid,
                     "in_flight": worker.in_flight,
                     "cost_in_flight": worker.cost_in_flight,
                     "versions": dict(worker.versions),
                     "reloads": worker.reloads,
                     "counters": counters.get(name, {})}
            if worker.final_stats is not None:
                entry["final"] = worker.final_stats
            workers[name] = entry
        out = {
            **fleet,
            "pending": self._pending,
            "max_pending": self.max_pending,
            "n_workers": len(self._workers),
            "n_alive": len(self._alive()),
            "router": type(self.router).__name__,
            "workers": workers,
        }
        finals = [w.final_stats["server"] for w in self._workers.values()
                  if w.final_stats and "server" in w.final_stats]
        if finals:
            batches = sum(f.get("batches", 0) for f in finals)
            slots = sum(f.get("batches", 0) * f.get("mean_batch_size", 0.0)
                        for f in finals)
            out["served"] = sum(f.get("served", 0) for f in finals)
            out["batches"] = batches
            out["mean_batch_size"] = (round(slots / batches, 3)
                                      if batches else 0.0)
            out["model_passes"] = sum(f.get("model_passes", 0)
                                      for f in finals)
            out["evaluations"] = sum(f.get("evaluations", 0)
                                     for f in finals)
        merged = self.telemetry.latency_ms()
        if merged.count:
            summary = merged.summary()
            out["latency_ms"] = {
                "count": summary["count"],
                "mean_ms": round(summary["mean"], 3),
                "p50_ms": round(summary["p50"], 3),
                "p95_ms": round(summary["p95"], 3),
                "p99_ms": round(summary["p99"], 3),
            }
        return out
