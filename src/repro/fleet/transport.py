"""Wire format between the fleet front and its worker processes.

Everything crossing a worker pipe is one of the small frame dataclasses
below, pickled by ``multiprocessing.Connection`` itself.  Requests are
**slab-framed**: the front chops each routed burst into
``max_batch``-sized :class:`SlabFrame` messages — the same chunk size
the worker's own :meth:`~repro.serve.server.GemmServer.submit_many`
turns into one :class:`~repro.serve.request.SlabRequest` queue entry —
so a 256-request burst crosses the pipe as ~16 messages with one
reply future each, not 256, and lands in the worker as ready-made
micro-batches.

Correlation is by ``msg_id``: the front allocates ids, workers echo
them on :class:`ResultFrame`/:class:`ErrorFrame`/ack frames.  Frames a
worker originates on its own (registry-watch reloads, the final
:class:`StoppedFrame`) carry no id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# -- front -> worker -----------------------------------------------------


@dataclass(frozen=True)
class SlabFrame:
    """One micro-batch worth of request specs."""

    msg_id: int
    specs: tuple
    client: str = "default"


@dataclass(frozen=True)
class ReloadFrame:
    """Hot-swap one routine's bundle from the worker's registry."""

    msg_id: int
    routine: str
    version: object = "latest"  # int or "latest"


@dataclass(frozen=True)
class StatsFrame:
    """Request the worker's full serving statistics."""

    msg_id: int


@dataclass(frozen=True)
class StopFrame:
    """Drain in-flight slabs, close the server, exit the process."""


# -- worker -> front -----------------------------------------------------


@dataclass(frozen=True)
class ReadyFrame:
    """First frame a worker sends: it is serving.

    ``versions`` records the registry versions actually loaded, as a
    sorted ``((routine, version), ...)`` tuple.
    """

    worker: str
    pid: int
    versions: Tuple = ()


@dataclass(frozen=True)
class ResultFrame:
    """Slot-aligned records answering one :class:`SlabFrame`."""

    msg_id: int
    records: tuple


@dataclass(frozen=True)
class ErrorFrame:
    """A slab or control frame failed inside the worker."""

    msg_id: int
    message: str
    kind: str = "RuntimeError"


@dataclass(frozen=True)
class ReloadedFrame:
    """A bundle swap completed.

    ``msg_id`` echoes the triggering :class:`ReloadFrame`, or is
    ``None`` when the worker's own registry watcher initiated the
    swap.
    """

    msg_id: Optional[int]
    routine: str
    version: int
    generation: int = 0


@dataclass(frozen=True)
class StatsReply:
    """Answer to a :class:`StatsFrame`."""

    msg_id: int
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class StoppedFrame:
    """Last frame before exit: the worker's final statistics."""

    stats: dict = field(default_factory=dict)


def chunk_slots(slots, max_batch: int):
    """Yield ``max_batch``-sized runs of ``slots`` (slab framing)."""
    if int(max_batch) < 1:
        raise ValueError("max_batch must be >= 1")
    for start in range(0, len(slots), max_batch):
        yield slots[start:start + max_batch]


def chunk_slots_by_cost(slots, costs, max_batch: int, max_cost: float):
    """Cost-budgeted slab framing: the predicted-FLOPs twin of
    :func:`chunk_slots`.

    Chunks close when either ``max_batch`` slots or ``max_cost`` summed
    predicted cost would be exceeded (a single over-budget slot still
    frames alone), so the slabs a worker receives are already the
    micro-batches its cost-budgeted scheduler would form.  With
    ``max_cost=None`` the boundaries are exactly :func:`chunk_slots`'s.
    """
    from repro.serve.cost import chunk_by_cost

    yield from chunk_by_cost(slots, costs, max_batch, max_cost)
