"""Multi-process serving fleet: worker pool behind a front router.

One :class:`FleetServer` process owns admission and routing; each
worker process (built from a spawn-safe :class:`WorkerSpec`) runs a
full micro-batching :class:`~repro.serve.server.GemmServer` over its
own registry-loaded :class:`~repro.engine.service.GemmService`.
Requests cross worker pipes as slab-framed messages; the registry's
``latest`` refs are the rollout control plane (watchers hot-reload on
publish; :meth:`FleetServer.rollout` is the managed
canary-then-promote path).
"""

from repro.fleet.server import FleetServer, WorkerFailed
from repro.fleet.spec import WorkerSpec, resolve_factory
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.transport import (ErrorFrame, ReadyFrame, ReloadedFrame,
                                   ReloadFrame, ResultFrame, SlabFrame,
                                   StatsFrame, StatsReply, StopFrame,
                                   StoppedFrame, chunk_slots,
                                   chunk_slots_by_cost)
from repro.fleet.worker import worker_main

__all__ = [
    "FleetServer", "WorkerFailed", "WorkerSpec", "FleetTelemetry",
    "resolve_factory", "worker_main", "chunk_slots", "chunk_slots_by_cost",
    "SlabFrame", "ReloadFrame", "StatsFrame", "StopFrame",
    "ReadyFrame", "ResultFrame", "ErrorFrame", "ReloadedFrame",
    "StatsReply", "StoppedFrame",
]
