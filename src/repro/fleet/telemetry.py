"""Front-side fleet telemetry: per-worker labelled counters and latency.

Every dispatch, completion, failure, reload and respawn is counted
twice on purpose: in plain per-worker dicts (the exact, per-fleet
numbers :meth:`FleetTelemetry.stats` reports) and in the
:class:`~repro.obs.metrics.MetricsRegistry` as instruments labelled
``component="fleet", instance=<fleet-N>, worker=<name>`` — so
exporters see per-worker series and
:meth:`~repro.obs.metrics.MetricsRegistry.total` /
:meth:`~repro.obs.metrics.MetricsRegistry.by_label` roll them up
fleet-wide without the fleet object in hand.
"""

from __future__ import annotations

from repro.obs.metrics import (MetricsRegistry, Reservoir, default_registry,
                               next_instance_id)


class FleetTelemetry:
    """Counters and latency reservoirs for one fleet front."""

    COUNTERS = ("dispatched", "completed", "failed", "frames",
                "reloads", "respawns")

    def __init__(self, workers, registry: MetricsRegistry = None):
        self.registry = registry if registry is not None \
            else default_registry()
        self.instance = next_instance_id("fleet")
        self._counts: dict = {}
        self._latency: dict = {}
        self._outstanding: dict = {}   # worker -> predicted FLOPs in flight
        self._rejected = 0
        for worker in workers:
            self._ensure_worker(worker)

    def _ensure_worker(self, worker: str) -> None:
        if worker in self._counts:
            return
        self._counts[worker] = {name: 0 for name in self.COUNTERS}
        self._latency[worker] = Reservoir()

    def _inc(self, worker: str, name: str, n: int = 1) -> None:
        self._ensure_worker(worker)
        self._counts[worker][name] += n
        self.registry.counter(f"fleet_{name}", component="fleet",
                              instance=self.instance, worker=worker).inc(n)

    # -- recording -------------------------------------------------------
    def record_dispatch(self, worker: str, n: int, frames: int = 1) -> None:
        self._inc(worker, "dispatched", n)
        self._inc(worker, "frames", frames)

    def record_completed(self, worker: str, n: int,
                         latency_s: float) -> None:
        self._inc(worker, "completed", n)
        self._ensure_worker(worker)
        self._latency[worker].append(latency_s * 1e3)
        self.registry.histogram("fleet_latency_ms", component="fleet",
                                instance=self.instance,
                                worker=worker).observe(latency_s * 1e3)

    def record_failure(self, worker: str, n: int = 1) -> None:
        self._inc(worker, "failed", n)

    def record_rejection(self, n: int = 1) -> None:
        self.registry.counter("fleet_rejected", component="fleet",
                              instance=self.instance).inc(n)
        self._rejected += n

    def record_outstanding(self, worker: str, cost: float) -> None:
        """Set one worker's outstanding predicted-cost gauge (FLOPs).

        Written by the front on every dispatch and completion, so the
        cost-aware router's balance decisions are observable live: the
        dict value feeds :meth:`stats`, the registry gauge feeds the
        Prometheus dump as ``fleet_outstanding_cost_flops``.
        """
        self._ensure_worker(worker)
        self._outstanding[worker] = float(cost)
        self.registry.gauge("fleet_outstanding_cost_flops",
                            component="fleet", instance=self.instance,
                            worker=worker).set(cost)

    def record_reload(self, worker: str) -> None:
        self._inc(worker, "reloads")

    def record_respawn(self, worker: str) -> None:
        self._inc(worker, "respawns")

    # -- reading ---------------------------------------------------------
    def latency_ms(self, worker: str = None) -> Reservoir:
        """One worker's latency reservoir, or a merged fleet view."""
        if worker is not None:
            self._ensure_worker(worker)
            return self._latency[worker]
        merged = Reservoir()
        for reservoir in self._latency.values():
            merged.extend(reservoir)
        return merged

    def worker_counts(self, worker: str) -> dict:
        self._ensure_worker(worker)
        return dict(self._counts[worker])

    def stats(self) -> dict:
        workers = {}
        for name in sorted(self._counts):
            entry = dict(self._counts[name])
            reservoir = self._latency[name]
            if reservoir.count:
                entry["latency_ms"] = reservoir.summary()
            if name in self._outstanding:
                entry["outstanding_cost_flops"] = self._outstanding[name]
            workers[name] = entry
        totals = {name: sum(c[name] for c in self._counts.values())
                  for name in self.COUNTERS}
        return {**totals, "rejected": self._rejected, "workers": workers}
