"""Spawn-safe worker construction: everything a worker is, as plain data.

A fleet worker process is built entirely from a :class:`WorkerSpec` —
a frozen dataclass of strings, numbers and tuples, picklable by
construction.  Nothing live crosses the spawn boundary: no service
objects (they hold fitted models and lambdas), no machine instances,
no backend closures.  The worker rebuilds all of them inside its own
interpreter from the spec:

* the execution machine from its preset *name* and seed,
* the :class:`~repro.engine.service.GemmService` from the registry
  *root path* (every requested routine's ``latest`` — or a pinned
  version — loaded, checksum-verified),
* an optional backend override from a dotted ``"module:attr"`` factory
  path plus plain keyword arguments.

Respawning a dead worker from the same spec therefore rejoins the
fleet with the registry's *current* state, not a snapshot pickled at
launch — the registry stays the single control plane.
"""

from __future__ import annotations

import importlib
import pickle
from dataclasses import asdict, dataclass


def resolve_factory(path: str):
    """Import ``"module:attr"`` (attr may dot into the module)."""
    module_name, sep, attr = str(path).partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"expected a 'module:attr' factory path, got {path!r}")
    obj = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class WorkerSpec:
    """Plain-data recipe for one fleet worker.

    Parameters
    ----------
    name:
        Worker identity — shard name in routing, label on telemetry.
    registry_root:
        Filesystem path of the :class:`~repro.train.registry.ModelRegistry`
        the worker loads from and watches.
    machine:
        Machine preset name (``"tiny"``, ``"gadi"``, ...) or ``"host"``;
        doubles as the registry cell's machine name.
    routines:
        Routine names to serve (empty: every routine published for the
        machine).
    version:
        Registry version to load (``"latest"`` or an int), applied to
        every routine.
    backend:
        Optional ``"module:attr"`` factory path; called with
        ``dict(backend_args)`` to build an execution-backend override.
    backend_args:
        Factory keyword arguments as a ``((key, value), ...)`` tuple of
        plain values.
    watch_interval_s:
        When set, the worker polls the registry's ``latest`` refs this
        often and hot-reloads changed cells on its own.
    max_batch_cost:
        Optional predicted-FLOPs budget per micro-batch inside the
        worker's server (cost-aware batch formation); the front chops
        slabs on the same budget so frames arrive pre-balanced.
    """

    name: str
    registry_root: str
    machine: str
    routines: tuple = ()
    version: object = "latest"
    seed: int = 0
    repeats: int = 1
    cache_size: int = 256
    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 256
    backend: str = None
    backend_args: tuple = ()
    watch_interval_s: float = None
    max_batch_cost: float = None

    def __post_init__(self):
        object.__setattr__(self, "routines",
                           tuple(str(r) for r in self.routines))
        object.__setattr__(self, "backend_args",
                           tuple((str(k), v) for k, v in self.backend_args))

    # -- plain-dict round trip ------------------------------------------
    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerSpec":
        data = dict(data)
        data["routines"] = tuple(data.get("routines") or ())
        data["backend_args"] = tuple(
            tuple(pair) for pair in data.get("backend_args") or ())
        return cls(**data)

    def validate(self) -> "WorkerSpec":
        """Fail fast on anything spawn would choke on.

        ``multiprocessing`` spawn pickles the spec into the child;
        surfacing an unpicklable field here — in the parent, with a
        clear message — beats a cryptic traceback out of the spawn
        machinery.
        """
        try:
            pickle.dumps(self)
        except Exception as exc:
            raise ValueError(
                f"WorkerSpec {self.name!r} is not picklable (spawn-safe "
                f"specs hold only plain data): {exc}") from exc
        if self.backend is not None:
            resolve_factory(self.backend)  # raises on a bad path
        return self

    # -- worker-side construction ---------------------------------------
    def build_machine(self):
        from repro.machine.host import HostMachine
        from repro.machine.presets import by_name
        from repro.machine.simulator import MachineSimulator

        if self.machine == "host":
            return HostMachine(seed=self.seed)
        return MachineSimulator(by_name(self.machine), seed=self.seed)

    def build_backend(self):
        if self.backend is None:
            return None
        return resolve_factory(self.backend)(**dict(self.backend_args))

    def build_service(self):
        """(service, loaded versions) — runs inside the worker process."""
        from repro.engine.service import GemmService
        from repro.train.registry import ModelRegistry

        registry = ModelRegistry(self.registry_root)
        service = GemmService.from_registry(
            registry, self.build_machine(), machine_name=self.machine,
            routines=list(self.routines) or None, repeats=self.repeats,
            cache_size=self.cache_size, version=self.version,
            backend=self.build_backend())
        versions = {routine: registry.resolve(routine, self.machine,
                                              self.version).version
                    for routine in service.routine_info}
        return service, versions

    def build_server(self, service):
        """The worker's :class:`~repro.serve.server.GemmServer`."""
        from repro.serve.server import GemmServer

        # fair_share off: the front owns admission fairness; inside a
        # worker every request is already one fleet client's.
        return GemmServer(service, max_batch=self.max_batch,
                          max_wait_ms=self.max_wait_ms,
                          max_batch_cost=self.max_batch_cost,
                          max_queue=self.max_queue, fair_share=None)
