"""Fleet worker process: a full ``GemmServer`` behind a duplex pipe.

``worker_main`` is the spawn target.  Inside its own interpreter the
worker rebuilds everything from its :class:`~repro.fleet.spec.WorkerSpec`
(service from the registry, micro-batching server over it), then loops
on the pipe: slab frames become ``submit_many`` bursts (each one
arriving pre-chunked to ``max_batch``, so it lands as exactly one
:class:`~repro.serve.request.SlabRequest` queue entry), reload frames
go through the server's FIFO :class:`~repro.serve.request.ReloadCommand`
path (zero-downtime by queue ordering), and stats frames snapshot the
server.  With ``watch_interval_s`` set, a background task polls the
registry's ``latest`` refs and hot-reloads changed cells on its own,
notifying the front with an unsolicited ``ReloadedFrame`` — publishing
to the registry *is* the rollout trigger.

Pipe reads run in the default executor (``Connection.recv`` blocks);
every ``send`` happens on the event-loop thread, so frames never
interleave.  On ``StopFrame`` (or pipe EOF) the worker drains its
in-flight slabs, closes the server — FIFO drain, nothing dropped —
and sends a final ``StoppedFrame`` carrying its lifetime statistics.
"""

from __future__ import annotations

import asyncio
import os

from repro.fleet.transport import (ErrorFrame, ReadyFrame, ReloadedFrame,
                                   ReloadFrame, ResultFrame, SlabFrame,
                                   StatsFrame, StatsReply, StopFrame,
                                   StoppedFrame)


def worker_main(spec, conn) -> None:
    """Process entry point: serve until stopped, then exit cleanly."""
    try:
        asyncio.run(_serve(spec, conn))
    except (EOFError, OSError, BrokenPipeError):
        pass  # front went away; nothing left to report to
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


async def _serve(spec, conn) -> None:
    from repro.train.registry import ModelRegistry

    service, versions = spec.build_service()
    server = spec.build_server(service)
    state = {"versions": dict(versions), "reloads": 0}
    registry = ModelRegistry(spec.registry_root)
    await server.start()
    conn.send(ReadyFrame(worker=spec.name, pid=os.getpid(),
                         versions=tuple(sorted(versions.items()))))
    loop = asyncio.get_running_loop()
    tasks: set = set()

    def _track(coro) -> None:
        task = asyncio.ensure_future(coro)
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    watcher_task = None
    if spec.watch_interval_s:
        watcher_task = asyncio.ensure_future(
            _watch_registry(spec, registry, server, state, conn))
    try:
        while True:
            try:
                frame = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                break
            if isinstance(frame, StopFrame):
                break
            if isinstance(frame, SlabFrame):
                _track(_serve_slab(server, conn, frame))
            elif isinstance(frame, ReloadFrame):
                _track(_apply_reload(spec, registry, server, state, conn,
                                     frame))
            elif isinstance(frame, StatsFrame):
                conn.send(StatsReply(frame.msg_id,
                                     _stats(spec, server, state)))
            else:
                conn.send(ErrorFrame(None,
                                     f"unknown frame {type(frame).__name__}",
                                     kind="TypeError"))
    finally:
        if watcher_task is not None:
            watcher_task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await server.close()
    try:
        conn.send(StoppedFrame(stats=_stats(spec, server, state)))
    except (OSError, BrokenPipeError):
        pass


async def _serve_slab(server, conn, frame) -> None:
    try:
        records = await server.submit_many(list(frame.specs),
                                           client=frame.client)
        conn.send(ResultFrame(frame.msg_id, tuple(records)))
    except BaseException as exc:  # noqa: BLE001 - report, don't die
        conn.send(ErrorFrame(frame.msg_id, str(exc),
                             kind=type(exc).__name__))


async def _apply_reload(spec, registry, server, state, conn, frame) -> None:
    try:
        bundle = registry.load(frame.routine, spec.machine,
                               version=frame.version)
        summary = await server.reload(bundle, routine=frame.routine)
        version = registry.resolve(frame.routine, spec.machine,
                                   frame.version).version
        state["versions"][frame.routine] = version
        state["reloads"] += 1
        generation = max(s.get("generation", 0) for s in summary.values())
        conn.send(ReloadedFrame(frame.msg_id, frame.routine, version,
                                generation=generation))
    except BaseException as exc:  # noqa: BLE001 - old bundle keeps serving
        conn.send(ErrorFrame(frame.msg_id, str(exc),
                             kind=type(exc).__name__))


async def _watch_registry(spec, registry, server, state, conn) -> None:
    """Poll ``latest`` refs; hot-reload and notify on every change."""
    watcher = registry.watch(
        [(routine, spec.machine) for routine in state["versions"]],
        versions={(routine, spec.machine): version
                  for routine, version in state["versions"].items()})
    loop = asyncio.get_running_loop()
    while True:
        await asyncio.sleep(spec.watch_interval_s)
        try:
            changed = await loop.run_in_executor(None, watcher.poll)
        except OSError:
            continue  # registry mid-write or briefly unavailable
        for record in changed:
            try:
                bundle = await loop.run_in_executor(
                    None, registry.load, record.routine, spec.machine,
                    record.version)
                summary = await server.reload(bundle, routine=record.routine)
            except asyncio.CancelledError:
                raise
            except Exception:
                continue  # keep serving the old bundle; retry next poll
            state["versions"][record.routine] = record.version
            state["reloads"] += 1
            generation = max(s.get("generation", 0)
                             for s in summary.values())
            conn.send(ReloadedFrame(None, record.routine, record.version,
                                    generation=generation))


def _stats(spec, server, state) -> dict:
    return {"worker": spec.name, "pid": os.getpid(),
            "versions": dict(state["versions"]),
            "reloads": state["reloads"],
            "server": server.stats()}
