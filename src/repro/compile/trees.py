"""Packed tree ensembles: every tree of a fitted ensemble in one array.

The object-path ensembles (:class:`~repro.ml.forest.RandomForestRegressor`
and friends) predict by looping over their trees in Python, paying the
numpy dispatch overhead of a full vectorised traversal *per tree* — for
the paper's deep forests that is thousands of tiny-array numpy calls per
prediction, which is exactly the evaluation tax that erases the forest's
speedup in Tables III/IV.

:class:`PackedTrees` concatenates the flat node arrays of all trees into
one address space (per-tree node offsets, children rebased) and traverses
**all trees for all samples simultaneously**: one cursor array of
``n_trees * n_samples`` positions advances level by level, so the number
of numpy calls is ``O(max_depth)`` instead of ``O(sum of depths)`` and
each call touches an array large enough to amortise dispatch overhead.

Leaves are packed as self-loops (``left == right == node``) with a dummy
feature index of 0, so a cursor that reaches a leaf early simply stays
there while deeper trees keep walking — no masking or gather of "active"
rows is needed.  The per-(tree, sample) comparisons are the same
``X[i, feature] <= threshold`` the object path executes against the same
float64 node arrays, so packed per-tree predictions are **bitwise
identical** to calling ``tree.predict`` per tree.
"""

from __future__ import annotations

import numpy as np


class PackedTrees:
    """Concatenated node arrays for an ensemble of regression trees.

    Built from fitted trees via :meth:`from_hist_trees` (the histogram
    ensembles) or :meth:`from_cart` (the exact-greedy decision tree);
    the constructor takes already-rebased arrays.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value",
                 "roots", "is_leaf", "max_depth", "n_trees", "n_nodes")

    def __init__(self, feature, threshold, left, right, value, roots,
                 max_depth: int):
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.value = np.asarray(value, dtype=np.float64)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.max_depth = int(max_depth)
        self.n_trees = self.roots.size
        self.n_nodes = self.feature.size
        # Leaves carry feature < 0 in the source trees; pack them as
        # self-loops with a harmless feature so traversal needs no mask.
        self.is_leaf = self.feature < 0
        idx = np.arange(self.n_nodes, dtype=np.int64)
        self.left = np.where(self.is_leaf, idx, self.left)
        self.right = np.where(self.is_leaf, idx, self.right)
        self.feature = np.where(self.is_leaf, 0, self.feature)

    @classmethod
    def from_hist_trees(cls, trees) -> "PackedTrees":
        """Pack a list of :class:`~repro.ml._histtree.HistTree`."""
        if not trees:
            raise ValueError("cannot pack an empty ensemble")
        sizes = np.asarray([t.n_nodes for t in trees], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return cls(
            feature=np.concatenate([t.feature for t in trees]),
            threshold=np.concatenate([t.threshold for t in trees]),
            left=np.concatenate([np.asarray(t.left, dtype=np.int64) + off
                                 for t, off in zip(trees, offsets)]),
            right=np.concatenate([np.asarray(t.right, dtype=np.int64) + off
                                  for t, off in zip(trees, offsets)]),
            value=np.concatenate([t.value for t in trees]),
            roots=offsets[:-1],
            max_depth=max(t.max_depth_ for t in trees),
        )

    @classmethod
    def from_cart(cls, root, max_depth: int) -> "PackedTrees":
        """Flatten a linked :class:`~repro.ml.tree._Node` tree.

        Iterative preorder walk (deep CART trees would blow the Python
        recursion limit) assigning array slots as nodes are visited.
        """
        feature, threshold, left, right, value = [], [], [], [], []
        # Stack of (node, parent_slot, is_left_child); root has no parent.
        stack = [(root, -1, False)]
        while stack:
            node, parent, is_left = stack.pop()
            slot = len(feature)
            if parent >= 0:
                (left if is_left else right)[parent] = slot
            feature.append(node.feature)
            threshold.append(node.threshold)
            value.append(node.value)
            left.append(-1)
            right.append(-1)
            if node.feature >= 0:
                stack.append((node.right, slot, False))
                stack.append((node.left, slot, True))
        return cls(feature=feature, threshold=threshold, left=left,
                   right=right, value=value, roots=[0], max_depth=max_depth)

    # ------------------------------------------------------------------
    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shaped ``(n_trees, n_samples)``.

        Row ``t`` is bitwise what ``trees[t].predict(X)`` returns: the
        traversal follows the same comparisons against the same node
        arrays; only the iteration order over (tree, sample) pairs
        changes, and no arithmetic depends on it.

        One cursor per (tree, sample) pair advances level by level;
        once most cursors sit on leaves the live ones are compacted so
        the deep tail of the deepest tree is walked by a small array,
        not the full ensemble front.
        """
        n = X.shape[0]
        result = np.repeat(self.roots, n)   # final node per (tree, sample)
        sample = np.tile(np.arange(n), self.n_trees)
        idx = np.arange(result.size)        # flat positions still walking
        cur, samp = result, sample
        for _ in range(self.max_depth):
            go_left = X[samp, self.feature[cur]] <= self.threshold[cur]
            cur = np.where(go_left, self.left[cur], self.right[cur])
            alive = ~self.is_leaf[cur]
            n_alive = int(alive.sum())
            if n_alive == 0:
                result[idx] = cur
                break
            if n_alive * 2 <= cur.size:
                result[idx] = cur
                keep = np.nonzero(alive)[0]
                idx, cur, samp = idx[keep], cur[keep], samp[keep]
        else:
            result[idx] = cur
        return self.value[result].reshape(self.n_trees, n)

    @property
    def nbytes(self) -> int:
        """Total bytes of the packed node arrays."""
        return sum(getattr(self, name).nbytes for name in
                   ("feature", "threshold", "left", "right", "value",
                    "roots", "is_leaf"))

    def describe(self) -> dict:
        return {"n_trees": self.n_trees, "n_nodes": self.n_nodes,
                "max_depth": self.max_depth, "nbytes": int(self.nbytes)}
