"""Fold a fitted preprocessing pipeline into one fused array pass.

The inference-side :class:`~repro.preprocessing.pipeline.Pipeline` walks
Python stage objects: Yeo-Johnson transforms every column, the scaler
standardises the full matrix, and only then does correlation pruning
throw columns away.  :func:`lower_pipeline` folds the fitted stages into
a :class:`FusedTransform` that

* pushes the column gather to the *front* — pruned columns are never
  Yeo-Johnson-transformed or standardised at all,
* applies the per-column scalar map (Yeo-Johnson lambda) and the affine
  stages in one pass per surviving column,
* validates the input once instead of once per stage.

All folded operations are column-independent and element-wise, and the
fused path executes the *same* floating-point operations per kept column
(it reuses :func:`~repro.preprocessing.yeo_johnson.yeo_johnson` and the
stages' own mean/scale arrays), so the output is **bitwise identical**
to the object pipeline's.  Affine stages are kept as a sequence rather
than composed algebraically — ``((x-m1)/s1 - m2)/s2`` is not bitwise
``(x-M)/S`` — so identity survives even pipelines with several scalers.

Pipelines containing stages this module does not understand are not
folded: :func:`lower_pipeline` returns ``None`` and the caller keeps the
object path.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_array
from repro.preprocessing.correlation import CorrelationPruner
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer, yeo_johnson


class FusedTransform:
    """Gather -> Yeo-Johnson -> affine chain, one pass per kept column.

    Parameters
    ----------
    keep:
        Output column ``j`` reads input column ``keep[j]``.
    lambdas:
        Per-output-column Yeo-Johnson lambda, or ``None`` when the
        pipeline had no power transform.
    affines:
        Sequence of ``(mean, scale)`` array pairs (aligned with
        ``keep``) applied in order as ``(col - mean[j]) / scale[j]``.
    n_features_in:
        Expected input width (the pipeline's first stage's).
    out_order:
        Memory layout of the output matrix: ``"F"`` when the folded
        pipeline ended in a column gather (numpy's fancy gather returns
        Fortran order), ``"C"`` otherwise.  Matching the object
        pipeline's layout matters because BLAS sums a matmul in a
        layout-dependent order — same values in a different layout can
        flip low bits of a downstream ``X @ coef``.
    """

    __slots__ = ("keep", "lambdas", "affines", "n_features_in", "out_order")

    def __init__(self, keep, lambdas, affines, n_features_in: int,
                 out_order: str = "C"):
        self.keep = np.asarray(keep, dtype=np.int64)
        self.lambdas = (None if lambdas is None
                        else np.asarray(lambdas, dtype=np.float64))
        self.affines = [(np.asarray(m, dtype=np.float64),
                         np.asarray(s, dtype=np.float64)) for m, s in affines]
        self.n_features_in = int(n_features_in)
        if out_order not in ("C", "F"):
            raise ValueError(f"out_order must be 'C' or 'F', got {out_order!r}")
        self.out_order = out_order

    @property
    def n_features_out(self) -> int:
        return self.keep.size

    def apply(self, X, check_input: bool = True) -> np.ndarray:
        """Transform a feature matrix (validated once at entry)."""
        if check_input:
            X = check_array(X)
        if X.shape[1] != self.n_features_in:
            raise ValueError(f"X has {X.shape[1]} features, "
                             f"expected {self.n_features_in}")
        out = np.empty((X.shape[0], self.keep.size), dtype=np.float64,
                       order=self.out_order)
        for j, src in enumerate(self.keep):
            col = X[:, src]
            if self.lambdas is not None:
                col = yeo_johnson(col, self.lambdas[j])
            for mean, scale in self.affines:
                col = (col - mean[j]) / scale[j]
            out[:, j] = col
        return out

    @property
    def nbytes(self) -> int:
        total = self.keep.nbytes
        if self.lambdas is not None:
            total += self.lambdas.nbytes
        return total + sum(m.nbytes + s.nbytes for m, s in self.affines)

    def describe(self) -> dict:
        return {"n_features_in": self.n_features_in,
                "n_features_out": int(self.n_features_out),
                "yeo_johnson": self.lambdas is not None,
                "n_affine_stages": len(self.affines),
                "nbytes": int(self.nbytes)}


def lower_pipeline(pipeline) -> FusedTransform:
    """Fold a fitted pipeline's stages, or ``None`` if any stage can't be.

    Understands any in-order mix of :class:`YeoJohnsonTransformer`
    (before any affine stage), :class:`StandardScaler` and
    :class:`CorrelationPruner`.  An empty pipeline folds to the identity
    gather.
    """
    if pipeline is None:
        return None
    n_features_in = None
    keep = None          # current output column -> original input column
    lambdas = None       # aligned with the *current* columns
    affines = []         # (mean, scale) pairs aligned with current columns

    for _, stage in pipeline.steps:
        if n_features_in is None:
            n_features_in = getattr(stage, "n_features_", None)
            if n_features_in is None:
                return None
            keep = np.arange(n_features_in, dtype=np.int64)
        if isinstance(stage, YeoJohnsonTransformer):
            # A power transform after an affine stage does not commute
            # with the folding below; our pipelines never do that, and
            # anything exotic keeps the object path.  Fitted arrays are
            # already aligned with the stage's input = current columns.
            if affines or lambdas is not None:
                return None
            lambdas = stage.lambdas_.copy()
            if stage.standardize:
                affines.append((stage.mean_, stage.std_))
        elif isinstance(stage, StandardScaler):
            affines.append((stage.mean_, stage.scale_))
        elif isinstance(stage, CorrelationPruner):
            sub = np.asarray(stage.keep_, dtype=np.int64)
            keep = keep[sub]
            if lambdas is not None:
                lambdas = lambdas[sub]
            affines = [(m[sub], s[sub]) for m, s in affines]
        else:
            return None

    if n_features_in is None:  # empty pipeline: identity over unknown width
        return None
    return FusedTransform(keep=keep, lambdas=lambdas, affines=affines,
                          n_features_in=n_features_in,
                          out_order=_object_path_order(pipeline))


def _object_path_order(pipeline) -> str:
    """Memory order of the object pipeline's output for C-ordered input.

    The predictor always feeds C-contiguous feature matrices (the
    builder column-stacks), then each stage maps layout deterministically:
    Yeo-Johnson column-stacks (always C), the scaler's element-wise
    affine preserves its input's order, and the pruner's fancy gather
    returns Fortran order whatever it is given.
    """
    order = "C"
    for _, stage in pipeline.steps:
        if isinstance(stage, YeoJohnsonTransformer):
            order = "C"
        elif isinstance(stage, CorrelationPruner):
            order = "F"
        # StandardScaler: order-preserving, no change.
    return order
