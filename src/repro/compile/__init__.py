"""Compiled inference plans: lower fitted artefacts to fused array kernels.

ADSALA only wins when prediction overhead is tiny next to the GEMM it
optimises; this package removes the interpreter tax from the hot path by
lowering a *fitted* preprocessing pipeline + model, once, into a flat
:class:`~repro.compile.plan.CompiledPlan`:

- :mod:`repro.compile.transform` — Yeo-Johnson + standardise +
  correlation gather folded into one fused pass (pruned columns are
  never computed);
- :mod:`repro.compile.trees` — tree ensembles packed into concatenated
  node arrays and traversed for all trees simultaneously;
- :mod:`repro.compile.lower` — per-model lowering (linear family to one
  dot product, ensembles to packed trees, kNN falls back);
- :mod:`repro.compile.plan` — the plan object the runtime predictor
  evaluates through, with object-path fallbacks per half;
- :mod:`repro.compile.table` — the plan pre-evaluated over the
  campaign's reachable shape lattice into a packed
  :class:`~repro.compile.table.DecisionTable`, serving lattice shapes
  with no model pass at all.

Every lowered operation is bitwise identical to its object path, so
compiled and interpreted serving give identical thread choices; tables
are additionally validated point-by-point against the plan at build
time.
"""

from repro.compile.lower import lower_model
from repro.compile.plan import CompiledPlan, compile_plan
from repro.compile.table import (DecisionTable, TableValidationError,
                                 campaign_axes, compile_table, refine_axes)
from repro.compile.transform import FusedTransform, lower_pipeline
from repro.compile.trees import PackedTrees

__all__ = [
    "CompiledPlan",
    "DecisionTable",
    "FusedTransform",
    "PackedTrees",
    "TableValidationError",
    "campaign_axes",
    "compile_plan",
    "compile_table",
    "lower_model",
    "lower_pipeline",
    "refine_axes",
]
