"""Lower fitted models to flat array evaluators.

One dispatch point, :func:`lower_model`, turns each registered candidate
into an array-only evaluator whose ``predict`` is bitwise identical to
the object model's:

* tree ensembles (forest / AdaBoost / XGBoost / LightGBM) pack into one
  :class:`~repro.compile.trees.PackedTrees` traversed for all trees at
  once — accumulation over trees keeps the object path's sequential
  order, because pairwise summation would change low bits;
* the exact-greedy decision tree flattens its linked nodes into the same
  packed representation (its object path walks Python nodes per sample,
  the slowest evaluator in the registry);
* the linear family (OLS, ridge, ElasticNet, Bayesian ridge, linear SVR
  — our SVR's "kernel" is linear, so its precomputed kernel op *is* the
  coefficient dot product) lowers to one ``X @ coef + intercept``;
* brute-force kNN keeps its training set by construction and is not
  lowerable — :func:`lower_model` returns ``None`` and callers fall back
  to the object path.

Input validation is the *caller's* job (the plan validates once at
entry); the evaluators here index straight into the arrays.
"""

from __future__ import annotations

import numpy as np

from repro.compile.trees import PackedTrees


class LoweredLinear:
    """``X @ coef + intercept`` — the whole model in two arrays."""

    __slots__ = ("coef", "intercept")
    kind = "linear"

    def __init__(self, coef, intercept):
        self.coef = np.asarray(coef, dtype=np.float64)
        self.intercept = float(intercept)

    def predict(self, X) -> np.ndarray:
        return X @ self.coef + self.intercept

    def describe(self) -> dict:
        return {"kind": self.kind, "n_features": int(self.coef.size),
                "nbytes": int(self.coef.nbytes)}


class LoweredTree:
    """A single packed CART tree."""

    __slots__ = ("packed",)
    kind = "tree"

    def __init__(self, packed: PackedTrees):
        self.packed = packed

    def predict(self, X) -> np.ndarray:
        return self.packed.predict_per_tree(X)[0]

    def describe(self) -> dict:
        return {"kind": self.kind, **self.packed.describe()}


class LoweredMeanEnsemble:
    """Forest: mean of per-tree predictions, summed in tree order."""

    __slots__ = ("packed",)
    kind = "forest"

    def __init__(self, packed: PackedTrees):
        self.packed = packed

    def predict(self, X) -> np.ndarray:
        per_tree = self.packed.predict_per_tree(X)
        out = np.zeros(X.shape[0])
        for row in per_tree:  # sequential sum: bitwise the object path
            out += row
        return out / self.packed.n_trees

    def describe(self) -> dict:
        return {"kind": self.kind, **self.packed.describe()}


class LoweredBoostedEnsemble:
    """Boosting: base score plus per-tree contributions in tree order."""

    __slots__ = ("packed", "base_score")
    kind = "boosted"

    def __init__(self, packed: PackedTrees, base_score: float):
        self.packed = packed
        self.base_score = float(base_score)

    def predict(self, X) -> np.ndarray:
        per_tree = self.packed.predict_per_tree(X)
        out = np.full(X.shape[0], self.base_score)
        for row in per_tree:
            out += row
        return out

    def describe(self) -> dict:
        return {"kind": self.kind, **self.packed.describe()}


class LoweredAdaBoost:
    """AdaBoost.R2: packed traversal + the weighted-median combination."""

    __slots__ = ("packed", "log_w")
    kind = "adaboost"

    def __init__(self, packed: PackedTrees, betas):
        from repro.ml.adaboost import boost_log_weights

        self.packed = packed
        self.log_w = boost_log_weights(betas)

    def predict(self, X) -> np.ndarray:
        from repro.ml.adaboost import weighted_median

        # The transpose copy restores the (n, T) row layout np.stack
        # produces on the object path, so argsort sees identical buffers.
        preds = np.ascontiguousarray(self.packed.predict_per_tree(X).T)
        return weighted_median(preds, self.log_w)

    def describe(self) -> dict:
        return {"kind": self.kind, **self.packed.describe()}


def lower_model(model):
    """Array evaluator for a fitted model, or ``None`` if unlowerable."""
    from repro.ml.adaboost import AdaBoostRegressor
    from repro.ml.bayes import BayesianRidge
    from repro.ml.elasticnet import ElasticNet
    from repro.ml.forest import RandomForestRegressor
    from repro.ml.lgbm import LGBMRegressor
    from repro.ml.linear import LinearRegression, Ridge
    from repro.ml.svr import LinearSVR
    from repro.ml.tree import DecisionTreeRegressor
    from repro.ml.xgb import XGBRegressor

    if isinstance(model, RandomForestRegressor):
        return LoweredMeanEnsemble(PackedTrees.from_hist_trees(model.trees_))
    if isinstance(model, (XGBRegressor, LGBMRegressor)):
        return LoweredBoostedEnsemble(
            PackedTrees.from_hist_trees(model.trees_), model.base_score_)
    if isinstance(model, AdaBoostRegressor):
        return LoweredAdaBoost(
            PackedTrees.from_hist_trees(model.trees_), model.betas_)
    if isinstance(model, DecisionTreeRegressor):
        return LoweredTree(PackedTrees.from_cart(model.root_, model.depth_))
    if isinstance(model, (LinearRegression, Ridge, ElasticNet, BayesianRidge,
                          LinearSVR)):
        return LoweredLinear(model.coef_, model.intercept_)
    return None
