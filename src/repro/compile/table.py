"""Decision tables: the compiled plan pre-evaluated over a shape lattice.

A :class:`~repro.compile.plan.CompiledPlan` made the *model pass* cheap;
a :class:`DecisionTable` removes it entirely for the dense head of the
traffic distribution.  At build time the plan is evaluated over the
reachable shape lattice — the cross-product of per-axis quantised
``(m, k, n)`` values derived from the training campaign's sampling
domain — and the argmin thread choice per lattice point is packed into
one small integer array.  Serving a lattice shape then costs three
``searchsorted`` probes and one fancy-indexed gather: no features, no
pipeline, no model.

Correctness is anchored the same way the plan's is: every lattice point
is round-tripped through the table's own lookup machinery at build time
and compared against the plan-computed choices
(:class:`TableValidationError` on any mismatch), so a table can never
answer differently from the plan it was compiled from.  Shapes off the
lattice **fall through** — :meth:`DecisionTable.lookup_batch` reports
them unresolved and the predictor runs the plan for just those shapes.

Two snap modes bound how far "on the lattice" stretches:

* ``"exact"`` (default): only exact lattice hits are answered; every
  other shape falls through.  The table is then a pure accelerator —
  thread choices are bitwise identical with or without it.
* ``"nearest"``: shapes inside the lattice bounding box snap to the
  nearest lattice point per axis (an explicit approximation for
  quantisation-tolerant deployments); out-of-box shapes still fall
  through.

The table holds only numpy arrays and plain scalars, so it pickles
small and deterministically and the bundle checksum can cover it
(:mod:`repro.core.serialize` persists tables as ``adsala_table.pkl``).
"""

from __future__ import annotations

import numpy as np

#: Upper bound on lattice size; a resolution/axes mistake should fail
#: loudly at build time, not allocate gigabytes.
MAX_LATTICE_POINTS = 1_000_000

#: Lattice points evaluated per plan pass during compilation.
BUILD_CHUNK = 4096


class TableValidationError(RuntimeError):
    """The built table disagrees with the plan on a lattice point."""


def _as_axis(values) -> np.ndarray:
    axis = np.unique(np.asarray(list(values), dtype=np.int64))
    if axis.size == 0:
        raise ValueError("lattice axes must be non-empty")
    if (axis < 1).any():
        raise ValueError("lattice dimensions must be >= 1")
    return axis


def _snap_axis(axis: np.ndarray, values: np.ndarray):
    """Nearest lattice index per value, plus exact/in-box masks.

    Ties between two equidistant lattice values resolve to the larger
    one — any fixed rule works, it just has to be deterministic so the
    build-time validation pins serving behaviour.
    """
    pos = np.searchsorted(axis, values)
    left = np.clip(pos - 1, 0, axis.size - 1)
    right = np.clip(pos, 0, axis.size - 1)
    idx = np.where(axis[right] - values <= values - axis[left], right, left)
    exact = axis[idx] == values
    in_box = (values >= axis[0]) & (values <= axis[-1])
    return idx, exact, in_box


class DecisionTable:
    """Packed shape-lattice -> thread-choice mapping with O(1) lookup.

    Attributes
    ----------
    routine:
        The routine the source predictor serves; lookups are only valid
        for shapes in that routine's feature-dims convention.
    thread_grid:
        The candidate grid the choices index into (int64, ascending).
        A table is only usable by a predictor with the *identical*
        grid — a clamped serving grid would make packed indices point
        at infeasible thread counts.
    axes:
        Three sorted int64 arrays of lattice values for m, k, n.
    grid_index:
        ``(|m|, |k|, |n|)`` int16 array of indices into ``thread_grid``.
    snap:
        ``"exact"`` or ``"nearest"`` (see module docstring).
    meta:
        Build provenance: resolution, probe count, campaign coverage.
    """

    __slots__ = ("routine", "thread_grid", "axes", "grid_index", "snap",
                 "meta")

    def __init__(self, routine: str, thread_grid, axes, grid_index,
                 snap: str = "exact", meta: dict = None):
        if snap not in ("exact", "nearest"):
            raise ValueError(f"snap must be 'exact' or 'nearest', got {snap!r}")
        self.routine = str(routine)
        self.thread_grid = np.asarray(thread_grid, dtype=np.int64)
        self.axes = tuple(_as_axis(a) for a in axes)
        if len(self.axes) != 3:
            raise ValueError("need exactly three lattice axes (m, k, n)")
        self.grid_index = np.asarray(grid_index, dtype=np.int16)
        shape = tuple(a.size for a in self.axes)
        if self.grid_index.shape != shape:
            raise ValueError(f"grid_index shape {self.grid_index.shape} "
                             f"does not match lattice {shape}")
        if self.grid_index.size and (
                (self.grid_index < 0).any()
                or (self.grid_index >= self.thread_grid.size).any()):
            raise ValueError("grid_index entries outside the thread grid")
        self.snap = snap
        self.meta = dict(meta or {})

    # -- geometry --------------------------------------------------------
    @property
    def lattice_shape(self) -> tuple:
        return tuple(a.size for a in self.axes)

    @property
    def n_points(self) -> int:
        return int(self.grid_index.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed arrays."""
        return int(self.grid_index.nbytes + self.thread_grid.nbytes
                   + sum(a.nbytes for a in self.axes))

    def lattice_points(self) -> np.ndarray:
        """Every lattice ``(m, k, n)`` as an ``(n_points, 3)`` array."""
        mesh = np.meshgrid(*self.axes, indexing="ij")
        return np.stack([g.ravel() for g in mesh], axis=1)

    # -- lookup ----------------------------------------------------------
    def lookup_batch(self, shapes):
        """Vectorised probe: ``(choices, resolved)`` aligned with input.

        ``choices`` is int64; entries where ``resolved`` is False are 0
        and the caller must fall through to the plan for those shapes.
        One fancy-indexing pass regardless of batch size.
        """
        dims = np.asarray([s.dims if hasattr(s, "dims") else s
                           for s in shapes], dtype=np.int64)
        if dims.size == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool))
        dims = dims.reshape(-1, 3)
        idx, resolved = [], None
        for axis, col in zip(self.axes, dims.T):
            i, exact, in_box = _snap_axis(axis, col)
            ok = exact if self.snap == "exact" else in_box
            idx.append(i)
            resolved = ok if resolved is None else (resolved & ok)
        choices = np.zeros(dims.shape[0], dtype=np.int64)
        if resolved.any():
            rows = self.grid_index[idx[0][resolved], idx[1][resolved],
                                   idx[2][resolved]]
            choices[resolved] = self.thread_grid[rows.astype(np.intp)]
        return choices, resolved

    def lookup(self, m: int, k: int, n: int):
        """Scalar probe: the thread choice, or ``None`` off the lattice."""
        choices, resolved = self.lookup_batch([(m, k, n)])
        return int(choices[0]) if resolved[0] else None

    # -- reporting -------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able summary for manifests and ``models inspect``."""
        info = {
            "routine": self.routine,
            "snap": self.snap,
            "lattice_shape": list(self.lattice_shape),
            "n_points": self.n_points,
            "nbytes": self.nbytes,
            "thread_grid": self.thread_grid.tolist(),
            "axis_ranges": [[int(a[0]), int(a[-1])] for a in self.axes],
        }
        for key in ("resolution", "coverage", "n_probe", "source"):
            if key in self.meta:
                info[key] = self.meta[key]
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DecisionTable({self.routine!r}, "
                f"lattice={self.lattice_shape}, snap={self.snap!r})")


def campaign_axes(config, routine: str = None, resolution: int = 16,
                  n_probe: int = 512):
    """Quantised lattice axes for the shapes a campaign can reach.

    Re-runs the training campaign's domain sampler (same cap, dtype and
    seed recorded in ``config``) to probe the shape distribution the
    model was fitted on, maps each GEMM problem onto the routine's
    feature dims, and quantises every *varying* axis to ``resolution``
    square-root-scale values between the observed extremes — matching
    the sampler's own sqrt-scale draw, so lattice density follows
    sampling density.  Constant axes (GEMV's trailing 1, TRSM's tied
    k = m) collapse to a single lattice value.

    Returns ``(axes, probe_dims)`` — the probe is reused for the
    coverage statistic.
    """
    from repro.core.routines import REGISTRY
    from repro.sampling.domain import GemmDomainSampler

    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    cap = int(getattr(config, "memory_cap_bytes", 0) or 0)
    if cap <= 0:
        raise ValueError(
            "config records no sampling domain (memory_cap_bytes) — pass "
            "explicit axes to compile a table for this bundle")
    routine = routine or getattr(config, "routine", "gemm")
    info = REGISTRY.get(routine)
    sampler = GemmDomainSampler(memory_cap_bytes=cap,
                                dtype=getattr(config, "dtype", "float32"),
                                seed=int(getattr(config, "seed", 0)))
    probe = sampler.sample(int(n_probe))
    probe_dims = np.asarray([info.from_gemm(s).dims for s in probe],
                            dtype=np.int64)
    axes = []
    for col in probe_dims.T:
        lo, hi = int(col.min()), int(col.max())
        if lo == hi:
            axes.append(np.asarray([lo], dtype=np.int64))
            continue
        ticks = np.linspace(np.sqrt(lo), np.sqrt(hi), int(resolution)) ** 2
        ticks = np.clip(np.round(ticks).astype(np.int64), lo, hi)
        axes.append(np.unique(ticks))
    return tuple(axes), probe_dims


def compile_table(predictor, config=None, axes=None, snap: str = "exact",
                  resolution: int = 16, n_probe: int = 512) -> DecisionTable:
    """Pre-evaluate ``predictor`` over a shape lattice into a table.

    ``axes`` gives the lattice explicitly; otherwise it derives from the
    training campaign recorded in ``config`` (:func:`campaign_axes`).
    Evaluation goes through whatever path the predictor itself uses —
    pass a compiled predictor to tabulate the plan — in
    :data:`BUILD_CHUNK`-point batches, then **every** lattice point is
    looked up back through the packed table and compared bitwise against
    the directly-computed choices; any disagreement raises
    :class:`TableValidationError` rather than shipping a wrong table.
    """
    if axes is None:
        if config is None:
            raise ValueError("compile_table needs explicit axes or a config "
                             "to derive the campaign lattice from")
        axes, probe_dims = campaign_axes(config, routine=predictor.routine,
                                         resolution=resolution,
                                         n_probe=n_probe)
        source = "campaign"
    else:
        axes = tuple(_as_axis(a) for a in axes)
        if len(axes) != 3:
            raise ValueError("need exactly three lattice axes (m, k, n)")
        probe_dims = None
        source = "explicit"
    grid = np.asarray(predictor.thread_grid, dtype=np.int64)
    if grid.size > np.iinfo(np.int16).max:
        raise ValueError("thread grid too large to pack into int16 indices")
    shape = tuple(a.size for a in axes)
    n_points = int(np.prod(shape))
    if n_points > MAX_LATTICE_POINTS:
        raise ValueError(
            f"lattice of {n_points} points exceeds the "
            f"{MAX_LATTICE_POINTS}-point bound; lower the resolution")

    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([g.ravel() for g in mesh], axis=1)
    rows = np.empty(n_points, dtype=np.int16)
    for start in range(0, n_points, BUILD_CHUNK):
        chunk = points[start:start + BUILD_CHUNK]
        scores = predictor.predicted_runtimes_batch(
            [tuple(int(v) for v in p) for p in chunk])
        rows[start:start + BUILD_CHUNK] = np.argmin(
            scores, axis=1).astype(np.int16)

    meta = {"resolution": int(resolution), "source": source}
    if probe_dims is not None:
        lo = np.asarray([a[0] for a in axes])
        hi = np.asarray([a[-1] for a in axes])
        in_box = ((probe_dims >= lo) & (probe_dims <= hi)).all(axis=1)
        meta["coverage"] = round(float(in_box.mean()), 4)
        meta["n_probe"] = int(probe_dims.shape[0])
    table = DecisionTable(routine=predictor.routine, thread_grid=grid,
                          axes=axes, grid_index=rows.reshape(shape),
                          snap=snap, meta=meta)

    expected = grid[rows.astype(np.intp)]
    for start in range(0, n_points, BUILD_CHUNK):
        chunk = points[start:start + BUILD_CHUNK]
        got, resolved = table.lookup_batch(chunk)
        if not resolved.all():
            raise TableValidationError(
                f"table failed to resolve its own lattice points for "
                f"routine {table.routine!r}")
        if not np.array_equal(got, expected[start:start + BUILD_CHUNK]):
            bad = np.nonzero(got != expected[start:start + BUILD_CHUNK])[0][0]
            m, k, n = (int(v) for v in chunk[bad])
            raise TableValidationError(
                f"table answer diverges from the plan at lattice point "
                f"({m}, {k}, {n}): table={int(got[bad])} "
                f"plan={int(expected[start + bad])}")
    return table
