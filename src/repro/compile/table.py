"""Decision tables: the compiled plan pre-evaluated over a shape lattice.

A :class:`~repro.compile.plan.CompiledPlan` made the *model pass* cheap;
a :class:`DecisionTable` removes it entirely for the dense head of the
traffic distribution.  At build time the plan is evaluated over the
reachable shape lattice — the cross-product of per-axis quantised
``(m, k, n)`` values derived from the training campaign's sampling
domain — and the argmin thread choice per lattice point is packed into
one small integer array.  Serving a lattice shape then costs three
``searchsorted`` probes and one fancy-indexed gather: no features, no
pipeline, no model.

Correctness is anchored the same way the plan's is: every lattice point
is round-tripped through the table's own lookup machinery at build time
and compared against the plan-computed choices
(:class:`TableValidationError` on any mismatch), so a table can never
answer differently from the plan it was compiled from.  Shapes off the
lattice **fall through** — :meth:`DecisionTable.lookup_batch` reports
them unresolved and the predictor runs the plan for just those shapes.

Three snap modes bound how far "on the lattice" stretches:

* ``"exact"`` (default): only exact lattice hits are answered; every
  other shape falls through.  The table is then a pure accelerator —
  thread choices are bitwise identical with or without it.
* ``"nearest"``: shapes inside the lattice bounding box snap to the
  nearest lattice point per axis (an explicit approximation for
  quantisation-tolerant deployments); out-of-box shapes still fall
  through.
* ``"plateau"``: exact hits are answered as in ``"exact"``; an
  off-lattice shape inside the bounding box is answered from its
  bracketing lattice cell **iff** all eight cell corners agree on the
  thread choice (the cell is a *plateau* of the decision function) and
  the cell survived build-time probe validation.  Corner disagreement
  — or a build-time probe that caught the plan changing its mind
  *inside* an agreeing cell — demotes the cell, and shapes landing in
  it fall through to the plan unchanged.  Every table answer therefore
  remains bitwise-equal to what the plan would have said on the
  validated probe distribution, while the long tail of near-lattice
  traffic is absorbed into tier 0.

The table holds only numpy arrays and plain scalars, so it pickles
small and deterministically and the bundle checksum can cover it
(:mod:`repro.core.serialize` persists tables as ``adsala_table.pkl``;
refined tables additionally carry a ``generation`` counter in their
metadata).
"""

from __future__ import annotations

import numpy as np

#: Upper bound on lattice size; a resolution/axes mistake should fail
#: loudly at build time, not allocate gigabytes.
MAX_LATTICE_POINTS = 1_000_000

#: Lattice points evaluated per plan pass during compilation.
BUILD_CHUNK = 4096

#: Interior probe points per plateau-mode build-time validation pass.
PLATEAU_PROBES = 512


class TableValidationError(RuntimeError):
    """The built table disagrees with the plan on a lattice point."""


def _as_axis(values) -> np.ndarray:
    axis = np.unique(np.asarray(list(values), dtype=np.int64))
    if axis.size == 0:
        raise ValueError("lattice axes must be non-empty")
    if (axis < 1).any():
        raise ValueError("lattice dimensions must be >= 1")
    return axis


def _snap_axis(axis: np.ndarray, values: np.ndarray):
    """Nearest lattice index per value, plus exact/in-box masks.

    Ties between two equidistant lattice values resolve to the larger
    one — any fixed rule works, it just has to be deterministic so the
    build-time validation pins serving behaviour.
    """
    pos = np.searchsorted(axis, values)
    left = np.clip(pos - 1, 0, axis.size - 1)
    right = np.clip(pos, 0, axis.size - 1)
    idx = np.where(axis[right] - values <= values - axis[left], right, left)
    exact = axis[idx] == values
    in_box = (values >= axis[0]) & (values <= axis[-1])
    return idx, exact, in_box


def _cell_axis(axis: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Bracketing cell index per value: cell ``i`` spans
    ``axis[i]..axis[i+1]``.

    Deterministic for every input, including exact ticks (they anchor
    the cell whose *lower* edge they are; the last tick clips into the
    last cell) and degenerate single-value axes (everything maps to
    cell 0).
    """
    pos = np.searchsorted(axis, values, side="right") - 1
    return np.clip(pos, 0, max(axis.size - 2, 0))


def _corner_agreement(grid_index: np.ndarray) -> np.ndarray:
    """Boolean per-cell mask: do all 2^3 cell corners pick one choice?

    The cell array has ``max(size-1, 1)`` entries per axis; a
    single-value axis contributes one degenerate "cell" whose two
    corners coincide, so it never blocks agreement.
    """
    shape = grid_index.shape
    cdim = tuple(max(s - 1, 1) for s in shape)
    base = None
    ok = np.ones(cdim, dtype=bool)
    for dm in (0, 1):
        for dk in (0, 1):
            for dn in (0, 1):
                # For a degenerate axis (size 1) every corner offset
                # clips back to the single plane.
                sl = tuple(slice(min(d, s - c), min(d, s - c) + c)
                           for d, s, c in zip((dm, dk, dn), shape, cdim))
                corner = grid_index[sl]
                if base is None:
                    base = corner
                else:
                    ok &= corner == base
    return ok


def refine_axes(axes, miss_dims, max_new_per_axis: int = 8):
    """Densify lattice ``axes`` where observed traffic missed them.

    ``miss_dims`` is the fallback evidence — ``(m, k, n)`` triples that
    probed the table and fell through.  Per axis, the most frequent
    missing values (ties broken toward the smaller value, so the result
    is fully deterministic) are merged in, at most ``max_new_per_axis``
    of them; misses outside the old bounding box extend it.  When the
    densified lattice would exceed :data:`MAX_LATTICE_POINTS` the
    per-axis budget shrinks until it fits — refinement degrades
    gracefully instead of failing a serving loop.

    Returns a new axes tuple; the input axes are never mutated.  Axes
    that gain nothing come back equal, so callers can detect a no-op
    refinement with ``np.array_equal``.
    """
    if max_new_per_axis < 0:
        raise ValueError("max_new_per_axis must be >= 0")
    axes = tuple(_as_axis(a) for a in axes)
    miss = np.asarray([d.dims if hasattr(d, "dims") else d
                       for d in miss_dims], dtype=np.int64)
    if miss.size == 0:
        return axes
    miss = miss.reshape(-1, 3)
    if (miss < 1).any():
        raise ValueError("miss dimensions must be >= 1")
    ranked = []
    for axis, col in zip(axes, miss.T):
        values, counts = np.unique(col, return_counts=True)
        fresh = ~np.isin(values, axis)
        values, counts = values[fresh], counts[fresh]
        # Most frequent first; equal frequencies resolve to the smaller
        # value (lexsort keys are least-significant first).
        order = np.lexsort((values, -counts))
        ranked.append(values[order])
    for budget in range(int(max_new_per_axis), -1, -1):
        out = tuple(np.unique(np.concatenate([axis, new[:budget]]))
                    for axis, new in zip(axes, ranked))
        if int(np.prod([a.size for a in out])) <= MAX_LATTICE_POINTS:
            return out
    return axes  # pragma: no cover - axes alone exceed the bound


class DecisionTable:
    """Packed shape-lattice -> thread-choice mapping with O(1) lookup.

    Attributes
    ----------
    routine:
        The routine the source predictor serves; lookups are only valid
        for shapes in that routine's feature-dims convention.
    thread_grid:
        The candidate grid the choices index into (int64, ascending).
        A table is only usable by a predictor with the *identical*
        grid — a clamped serving grid would make packed indices point
        at infeasible thread counts.
    axes:
        Three sorted int64 arrays of lattice values for m, k, n.
    grid_index:
        ``(|m|, |k|, |n|)`` int16 array of indices into ``thread_grid``.
    snap:
        ``"exact"``, ``"nearest"`` or ``"plateau"`` (module docstring).
    cell_ok:
        Plateau mode only: ``(max(|m|-1,1), max(|k|-1,1), max(|n|-1,1))``
        boolean mask of cells allowed to answer their interior.  Derived
        from corner agreement when not given; build-time probe
        validation may demote cells.  ``None`` for the other modes.
    meta:
        Build provenance: resolution, probe count, campaign coverage,
        refinement ``generation``.
    """

    __slots__ = ("routine", "thread_grid", "axes", "grid_index", "snap",
                 "meta", "cell_ok", "_scratch")

    def __init__(self, routine: str, thread_grid, axes, grid_index,
                 snap: str = "exact", meta: dict = None, cell_ok=None):
        if snap not in ("exact", "nearest", "plateau"):
            raise ValueError(f"snap must be 'exact', 'nearest' or "
                             f"'plateau', got {snap!r}")
        self.routine = str(routine)
        self.thread_grid = np.asarray(thread_grid, dtype=np.int64)
        self.axes = tuple(_as_axis(a) for a in axes)
        if len(self.axes) != 3:
            raise ValueError("need exactly three lattice axes (m, k, n)")
        self.grid_index = np.asarray(grid_index, dtype=np.int16)
        shape = tuple(a.size for a in self.axes)
        if self.grid_index.shape != shape:
            raise ValueError(f"grid_index shape {self.grid_index.shape} "
                             f"does not match lattice {shape}")
        if self.grid_index.size and (
                (self.grid_index < 0).any()
                or (self.grid_index >= self.thread_grid.size).any()):
            raise ValueError("grid_index entries outside the thread grid")
        self.snap = snap
        if snap == "plateau":
            agreement = _corner_agreement(self.grid_index)
            if cell_ok is None:
                cell_ok = agreement
            else:
                cell_ok = np.asarray(cell_ok, dtype=bool)
                if cell_ok.shape != agreement.shape:
                    raise ValueError(
                        f"cell_ok shape {cell_ok.shape} does not match "
                        f"the cell lattice {agreement.shape}")
                # A mask can only ever demote agreeing cells: a cell
                # whose corners disagree has no plateau to answer from.
                cell_ok = cell_ok & agreement
        else:
            cell_ok = None
        self.cell_ok = cell_ok
        self.meta = dict(meta or {})
        self._scratch = np.empty((1, 3), dtype=np.int64)

    # -- pickling --------------------------------------------------------
    def __getstate__(self) -> dict:
        # The scalar-lookup scratch buffer is per-process working state,
        # not table identity; keeping it out preserves deterministic
        # pickles (the idempotence anchor for registry retrofits).
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_scratch"}

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # default slots reduce: (dict, slots)
            merged = {}
            for part in state:
                if part:
                    merged.update(part)
            state = merged
        for name in self.__slots__:
            if name in state:
                setattr(self, name, state[name])
        if "cell_ok" not in state:  # tables pickled before plateau mode
            self.cell_ok = (_corner_agreement(self.grid_index)
                            if self.snap == "plateau" else None)
        self._scratch = np.empty((1, 3), dtype=np.int64)

    # -- geometry --------------------------------------------------------
    @property
    def lattice_shape(self) -> tuple:
        return tuple(a.size for a in self.axes)

    @property
    def n_points(self) -> int:
        return int(self.grid_index.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed arrays."""
        return int(self.grid_index.nbytes + self.thread_grid.nbytes
                   + sum(a.nbytes for a in self.axes)
                   + (self.cell_ok.nbytes if self.cell_ok is not None else 0))

    def lattice_points(self) -> np.ndarray:
        """Every lattice ``(m, k, n)`` as an ``(n_points, 3)`` array."""
        mesh = np.meshgrid(*self.axes, indexing="ij")
        return np.stack([g.ravel() for g in mesh], axis=1)

    # -- lookup ----------------------------------------------------------
    def _lookup_dims(self, dims: np.ndarray):
        """The one lookup kernel every probe goes through.

        ``dims`` is an ``(n, 3)`` int64 array.  Returns
        ``(choices, resolved, interpolated)``: int64 choices (0 where
        unresolved), the resolved mask, and the subset of resolved
        entries that were answered *between* lattice points (snapped in
        ``"nearest"`` mode, plateau-cell interiors in ``"plateau"``
        mode; always all-False in ``"exact"`` mode).
        """
        n = dims.shape[0]
        if n == 0:
            zero = np.zeros(0, dtype=bool)
            return np.zeros(0, dtype=np.int64), zero, zero.copy()
        snapped, exact_all, in_box_all = [], None, None
        for axis, col in zip(self.axes, dims.T):
            i, exact, in_box = _snap_axis(axis, col)
            snapped.append(i)
            exact_all = exact if exact_all is None else exact_all & exact
            in_box_all = in_box if in_box_all is None else in_box_all & in_box
        if self.snap == "exact":
            resolved, use = exact_all, snapped
            interpolated = np.zeros(n, dtype=bool)
        elif self.snap == "nearest":
            resolved, use = in_box_all, snapped
            interpolated = in_box_all & ~exact_all
        else:  # plateau: exact hits always answer; interiors need cell_ok
            cells = [_cell_axis(axis, col)
                     for axis, col in zip(self.axes, dims.T)]
            interpolated = (in_box_all & ~exact_all
                            & self.cell_ok[cells[0], cells[1], cells[2]])
            resolved = exact_all | interpolated
            # All agreeing corners answer alike, so the lower corner of
            # the bracketing cell stands in for the whole interior.
            use = [np.where(exact_all, i, c)
                   for i, c in zip(snapped, cells)]
        choices = np.zeros(n, dtype=np.int64)
        if resolved.any():
            rows = self.grid_index[use[0][resolved], use[1][resolved],
                                   use[2][resolved]]
            choices[resolved] = self.thread_grid[rows.astype(np.intp)]
        return choices, resolved, interpolated

    @staticmethod
    def _as_dims(shapes) -> np.ndarray:
        dims = np.asarray([s.dims if hasattr(s, "dims") else s
                           for s in shapes], dtype=np.int64)
        return dims.reshape(-1, 3) if dims.size else dims.reshape(0, 3)

    def lookup_batch(self, shapes):
        """Vectorised probe: ``(choices, resolved)`` aligned with input.

        ``choices`` is int64; entries where ``resolved`` is False are 0
        and the caller must fall through to the plan for those shapes.
        One fancy-indexing pass regardless of batch size.
        """
        choices, resolved, _ = self._lookup_dims(self._as_dims(shapes))
        return choices, resolved

    def lookup_batch_ex(self, shapes):
        """:meth:`lookup_batch` plus the interpolation mask.

        Returns ``(choices, resolved, interpolated)`` — the extra mask
        marks resolved entries answered between lattice points, so the
        predictor can account tier-0 interpolation separately from
        exact hits.
        """
        return self._lookup_dims(self._as_dims(shapes))

    def lookup(self, m: int, k: int, n: int):
        """Scalar probe: the thread choice, or ``None`` off the lattice.

        A thin wrapper over the batch kernel (one code path to
        validate) through a persistent scratch row, so the scalar hot
        path allocates nothing per call.  Like the predictor counters
        it feeds, the scalar path is not re-entrant.
        """
        choice, _ = self.lookup_ex(m, k, n)
        return choice

    def lookup_ex(self, m: int, k: int, n: int):
        """Scalar probe with attribution: ``(choice or None, interpolated)``."""
        buf = self._scratch
        buf[0, 0] = m
        buf[0, 1] = k
        buf[0, 2] = n
        choices, resolved, interpolated = self._lookup_dims(buf)
        if not resolved[0]:
            return None, False
        return int(choices[0]), bool(interpolated[0])

    # -- reporting -------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able summary for manifests and ``models inspect``."""
        info = {
            "routine": self.routine,
            "snap": self.snap,
            "lattice_shape": list(self.lattice_shape),
            "n_points": self.n_points,
            "nbytes": self.nbytes,
            "thread_grid": self.thread_grid.tolist(),
            "axis_ranges": [[int(a[0]), int(a[-1])] for a in self.axes],
        }
        if self.cell_ok is not None:
            info["cells"] = int(self.cell_ok.size)
            info["plateau_cells"] = int(self.cell_ok.sum())
        for key in ("resolution", "coverage", "n_probe", "source",
                    "generation", "refined_from_version", "demoted_cells",
                    "validation_probes"):
            if key in self.meta:
                info[key] = self.meta[key]
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DecisionTable({self.routine!r}, "
                f"lattice={self.lattice_shape}, snap={self.snap!r})")


def campaign_axes(config, routine: str = None, resolution: int = 16,
                  n_probe: int = 512):
    """Quantised lattice axes for the shapes a campaign can reach.

    Re-runs the training campaign's domain sampler (same cap, dtype and
    seed recorded in ``config``) to probe the shape distribution the
    model was fitted on, maps each GEMM problem onto the routine's
    feature dims, and quantises every *varying* axis to ``resolution``
    square-root-scale values between the observed extremes — matching
    the sampler's own sqrt-scale draw, so lattice density follows
    sampling density.  Constant axes (GEMV's trailing 1, TRSM's tied
    k = m) collapse to a single lattice value.

    Returns ``(axes, probe_dims)`` — the probe is reused for the
    coverage statistic.
    """
    from repro.core.routines import REGISTRY
    from repro.sampling.domain import GemmDomainSampler

    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    cap = int(getattr(config, "memory_cap_bytes", 0) or 0)
    if cap <= 0:
        raise ValueError(
            "config records no sampling domain (memory_cap_bytes) — pass "
            "explicit axes to compile a table for this bundle")
    routine = routine or getattr(config, "routine", "gemm")
    info = REGISTRY.get(routine)
    sampler = GemmDomainSampler(memory_cap_bytes=cap,
                                dtype=getattr(config, "dtype", "float32"),
                                seed=int(getattr(config, "seed", 0)))
    probe = sampler.sample(int(n_probe))
    probe_dims = np.asarray([info.from_gemm(s).dims for s in probe],
                            dtype=np.int64)
    axes = []
    for col in probe_dims.T:
        lo, hi = int(col.min()), int(col.max())
        if lo == hi:
            axes.append(np.asarray([lo], dtype=np.int64))
            continue
        ticks = np.linspace(np.sqrt(lo), np.sqrt(hi), int(resolution)) ** 2
        ticks = np.clip(np.round(ticks).astype(np.int64), lo, hi)
        axes.append(np.unique(ticks))
    return tuple(axes), probe_dims


def _plateau_probe_points(axes, probe_dims, n_probe: int) -> np.ndarray:
    """Off-lattice validation probes for plateau cells.

    Campaign probe shapes that land inside the bounding box without
    being exact lattice points (real traffic the plateau will answer),
    plus a seeded uniform sweep of the box interior so sparse campaigns
    still exercise every region.  Deterministic by construction.
    """
    lo = np.asarray([a[0] for a in axes], dtype=np.int64)
    hi = np.asarray([a[-1] for a in axes], dtype=np.int64)
    rng = np.random.default_rng(abs(hash(("plateau",) + tuple(
        int(v) for v in np.concatenate(axes)))) % (2 ** 32))
    uniform = np.column_stack([
        rng.integers(int(l), int(h) + 1, size=int(n_probe), dtype=np.int64)
        for l, h in zip(lo, hi)])
    points = [uniform]
    if probe_dims is not None and len(probe_dims):
        in_box = ((probe_dims >= lo) & (probe_dims <= hi)).all(axis=1)
        points.append(np.asarray(probe_dims, dtype=np.int64)[in_box])
    merged = np.concatenate(points, axis=0)
    exact = np.ones(len(merged), dtype=bool)
    for axis, col in zip(axes, merged.T):
        _, is_exact, _ = _snap_axis(axis, col)
        exact &= is_exact
    return np.unique(merged[~exact], axis=0)


def compile_table(predictor, config=None, axes=None, snap: str = "exact",
                  resolution: int = 16, n_probe: int = 512) -> DecisionTable:
    """Pre-evaluate ``predictor`` over a shape lattice into a table.

    ``axes`` gives the lattice explicitly; otherwise it derives from the
    training campaign recorded in ``config`` (:func:`campaign_axes`).
    Evaluation goes through whatever path the predictor itself uses —
    pass a compiled predictor to tabulate the plan — in
    :data:`BUILD_CHUNK`-point batches, then **every** lattice point is
    looked up back through the packed table and compared bitwise against
    the directly-computed choices; any disagreement raises
    :class:`TableValidationError` rather than shipping a wrong table.

    ``snap="plateau"`` adds a second validation sweep over a sampled
    off-lattice probe set: any agreeing cell whose *interior* the plan
    nevertheless answers differently (piecewise-constant tree models
    can carve a cell without moving its corners) is **demoted** — the
    cell falls through at serving time instead of shipping a wrong
    interpolation.  The demotion count lands in the table's metadata.
    """
    if axes is None:
        if config is None:
            raise ValueError("compile_table needs explicit axes or a config "
                             "to derive the campaign lattice from")
        axes, probe_dims = campaign_axes(config, routine=predictor.routine,
                                         resolution=resolution,
                                         n_probe=n_probe)
        source = "campaign"
    else:
        axes = tuple(_as_axis(a) for a in axes)
        if len(axes) != 3:
            raise ValueError("need exactly three lattice axes (m, k, n)")
        probe_dims = None
        source = "explicit"
    grid = np.asarray(predictor.thread_grid, dtype=np.int64)
    if grid.size > np.iinfo(np.int16).max:
        raise ValueError("thread grid too large to pack into int16 indices")
    shape = tuple(a.size for a in axes)
    n_points = int(np.prod(shape))
    if n_points > MAX_LATTICE_POINTS:
        raise ValueError(
            f"lattice of {n_points} points exceeds the "
            f"{MAX_LATTICE_POINTS}-point bound; lower the resolution")

    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([g.ravel() for g in mesh], axis=1)
    rows = np.empty(n_points, dtype=np.int16)
    for start in range(0, n_points, BUILD_CHUNK):
        chunk = points[start:start + BUILD_CHUNK]
        scores = predictor.predicted_runtimes_batch(
            [tuple(int(v) for v in p) for p in chunk])
        rows[start:start + BUILD_CHUNK] = np.argmin(
            scores, axis=1).astype(np.int16)

    meta = {"resolution": int(resolution), "source": source}
    if probe_dims is not None:
        lo = np.asarray([a[0] for a in axes])
        hi = np.asarray([a[-1] for a in axes])
        in_box = ((probe_dims >= lo) & (probe_dims <= hi)).all(axis=1)
        meta["coverage"] = round(float(in_box.mean()), 4)
        meta["n_probe"] = int(probe_dims.shape[0])
    table = DecisionTable(routine=predictor.routine, thread_grid=grid,
                          axes=axes, grid_index=rows.reshape(shape),
                          snap=snap, meta=meta)

    expected = grid[rows.astype(np.intp)]
    for start in range(0, n_points, BUILD_CHUNK):
        chunk = points[start:start + BUILD_CHUNK]
        got, resolved = table.lookup_batch(chunk)
        if not resolved.all():
            raise TableValidationError(
                f"table failed to resolve its own lattice points for "
                f"routine {table.routine!r}")
        if not np.array_equal(got, expected[start:start + BUILD_CHUNK]):
            bad = np.nonzero(got != expected[start:start + BUILD_CHUNK])[0][0]
            m, k, n = (int(v) for v in chunk[bad])
            raise TableValidationError(
                f"table answer diverges from the plan at lattice point "
                f"({m}, {k}, {n}): table={int(got[bad])} "
                f"plan={int(expected[start + bad])}")

    if snap == "plateau":
        _validate_plateaus(table, predictor, probe_dims,
                           n_probe=max(int(n_probe), PLATEAU_PROBES))
    return table


def _validate_plateaus(table: DecisionTable, predictor, probe_dims,
                       n_probe: int) -> None:
    """Demote plateau cells the plan disagrees with on interior probes."""
    probes = _plateau_probe_points(table.axes, probe_dims, n_probe)
    demoted = 0
    checked = 0
    for start in range(0, len(probes), BUILD_CHUNK):
        chunk = probes[start:start + BUILD_CHUNK]
        got, resolved, interpolated = table.lookup_batch_ex(chunk)
        if not interpolated.any():
            continue
        sample = chunk[interpolated]
        answers = got[interpolated]
        checked += len(sample)
        scores = predictor.predicted_runtimes_batch(
            [tuple(int(v) for v in p) for p in sample])
        plan = table.thread_grid[np.argmin(scores, axis=1)]
        bad = answers != plan
        if bad.any():
            cells = tuple(_cell_axis(axis, col) for axis, col
                          in zip(table.axes, sample[bad].T))
            before = int(table.cell_ok.sum())
            table.cell_ok[cells] = False
            demoted += before - int(table.cell_ok.sum())
    table.meta["validation_probes"] = int(checked)
    table.meta["demoted_cells"] = int(demoted)
