"""Compiled inference plans: pipeline + model lowered at bundle build time.

A :class:`CompiledPlan` is the array-only form of a fitted installation:
the preprocessing pipeline folded into one
:class:`~repro.compile.transform.FusedTransform` pass and the model
lowered to a flat evaluator (packed trees / affine).  It is built once —
at bundle save time, on registry publish, or lazily when a pre-plan
bundle is first served — and the runtime
:class:`~repro.core.predictor.ThreadPredictor` evaluates through it
instead of walking Python stage and tree objects.

Plans are **partial by design**: whichever of the two halves cannot be
lowered (an exotic pipeline stage, a kNN model) stays ``None`` and the
predictor falls back to the corresponding object for just that half.
Everything that *is* lowered is bitwise identical to the object path, so
swapping a plan in or out can never change a thread choice.

The plan holds only numpy arrays and scalars — no references to the
pipeline or model objects — so it pickles small and deterministically,
which is what lets the bundle checksum cover it
(:mod:`repro.core.serialize` persists plans as ``adsala_plan.pkl``).
"""

from __future__ import annotations

from repro.compile.lower import lower_model
from repro.compile.transform import lower_pipeline


class CompiledPlan:
    """The lowered halves of a fitted (pipeline, model) pair.

    Attributes
    ----------
    transform:
        A :class:`FusedTransform`, or ``None``.  ``None`` means "apply
        no fused transform": either the bundle has no pipeline
        (``transform_fallback`` False — features pass straight through,
        like the object path) or the pipeline could not be folded
        (``transform_fallback`` True — callers must run the object
        pipeline).
    model:
        A lowered evaluator, or ``None`` (use the object model).
    """

    __slots__ = ("transform", "transform_fallback", "model")

    def __init__(self, transform, transform_fallback: bool, model):
        self.transform = transform
        self.transform_fallback = bool(transform_fallback)
        self.model = model

    @property
    def lowers_anything(self) -> bool:
        """Whether this plan accelerates at least one half."""
        return self.transform is not None or self.model is not None

    @property
    def fully_lowered(self) -> bool:
        return not self.transform_fallback and self.model is not None

    def describe(self) -> dict:
        """JSON-able summary for manifests and ``models inspect``."""
        info = {
            "fully_lowered": self.fully_lowered,
            "pipeline": ("fused" if self.transform is not None
                         else "object-fallback" if self.transform_fallback
                         else "identity"),
            "model": (self.model.kind if self.model is not None
                      else "object-fallback"),
        }
        if self.transform is not None:
            info["transform"] = self.transform.describe()
        if self.model is not None:
            info["model_arrays"] = self.model.describe()
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CompiledPlan(pipeline={self.describe()['pipeline']}, "
                f"model={self.describe()['model']})")


def compile_plan(pipeline, model) -> CompiledPlan:
    """Lower a fitted pipeline + model pair into a :class:`CompiledPlan`.

    Never raises on unlowerable pieces — they become object-path
    fallbacks recorded on the plan.
    """
    if pipeline is None:
        transform, transform_fallback = None, False
    else:
        transform = lower_pipeline(pipeline)
        transform_fallback = transform is None
    return CompiledPlan(transform=transform,
                        transform_fallback=transform_fallback,
                        model=lower_model(model))
