"""Generalising the ADSALA workflow to non-GEMM BLAS routines.

The key insight of the extension: ADSALA never looks *inside* the
routine — it needs (a) a dimension triple to build features from, (b) a
``timed_run(spec, n_threads)`` oracle, and (c) a thread grid.  Any
routine that can provide those reuses the entire installation and
runtime machinery.

:class:`RoutineSimulator` provides the timing oracle by mapping a
routine spec onto its GEMM equivalent on the underlying machine
simulator and applying routine-specific corrections:

- **work fraction** — SYRK performs roughly half the FLOPs of its
  equivalent product, so the kernel component is scaled;
- **bandwidth binding** — GEMV's equivalent GEMM (n = 1) already sits on
  the cost model's bandwidth roofline, so no correction is needed; the
  model naturally predicts early thread saturation.

:func:`install_for_routine` then runs the unchanged
:class:`~repro.core.training.InstallationWorkflow` against the adapted
oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import TimingDataset, TimingRecord
from repro.core.training import InstallationWorkflow
from repro.machine.simulator import MachineSimulator


class RoutineSimulator:
    """Timing oracle for a non-GEMM routine on a simulated machine.

    Wraps a :class:`MachineSimulator`; accepts routine specs (anything
    with ``equivalent_gemm()``, ``work_fraction`` and ``dims``) and
    exposes the subset of the simulator API that ADSALA's gatherer,
    selector and runtime library consume.
    """

    def __init__(self, simulator: MachineSimulator):
        self.simulator = simulator

    # -- passthrough ----------------------------------------------------
    @property
    def name(self) -> str:
        return self.simulator.name

    @property
    def hyperthreading(self) -> bool:
        return self.simulator.hyperthreading

    @property
    def affinity(self):
        return self.simulator.affinity

    @property
    def clock(self):
        return self.simulator.clock

    def max_threads(self, hyperthreading: bool = None) -> int:
        return self.simulator.max_threads(hyperthreading)

    # -- timing oracle ----------------------------------------------------
    def _scale(self, spec) -> float:
        return float(spec.work_fraction)

    def true_time(self, spec, n_threads: int, **kw) -> float:
        gemm = spec.equivalent_gemm()
        bd = self.simulator.cost_model.breakdown(
            gemm, n_threads, self.simulator.affinity,
            self.simulator.hyperthreading)
        # Only the arithmetic scales with the work fraction; packing and
        # synchronisation follow the full schedule.
        return bd.sync + bd.copy + bd.kernel * self._scale(spec)

    def run(self, spec, n_threads: int, iteration: int = 0, **kw):
        gemm = spec.equivalent_gemm()
        result = self.simulator.run(gemm, n_threads, iteration=iteration, **kw)
        scale = (self.true_time(spec, n_threads)
                 / max(result.breakdown.total, 1e-300))
        return result.time * scale

    def timed_run(self, spec, n_threads: int, repeats: int = 10,
                  reduce: str = "median", **kw) -> float:
        times = [self.run(spec, n_threads, iteration=i, **kw)
                 for i in range(repeats)]
        if reduce == "median":
            return float(np.median(times))
        if reduce == "min":
            return float(np.min(times))
        return float(np.mean(times))

    def optimal_threads(self, spec, thread_grid) -> int:
        return min(thread_grid, key=lambda p: self.true_time(spec, p))

    def backend(self, thread_grid=None):
        """This oracle as an engine :class:`ExecutionBackend`.

        Register the result on a :class:`~repro.engine.service.GemmService`
        dispatcher per routine spec type so GEMV/SYRK/TRSM calls serve
        through the same engine as GEMM.
        """
        from repro.engine.backend import RoutineBackend

        return RoutineBackend(self, thread_grid)


class _RoutineGatherer:
    """Times routine specs over the thread grid into a TimingDataset.

    Feature building reuses the GEMM convention: the routine's ``dims``
    triple plays the role of (m, k, n).
    """

    def __init__(self, oracle: RoutineSimulator, thread_grid, repeats: int = 10):
        self.oracle = oracle
        self.thread_grid = list(thread_grid)
        self.repeats = repeats

    def gather_for_specs(self, specs) -> TimingDataset:
        records = []
        for spec in specs:
            m, k, n = spec.dims
            routine = getattr(spec, "routine", "gemm")
            for p in self.thread_grid:
                runtime = self.oracle.timed_run(spec, p, repeats=self.repeats)
                records.append(TimingRecord(m, k, n, p, runtime,
                                            routine=routine))
        return TimingDataset.from_records(records, dtype=specs[0].dtype)


def install_for_routine(simulator: MachineSimulator, specs, thread_grid,
                        repeats: int = 10, **workflow_kwargs):
    """Run the full ADSALA installation for a non-GEMM routine.

    Parameters
    ----------
    simulator:
        The target machine.
    specs:
        Routine problem instances to benchmark (e.g. a list of
        :class:`~repro.blas.syrk.SyrkSpec`).
    thread_grid:
        Candidate thread counts.
    workflow_kwargs:
        Forwarded to :class:`InstallationWorkflow` (candidates,
        label_transform, tuning effort, ...).

    Returns ``(bundle, oracle)`` — the trained artefacts and the timing
    oracle to execute against at runtime.
    """
    oracle = RoutineSimulator(simulator)
    gatherer = _RoutineGatherer(oracle, thread_grid, repeats=repeats)
    data = gatherer.gather_for_specs(list(specs))
    cap = max(int(s.memory_bytes) for s in specs)
    workflow = InstallationWorkflow(
        oracle, memory_cap_bytes=cap, n_shapes=len(list(specs)),
        thread_grid=thread_grid, repeats=repeats, **workflow_kwargs)
    bundle = workflow.run(data)
    return bundle, oracle
