"""GEMV: matrix-vector product, ``y <- alpha * A @ x + beta * y``.

A level-2 BLAS routine: ``2*m*n`` FLOPs over ``m*n`` matrix elements
read once — arithmetic intensity ~2 FLOPs/element, firmly memory-bound.
Its optimal thread count therefore saturates at the bandwidth ceiling
(a handful of threads per socket), far below the core count: an even
more extreme version of the paper's small-GEMM observation, and a good
stress test for the generalised thread selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.gemm.counts import DTYPE_BYTES
from repro.gemm.interface import GemmSpec


@dataclass(frozen=True)
class GemvSpec:
    """One GEMV problem: ``y (m) <- alpha * A (m x n) @ x (n) + beta * y``."""

    #: Routine name in the central registry (:mod:`repro.core.routines`).
    routine: ClassVar[str] = "gemv"

    m: int
    n: int
    dtype: str = "float32"
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self):
        for name in ("m", "n"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"GemvSpec.{name} must be a positive integer")
            object.__setattr__(self, name, int(value))
        dtype = str(np.dtype(self.dtype))
        if dtype not in ("float32", "float64"):
            raise ValueError("dtype must be float32 or float64")
        object.__setattr__(self, "dtype", dtype)

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n + 2 * self.m

    @property
    def memory_bytes(self) -> int:
        itemsize = DTYPE_BYTES[self.dtype]
        return itemsize * (self.m * self.n + self.n + 2 * self.m)

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)

    def equivalent_gemm(self) -> GemmSpec:
        """GEMV is GEMM with a single output column."""
        return GemmSpec(m=self.m, k=self.n, n=1, dtype=self.dtype)

    @property
    def work_fraction(self) -> float:
        return 1.0

    @property
    def dims(self) -> tuple:
        """Dimension triple in the GEMM feature convention (m, k, n)."""
        return (self.m, self.n, 1)

    def key(self) -> tuple:
        """Hashable identity, routine name first (never aliases GEMM)."""
        return (self.routine, self.m, self.n, self.dtype)


def gemv_reference(spec: GemvSpec, a: np.ndarray, x: np.ndarray,
                   y: np.ndarray) -> np.ndarray:
    """Reference GEMV with BLAS alpha/beta semantics."""
    if a.shape != (spec.m, spec.n):
        raise ValueError(f"A has shape {a.shape}, expected {(spec.m, spec.n)}")
    if x.shape != (spec.n,):
        raise ValueError(f"x has shape {x.shape}, expected {(spec.n,)}")
    if y.shape != (spec.m,):
        raise ValueError(f"y has shape {y.shape}, expected {(spec.m,)}")
    product = spec.alpha * (a.astype(np.float64) @ x.astype(np.float64))
    if spec.beta != 0.0:
        product = product + spec.beta * y.astype(np.float64)
    y[...] = product.astype(y.dtype)
    return y
