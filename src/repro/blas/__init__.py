"""Other level-2/3 BLAS routines — the paper's stated future work.

Section VII: "In the future, we plan to extend our ML-driven runtime
thread selection approach to other BLAS operations."  This package
implements that extension for two representative routines:

- :mod:`repro.blas.syrk` — symmetric rank-k update ``C <- a*A*A^T + b*C``
  (level 3, compute-bound like GEMM but with half the FLOPs of the
  equivalent product and a triangular output);
- :mod:`repro.blas.gemv` — matrix-vector product ``y <- a*A*x + b*y``
  (level 2, memory-bound — thread counts saturate at the bandwidth
  ceiling far below the core count).

:mod:`repro.blas.adapter` maps each routine onto the machine cost model
(via a GEMM-equivalent plus routine-specific corrections) and exposes the
same ``timed_run`` protocol the ADSALA gatherer and runtime library use,
so the *entire* installation workflow — sampling, feature engineering,
training, selection — is reused unchanged for the new routines.
"""

from repro.blas.syrk import SyrkSpec, syrk_reference
from repro.blas.gemv import GemvSpec, gemv_reference
from repro.blas.trsm import TrsmSpec, trsm_reference
from repro.blas.adapter import RoutineSimulator, install_for_routine

__all__ = [
    "SyrkSpec",
    "syrk_reference",
    "GemvSpec",
    "gemv_reference",
    "TrsmSpec",
    "trsm_reference",
    "RoutineSimulator",
    "install_for_routine",
]
