"""TRSM: triangular solve with multiple right-hand sides.

``X <- alpha * inv(L) @ B`` for a lower-triangular ``L`` (the
left/lower/no-transpose variant; the full BLAS interface has 16
variants which differ only in bookkeeping).  Level-3, GEMM-like FLOP
count (``m^2 * n`` for an ``m x m`` triangle and ``m x n`` RHS), but the
forward-substitution dependency chain limits parallelism over the
``m`` dimension — implementations parallelise over RHS columns, which
the routine adapter reflects by mapping to a GEMM with the triangle
dimension in ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.gemm.counts import DTYPE_BYTES
from repro.gemm.interface import GemmSpec


@dataclass(frozen=True)
class TrsmSpec:
    """One TRSM problem: ``X (m x n) <- alpha * inv(L (m x m)) @ B``."""

    #: Routine name in the central registry (:mod:`repro.core.routines`).
    routine: ClassVar[str] = "trsm"

    m: int
    n: int
    dtype: str = "float32"
    alpha: float = 1.0

    def __post_init__(self):
        for name in ("m", "n"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"TrsmSpec.{name} must be a positive integer")
            object.__setattr__(self, name, int(value))
        dtype = str(np.dtype(self.dtype))
        if dtype not in ("float32", "float64"):
            raise ValueError("dtype must be float32 or float64")
        object.__setattr__(self, "dtype", dtype)

    @property
    def flops(self) -> int:
        """One multiply-add per strictly-lower entry per RHS column,
        plus a divide per diagonal entry per column."""
        return self.m * self.m * self.n + self.m * self.n

    @property
    def memory_bytes(self) -> int:
        itemsize = DTYPE_BYTES[self.dtype]
        return itemsize * (self.m * self.m + 2 * self.m * self.n)

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)

    def equivalent_gemm(self) -> GemmSpec:
        """Parallelism lives in the RHS columns: GEMM (m x m x n)."""
        return GemmSpec(m=self.m, k=self.m, n=self.n, dtype=self.dtype)

    @property
    def work_fraction(self) -> float:
        """Half the equivalent product (the triangle), like SYRK."""
        return 0.5 + 0.5 / self.m

    @property
    def dims(self) -> tuple:
        return (self.m, self.m, self.n)

    def key(self) -> tuple:
        """Hashable identity, routine name first (never aliases GEMM)."""
        return (self.routine, self.m, self.n, self.dtype)


def trsm_reference(spec: TrsmSpec, l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference forward substitution, solving in place into ``b``.

    ``L`` must be lower-triangular with a non-singular diagonal (the
    strictly-upper part is ignored, matching BLAS semantics).
    """
    if l_mat.shape != (spec.m, spec.m):
        raise ValueError(f"L has shape {l_mat.shape}, expected {(spec.m, spec.m)}")
    if b.shape != (spec.m, spec.n):
        raise ValueError(f"B has shape {b.shape}, expected {(spec.m, spec.n)}")
    diag = np.diagonal(l_mat)
    if (np.abs(diag) < 1e-300).any():
        raise ValueError("L has a (near-)singular diagonal")
    tri = np.tril(l_mat).astype(np.float64)
    x = np.empty((spec.m, spec.n), dtype=np.float64)
    rhs = spec.alpha * b.astype(np.float64)
    for i in range(spec.m):
        x[i] = (rhs[i] - tri[i, :i] @ x[:i]) / tri[i, i]
    b[...] = x.astype(b.dtype)
    return b
