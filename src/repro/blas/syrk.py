"""SYRK: symmetric rank-k update, ``C <- alpha * A @ A.T + beta * C``.

A level-3 BLAS routine with GEMM-like blocking and threading structure
but only ``n*(n+1)*k`` useful FLOPs (half of the full ``n x k x n``
product — the output is symmetric and only one triangle is computed).
ADSALA treats it exactly like GEMM: features come from the routine's
dimensions and the thread count; the cost model charges a GEMM of the
same shape scaled by the work fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.gemm.counts import DTYPE_BYTES
from repro.gemm.interface import GemmSpec


@dataclass(frozen=True)
class SyrkSpec:
    """One SYRK problem: ``C (n x n) <- alpha * A (n x k) @ A.T + beta * C``."""

    #: Routine name in the central registry (:mod:`repro.core.routines`).
    routine: ClassVar[str] = "syrk"

    n: int
    k: int
    dtype: str = "float32"
    alpha: float = 1.0
    beta: float = 0.0
    lower: bool = True

    def __post_init__(self):
        for name in ("n", "k"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"SyrkSpec.{name} must be a positive integer")
            object.__setattr__(self, name, int(value))
        dtype = str(np.dtype(self.dtype))
        if dtype not in ("float32", "float64"):
            raise ValueError("dtype must be float32 or float64")
        object.__setattr__(self, "dtype", dtype)

    @property
    def flops(self) -> int:
        """Useful FLOPs: one triangle of the n x n output."""
        return self.n * (self.n + 1) * self.k + self.n * self.n

    @property
    def memory_bytes(self) -> int:
        """Operand footprint: A plus the (full-storage) symmetric C."""
        itemsize = DTYPE_BYTES[self.dtype]
        return itemsize * (self.n * self.k + self.n * self.n)

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)

    def equivalent_gemm(self) -> GemmSpec:
        """The GEMM whose schedule/traffic SYRK's implementation mirrors."""
        return GemmSpec(m=self.n, k=self.k, n=self.n, dtype=self.dtype)

    @property
    def work_fraction(self) -> float:
        """SYRK work relative to its equivalent GEMM (~0.5 for large n)."""
        return (self.n + 1) / (2.0 * self.n)

    @property
    def dims(self) -> tuple:
        """Dimension triple in the GEMM feature convention (m, k, n)."""
        return (self.n, self.k, self.n)

    def key(self) -> tuple:
        """Hashable identity, routine name first (never aliases GEMM)."""
        return (self.routine, self.n, self.k, self.dtype, self.lower)


def syrk_reference(spec: SyrkSpec, a: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Reference SYRK updating only the requested triangle of ``C``.

    The untouched triangle keeps its previous values, matching BLAS
    semantics (callers symmetrise explicitly if they need full storage).
    """
    if a.shape != (spec.n, spec.k):
        raise ValueError(f"A has shape {a.shape}, expected {(spec.n, spec.k)}")
    if c.shape != (spec.n, spec.n):
        raise ValueError(f"C has shape {c.shape}, expected {(spec.n, spec.n)}")
    full = spec.alpha * (a.astype(np.float64) @ a.T.astype(np.float64))
    if spec.beta == 0.0:
        updated = full
    else:
        updated = full + spec.beta * c.astype(np.float64)
    mask = np.tril(np.ones((spec.n, spec.n), dtype=bool)) if spec.lower \
        else np.triu(np.ones((spec.n, spec.n), dtype=bool))
    c[mask] = updated.astype(c.dtype)[mask]
    return c
