"""AdaBoost.R2 for regression (Drucker 1997 / Freund & Schapire).

Serial boosting with weighted resampling: each round fits a base tree on
a weight-proportional bootstrap, measures per-sample *relative* errors,
and re-weights so hard samples are seen more often.  The final
prediction is the classic weighted-median combination.

On the paper's runtime-regression task AdaBoost.R2 performs poorly
(normalised RMSE 0.29-0.42, the worst of the tree family) because the
loss re-weighting is dominated by the heavy right tail of GEMM runtimes;
we reproduce that behaviour rather than "fix" it.
"""

from __future__ import annotations

import numpy as np

from repro.ml._histtree import TreeParams, bin_features, build_hist_tree, quantile_bin_edges
from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


def boost_log_weights(betas) -> np.ndarray:
    """Per-estimator combination weights ``log(1/beta)``, floored."""
    return np.log(1.0 / np.maximum(np.asarray(betas), 1e-300))


def weighted_median(preds: np.ndarray, log_w: np.ndarray) -> np.ndarray:
    """The AdaBoost.R2 weighted-median combination, per sample.

    ``preds`` is ``(n_samples, n_estimators)``; ``log_w`` the
    combination weights.  Shared by the object path below and the
    compiled plan (:mod:`repro.compile.lower`), so the two stay bitwise
    identical structurally rather than by duplication.
    """
    order = np.argsort(preds, axis=1)
    sorted_preds = np.take_along_axis(preds, order, axis=1)
    sorted_w = log_w[order]
    cum = np.cumsum(sorted_w, axis=1)
    half = 0.5 * cum[:, -1:]
    pick = (cum >= half).argmax(axis=1)
    return sorted_preds[np.arange(preds.shape[0]), pick]


class AdaBoostRegressor(BaseEstimator, RegressorMixin):
    """AdaBoost.R2 over shallow histogram trees.

    Parameters
    ----------
    n_estimators:
        Maximum boosting rounds (may stop early if a round's weighted
        loss exceeds 0.5, per the algorithm).
    max_depth:
        Depth of each base tree.
    loss:
        Per-sample loss shaping: "linear", "square" or "exponential".
    learning_rate:
        Shrinks the per-round weight updates.
    """

    def __init__(self, n_estimators: int = 50, max_depth: int = 3,
                 loss: str = "linear", learning_rate: float = 1.0,
                 max_bins: int = 64, random_state=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.loss = loss
        self.learning_rate = learning_rate
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "AdaBoostRegressor":
        if self.loss not in ("linear", "square", "exponential"):
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        n = X.shape[0]
        rng = np.random.default_rng(self.random_state)
        self.edges_ = quantile_bin_edges(X, self.max_bins)
        codes = bin_features(X, self.edges_)
        params = TreeParams(max_depth=self.max_depth, min_samples_leaf=1)

        weights = np.full(n, 1.0 / n)
        self.trees_ = []
        self.betas_ = []
        for _ in range(self.n_estimators):
            # Weighted bootstrap: the classic .R2 resampling step.
            rows = rng.choice(n, size=n, replace=True, p=weights)
            tree = build_hist_tree(codes, self.edges_, g=y, h=np.ones(n),
                                   params=params, sample_indices=rows)
            pred = tree.predict(X)
            err = np.abs(pred - y)
            err_max = err.max()
            if err_max <= 0:
                self.trees_.append(tree)
                self.betas_.append(1e-10)
                break
            rel = err / err_max
            if self.loss == "square":
                rel = rel ** 2
            elif self.loss == "exponential":
                rel = 1.0 - np.exp(-rel)
            avg_loss = float((rel * weights).sum())
            if avg_loss >= 0.5:
                if not self.trees_:  # keep at least one learner
                    self.trees_.append(tree)
                    self.betas_.append(0.5 / (1 - 0.5 + 1e-12))
                break
            beta = avg_loss / (1.0 - avg_loss)
            self.trees_.append(tree)
            self.betas_.append(beta)
            weights = weights * beta ** (self.learning_rate * (1.0 - rel))
            weights /= weights.sum()

        self.n_features_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        preds = np.stack([t.predict(X) for t in self.trees_], axis=1)
        return weighted_median(preds, boost_log_weights(self.betas_))
