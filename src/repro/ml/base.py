"""Estimator base classes and validation helpers.

A deliberately small re-implementation of the scikit-learn estimator
contract: constructor arguments are hyper-parameters, ``fit`` learns
state stored in trailing-underscore attributes, ``get_params`` /
``set_params`` / ``clone`` enable generic hyper-parameter search.
"""

from __future__ import annotations

import inspect

import numpy as np


def check_array(X, name: str = "X", ensure_2d: bool = True) -> np.ndarray:
    """Coerce to a float64 numpy array and validate finiteness."""
    arr = np.asarray(X, dtype=np.float64)
    if ensure_2d:
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
        if arr.shape[0] == 0:
            raise ValueError(f"{name} has no samples")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_X_y(X, y):
    """Validate a feature matrix / target vector pair."""
    X = check_array(X, "X")
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    if not np.isfinite(y).all():
        raise ValueError("y contains NaN or infinite values")
    return X, y


class BaseEstimator:
    """Base class providing parameter introspection and cloning."""

    @classmethod
    def _param_names(cls):
        sig = inspect.signature(cls.__init__)
        return [p.name for p in sig.parameters.values()
                if p.name != "self" and p.kind != p.VAR_KEYWORD]

    def get_params(self) -> dict:
        """Hyper-parameters as a dict (constructor arguments only)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Update hyper-parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"invalid parameter {key!r} for {type(self).__name__}; valid: {sorted(valid)}")
            setattr(self, key, value)
        return self

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr):
            raise RuntimeError(f"{type(self).__name__} is not fitted yet (missing {attr})")

    def __repr__(self):
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class RegressorMixin:
    """Adds the default R^2 ``score`` used by cross-validation."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=np.float64).ravel(), self.predict(X))


def clone(estimator):
    """Fresh unfitted copy with identical hyper-parameters."""
    return type(estimator)(**estimator.get_params())
