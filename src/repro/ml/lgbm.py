"""LightGBM-style gradient boosting: histogram bins + leaf-wise growth.

The distinguishing features versus :class:`repro.ml.xgb.XGBRegressor`
are (1) *leaf-wise* (best-first) tree growth bounded by ``num_leaves``
rather than depth-wise growth bounded by ``max_depth``, and (2) GOSS
(gradient-based one-side sampling): keep the largest-gradient rows and a
random subsample of the rest, re-weighted to stay unbiased.
"""

from __future__ import annotations

import numpy as np

from repro.ml._histtree import TreeParams, bin_features, build_hist_tree, quantile_bin_edges
from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class LGBMRegressor(BaseEstimator, RegressorMixin):
    """Leaf-wise histogram gradient boosting.

    Parameters
    ----------
    num_leaves:
        Leaf cap per tree (the primary complexity control).
    goss_top / goss_other:
        GOSS fractions: keep the top ``goss_top`` fraction of rows by
        |gradient| plus ``goss_other`` sampled from the remainder (with
        the standard ``(1-a)/b`` re-weighting).  Set both to 0 to
        disable GOSS.
    """

    def __init__(self, n_estimators: int = 200, learning_rate: float = 0.1,
                 num_leaves: int = 31, max_depth: int = 0,
                 reg_lambda: float = 1.0, min_child_weight: float = 1.0,
                 goss_top: float = 0.2, goss_other: float = 0.1,
                 max_bins: int = 64, random_state=None):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.num_leaves = num_leaves
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.goss_top = goss_top
        self.goss_other = goss_other
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "LGBMRegressor":
        if self.num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 <= self.goss_top < 1 or not 0 <= self.goss_other < 1:
            raise ValueError("GOSS fractions must be in [0, 1)")
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        self.edges_ = quantile_bin_edges(X, self.max_bins)
        codes = bin_features(X, self.edges_)
        params = TreeParams(
            max_depth=self.max_depth if self.max_depth and self.max_depth > 0 else 48,
            max_leaves=self.num_leaves,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            leaf_shrinkage=self.learning_rate,
        )

        self.base_score_ = float(y.mean())
        pred = np.full(n, self.base_score_)
        self.trees_ = []
        use_goss = self.goss_top > 0 and self.goss_other > 0
        for _ in range(self.n_estimators):
            grad = y - pred
            hess = np.ones(n)
            if use_goss:
                n_top = max(1, int(n * self.goss_top))
                n_other = max(1, int(n * self.goss_other))
                order = np.argsort(-np.abs(grad))
                top = order[:n_top]
                rest = order[n_top:]
                other = rng.choice(rest, size=min(n_other, rest.size), replace=False)
                rows = np.concatenate([top, other])
                # Re-weight the sampled small-gradient rows.
                amplify = (1.0 - self.goss_top) / self.goss_other
                g_fit = grad.copy()
                h_fit = hess.copy()
                g_fit[other] *= amplify
                h_fit[other] *= amplify
            else:
                rows, g_fit, h_fit = None, grad, hess
            tree = build_hist_tree(codes, self.edges_, g=g_fit, h=h_fit,
                                   params=params, sample_indices=rows)
            self.trees_.append(tree)
            pred += tree.predict(X)

        self.n_features_ = d
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        out = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            out += tree.predict(X)
        return out

    @property
    def feature_importances_(self):
        """Gain-based importances, normalised to sum to 1."""
        self._check_fitted("trees_")
        from repro.ml._histtree import ensemble_importances

        return ensemble_importances(self.trees_, self.n_features_)
