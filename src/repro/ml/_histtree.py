"""Shared histogram-based regression tree machinery.

All the ensemble models (random forest, XGBoost-style and LightGBM-style
boosting, AdaBoost's deeper bases) grow trees over *binned* features:
each feature is quantised once into at most ``max_bins`` quantile bins,
and split search at a node reduces to a ``bincount`` per feature plus a
cumulative scan over bins — the core trick of LightGBM, and the only way
a pure-Python tree ensemble can train on the paper's ~40k-row datasets
in reasonable time.

The split objective is the second-order gain used by XGBoost::

    gain = G_L^2/(H_L + lambda) + G_R^2/(H_R + lambda) - G^2/(H + lambda)

With ``g = w * y`` and ``h = w`` this is exactly weighted-variance
reduction (what CART optimises), so one builder serves both the
"plain" ensembles and the gradient-boosted ones.

Trees are stored in flat arrays and predict via vectorised level-by-level
traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def quantile_bin_edges(X: np.ndarray, max_bins: int) -> list:
    """Per-feature bin edges from quantiles of the training data.

    Returns a list of 1-D arrays of interior edges (possibly empty for
    constant features).  Values <= edge fall to the left bin.
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    edges = []
    qs = np.linspace(0, 1, max_bins + 1)[1:-1]
    for j in range(X.shape[1]):
        col = X[:, j]
        e = np.unique(np.quantile(col, qs))
        # Drop edges equal to the max so the last bin is non-empty.
        e = e[e < col.max()] if col.size else e
        edges.append(e.astype(np.float64))
    return edges


def bin_features(X: np.ndarray, edges: list) -> np.ndarray:
    """Quantise features to bin codes given precomputed edges."""
    n, d = X.shape
    if len(edges) != d:
        raise ValueError(f"edges for {len(edges)} features but X has {d}")
    codes = np.empty((n, d), dtype=np.int16)
    for j in range(d):
        codes[:, j] = np.searchsorted(edges[j], X[:, j], side="left")
    return codes


def ensemble_importances(trees, n_features: int) -> np.ndarray:
    """Gain-based feature importances summed over an ensemble.

    Normalised to sum to 1 (all-zeros for a stump-only ensemble).
    """
    total = np.zeros(n_features)
    for tree in trees:
        if tree.feature_gains is not None:
            total += tree.feature_gains
    s = total.sum()
    return total / s if s > 0 else total


@dataclass
class TreeParams:
    """Growth controls shared by every histogram tree."""

    max_depth: int = 6          # <=0 means unlimited (bounded by min sizes)
    max_leaves: int = 0         # 0 means no leaf cap (depth-wise growth)
    min_samples_leaf: int = 1
    min_child_weight: float = 1e-6
    reg_lambda: float = 0.0
    gamma: float = 0.0          # minimum gain to accept a split
    leaf_shrinkage: float = 1.0  # multiplies leaf values (learning rate)


class HistTree:
    """A fitted flat-array regression tree."""

    __slots__ = ("feature", "threshold", "left", "right", "value",
                 "n_nodes", "max_depth_", "feature_gains")

    def __init__(self, feature, threshold, left, right, value, max_depth_,
                 feature_gains=None):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.n_nodes = len(feature)
        self.max_depth_ = max_depth_
        self.feature_gains = feature_gains

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature < 0))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised traversal on raw (un-binned) feature values."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int32)
        for _ in range(self.max_depth_ + 1):
            feat = self.feature[node]
            active = feat >= 0
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            f = feat[rows]
            go_left = X[rows, f] <= self.threshold[node[rows]]
            node[rows] = np.where(go_left, self.left[node[rows]], self.right[node[rows]])
        return self.value[node]

    def decision_path_depth(self, X: np.ndarray) -> np.ndarray:
        """Traversal depth per sample (used by tests on tree shape)."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int32)
        depth = np.zeros(n, dtype=np.int32)
        for _ in range(self.max_depth_ + 1):
            feat = self.feature[node]
            active = feat >= 0
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            f = feat[rows]
            go_left = X[rows, f] <= self.threshold[node[rows]]
            node[rows] = np.where(go_left, self.left[node[rows]], self.right[node[rows]])
            depth[rows] += 1
        return depth


class _NodeTask:
    """A node awaiting a split decision during growth."""

    __slots__ = ("node_id", "indices", "depth", "grad", "hess", "gain", "split")

    def __init__(self, node_id, indices, depth):
        self.node_id = node_id
        self.indices = indices
        self.depth = depth
        self.gain = -np.inf
        self.split = None


def build_hist_tree(codes: np.ndarray, edges: list, g: np.ndarray, h: np.ndarray,
                    params: TreeParams, feature_subset: np.ndarray = None,
                    sample_indices: np.ndarray = None) -> HistTree:
    """Grow one tree on binned features.

    Parameters
    ----------
    codes:
        ``int16`` bin codes from :func:`bin_features` (full training set).
    edges:
        The bin edges, used to convert a winning bin split back to a raw
        threshold so prediction works on raw values.
    g, h:
        Per-sample gradient/hessian statistics (``w*y`` and ``w`` for
        plain variance-reduction trees).
    feature_subset:
        Optional feature indices to consider (column subsampling).
    sample_indices:
        Optional row subset (bootstrap / subsample).
    """
    n_total, n_features = codes.shape
    features = (np.arange(n_features) if feature_subset is None
                else np.asarray(feature_subset, dtype=np.int64))
    root_idx = (np.arange(n_total, dtype=np.int64) if sample_indices is None
                else np.asarray(sample_indices, dtype=np.int64))
    max_depth = params.max_depth if params.max_depth and params.max_depth > 0 else 64

    # Growable node arrays.
    cap = 64
    feature = np.full(cap, -1, dtype=np.int32)
    threshold = np.zeros(cap, dtype=np.float64)
    left = np.full(cap, -1, dtype=np.int32)
    right = np.full(cap, -1, dtype=np.int32)
    value = np.zeros(cap, dtype=np.float64)
    n_nodes = 1

    def ensure_capacity(needed):
        nonlocal cap, feature, threshold, left, right, value
        while needed > cap:
            cap *= 2
            feature = np.resize(feature, cap)
            threshold = np.resize(threshold, cap)
            left = np.resize(left, cap)
            right = np.resize(right, cap)
            value = np.resize(value, cap)

    def leaf_value(idx):
        gs, hs = g[idx].sum(), h[idx].sum()
        return params.leaf_shrinkage * gs / (hs + params.reg_lambda)

    def best_split(task: _NodeTask):
        """Fill task.gain/task.split with the best (feature, bin) split."""
        idx = task.indices
        if idx.size < 2 * params.min_samples_leaf:
            return
        g_node, h_node = g[idx], h[idx]
        G, H = g_node.sum(), h_node.sum()
        parent_score = G * G / (H + params.reg_lambda)
        best_gain, best = params.gamma, None
        for f in features:
            c = codes[idx, f]
            n_bins = len(edges[f]) + 1
            if n_bins < 2:
                continue
            hist_g = np.bincount(c, weights=g_node, minlength=n_bins)
            hist_h = np.bincount(c, weights=h_node, minlength=n_bins)
            hist_n = np.bincount(c, minlength=n_bins)
            Gl = np.cumsum(hist_g)[:-1]
            Hl = np.cumsum(hist_h)[:-1]
            Nl = np.cumsum(hist_n)[:-1]
            Gr, Hr, Nr = G - Gl, H - Hl, idx.size - Nl
            valid = ((Nl >= params.min_samples_leaf) & (Nr >= params.min_samples_leaf)
                     & (Hl >= params.min_child_weight) & (Hr >= params.min_child_weight))
            if not valid.any():
                continue
            denom_l = np.maximum(Hl + params.reg_lambda, 1e-300)
            denom_r = np.maximum(Hr + params.reg_lambda, 1e-300)
            score = np.where(valid, Gl * Gl / denom_l + Gr * Gr / denom_r, -np.inf)
            b = int(np.argmax(score))
            gain = score[b] - parent_score
            if gain > best_gain:
                best_gain, best = gain, (int(f), b)
        if best is not None:
            task.gain = best_gain
            task.split = best

    feature_gains = np.zeros(n_features)

    def apply_split(task: _NodeTask):
        nonlocal n_nodes
        f, b = task.split
        feature_gains[f] += max(task.gain, 0.0)
        idx = task.indices
        go_left = codes[idx, f] <= b
        left_idx, right_idx = idx[go_left], idx[~go_left]
        ensure_capacity(n_nodes + 2)
        lid, rid = n_nodes, n_nodes + 1
        n_nodes += 2
        feature[task.node_id] = f
        threshold[task.node_id] = edges[f][b] if b < len(edges[f]) else edges[f][-1]
        left[task.node_id], right[task.node_id] = lid, rid
        for nid in (lid, rid):
            feature[nid] = -1
            left[nid] = right[nid] = -1
        value[lid] = leaf_value(left_idx)
        value[rid] = leaf_value(right_idx)
        return (_NodeTask(lid, left_idx, task.depth + 1),
                _NodeTask(rid, right_idx, task.depth + 1))

    root = _NodeTask(0, root_idx, 0)
    value[0] = leaf_value(root_idx)
    max_depth_seen = 0

    if params.max_leaves and params.max_leaves > 0:
        # Leaf-wise (best-first) growth, LightGBM style.
        best_split(root)
        frontier = [root] if root.split is not None else []
        n_leaves = 1
        while frontier and n_leaves < params.max_leaves:
            task = max(frontier, key=lambda t: t.gain)
            frontier.remove(task)
            lchild, rchild = apply_split(task)
            n_leaves += 1
            max_depth_seen = max(max_depth_seen, task.depth + 1)
            for child in (lchild, rchild):
                if child.depth < max_depth:
                    best_split(child)
                    if child.split is not None:
                        frontier.append(child)
    else:
        # Depth-wise growth.
        stack = [root]
        while stack:
            task = stack.pop()
            if task.depth >= max_depth:
                continue
            best_split(task)
            if task.split is None:
                continue
            lchild, rchild = apply_split(task)
            max_depth_seen = max(max_depth_seen, task.depth + 1)
            stack.extend((lchild, rchild))

    return HistTree(feature[:n_nodes].copy(), threshold[:n_nodes].copy(),
                    left[:n_nodes].copy(), right[:n_nodes].copy(),
                    value[:n_nodes].copy(), max_depth_seen, feature_gains)
