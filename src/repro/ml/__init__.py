"""From-scratch machine-learning substrate (numpy only).

The paper's candidate models (Table I) come from scikit-learn, XGBoost
and LightGBM; none of those are available here, so this package
implements every candidate the paper trains, plus the model-selection
machinery around them:

Linear family
    :class:`LinearRegression`, :class:`Ridge`, :class:`ElasticNet`
    (coordinate descent), :class:`BayesianRidge` (evidence maximisation).
Tree family
    :class:`DecisionTreeRegressor` (exact-greedy CART),
    :class:`RandomForestRegressor`, :class:`AdaBoostRegressor`
    (AdaBoost.R2), :class:`XGBRegressor` (second-order boosting with
    regularised leaf weights), :class:`LGBMRegressor` (histogram bins +
    leaf-wise growth).
Other
    :class:`KNeighborsRegressor`, :class:`LinearSVR`.
Infrastructure
    metrics, train/test splitting with stratification on a continuous
    target, K-fold cross-validation, grid/random hyper-parameter search,
    learning curves, and the candidate-model registry used by ADSALA's
    installation workflow.

The estimator API intentionally mirrors scikit-learn (``fit`` /
``predict`` / ``get_params`` / ``set_params``) so the ADSALA core reads
like the paper describes.
"""

from repro.ml.base import BaseEstimator, RegressorMixin, clone, check_array, check_X_y
from repro.ml.metrics import (mean_absolute_error, mean_squared_error,
                              normalised_rmse, r2_score, rmse)
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.elasticnet import ElasticNet
from repro.ml.bayes import BayesianRidge
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.xgb import XGBRegressor
from repro.ml.lgbm import LGBMRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.svr import LinearSVR
from repro.ml.model_selection import (KFold, cross_val_score, stratify_bins,
                                      train_test_split)
from repro.ml.tuning import GridSearchCV, ParameterGrid, RandomizedSearchCV
from repro.ml.learning_curve import learning_curve
from repro.ml.registry import CandidateModel, candidate_models

__all__ = [
    "BaseEstimator", "RegressorMixin", "clone", "check_array", "check_X_y",
    "mean_absolute_error", "mean_squared_error", "normalised_rmse",
    "r2_score", "rmse",
    "LinearRegression", "Ridge", "ElasticNet", "BayesianRidge",
    "DecisionTreeRegressor", "RandomForestRegressor", "AdaBoostRegressor",
    "XGBRegressor", "LGBMRegressor", "KNeighborsRegressor", "LinearSVR",
    "KFold", "cross_val_score", "stratify_bins", "train_test_split",
    "GridSearchCV", "ParameterGrid", "RandomizedSearchCV",
    "learning_curve",
    "CandidateModel", "candidate_models",
]
