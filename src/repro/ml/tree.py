"""Exact-greedy CART regression tree.

The standalone Decision Tree candidate of the paper's Table I.  Unlike
the histogram trees used inside the ensembles, split search here is
exact: every distinct value boundary of every feature is considered via
a sort + prefix-sum scan, which is what classic CART (and scikit-learn's
``DecisionTreeRegressor``) does.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.value = value


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or hit
        the minimum-size constraints.
    min_samples_split / min_samples_leaf:
        Classic pre-pruning controls.
    max_features:
        If set, the number of random features examined per split (used
        when embedded in ensembles); ``None`` examines all.
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(self, max_depth=None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features=None, random_state=None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        if sample_weight is None:
            w = np.ones_like(y)
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.shape != y.shape:
                raise ValueError("sample_weight shape mismatch")
            if (w < 0).any() or w.sum() <= 0:
                raise ValueError("sample_weight must be non-negative with positive sum")
        if self.min_samples_split < 2 or self.min_samples_leaf < 1:
            raise ValueError("min_samples_split >= 2 and min_samples_leaf >= 1 required")
        self._rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        max_depth = self.max_depth if self.max_depth is not None else 1 << 30
        self.root_ = self._build(X, y, w, np.arange(len(y)), 0, max_depth)
        self.depth_ = self._measure_depth(self.root_)
        return self

    def _n_split_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(self.n_features_)))
            if self.max_features == "log2":
                return max(1, int(np.log2(self.n_features_)) or 1)
            raise ValueError(f"unknown max_features {self.max_features!r}")
        return max(1, min(int(self.max_features), self.n_features_))

    def _build(self, X, y, w, idx, depth, max_depth) -> _Node:
        w_node = w[idx]
        y_node = y[idx]
        wsum = w_node.sum()
        node = _Node(value=float((w_node * y_node).sum() / wsum))
        if (depth >= max_depth or idx.size < self.min_samples_split
                or np.all(y_node == y_node[0])):
            return node

        n_try = self._n_split_features()
        if n_try < self.n_features_:
            features = self._rng.choice(self.n_features_, size=n_try, replace=False)
        else:
            features = np.arange(self.n_features_)

        best_gain, best = 0.0, None
        parent_score = (w_node * y_node).sum() ** 2 / wsum
        for f in features:
            col = X[idx, f]
            order = np.argsort(col, kind="stable")
            cs = col[order]
            ys = y_node[order]
            ws = w_node[order]
            wy = np.cumsum(ws * ys)[:-1]
            wl = np.cumsum(ws)[:-1]
            nl = np.arange(1, idx.size)
            # Valid split positions: value actually changes and both
            # children satisfy min_samples_leaf.
            boundary = cs[1:] != cs[:-1]
            valid = (boundary & (nl >= self.min_samples_leaf)
                     & (idx.size - nl >= self.min_samples_leaf))
            if not valid.any():
                continue
            wr = wsum - wl
            score = np.where(valid & (wl > 0) & (wr > 0),
                             wy ** 2 / np.maximum(wl, 1e-300)
                             + ( (w_node * y_node).sum() - wy) ** 2 / np.maximum(wr, 1e-300),
                             -np.inf)
            pos = int(np.argmax(score))
            gain = score[pos] - parent_score
            if gain > best_gain + 1e-12:
                best_gain = gain
                best = (int(f), 0.5 * (cs[pos] + cs[pos + 1]))

        if best is None:
            return node

        node.feature, node.threshold = best
        go_left = X[idx, node.feature] <= node.threshold
        left_idx, right_idx = idx[go_left], idx[~go_left]
        if left_idx.size == 0 or right_idx.size == 0:  # numeric edge case
            node.feature = -1
            return node
        node.left = self._build(X, y, w, left_idx, depth + 1, max_depth)
        node.right = self._build(X, y, w, right_idx, depth + 1, max_depth)
        return node

    def _measure_depth(self, node, depth=0) -> int:
        if node.feature < 0:
            return depth
        return max(self._measure_depth(node.left, depth + 1),
                   self._measure_depth(node.right, depth + 1))

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        self._check_fitted("root_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        out = np.empty(X.shape[0])
        # Iterative per-chunk traversal keeps recursion off the hot path.
        for i in range(X.shape[0]):
            node = self.root_
            while node.feature >= 0:
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def n_leaves_(self) -> int:
        self._check_fitted("root_")

        def count(node):
            if node.feature < 0:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)
