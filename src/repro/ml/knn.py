"""k-nearest-neighbours regression (brute force).

Included because the paper's Table I lists it as a candidate and
Section VI-B notes that despite reasonable RMSE its slow evaluation
disqualifies it — which a brute-force implementation demonstrates
honestly: every prediction scans the training set.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class KNeighborsRegressor(BaseEstimator, RegressorMixin):
    """Brute-force kNN with optional inverse-distance weighting.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours averaged per query.
    weights:
        "uniform" or "distance" (inverse-distance weighting).
    chunk_size:
        Queries processed per distance-matrix block, bounding memory.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform",
                 chunk_size: int = 256):
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.chunk_size = chunk_size

    def fit(self, X, y) -> "KNeighborsRegressor":
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {self.weights!r}")
        X, y = check_X_y(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size {X.shape[0]}")
        self.X_ = X
        self.y_ = y
        self._sq_norms = np.einsum("ij,ij->i", X, X)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("X_")
        X = check_array(X)
        if X.shape[1] != self.X_.shape[1]:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.X_.shape[1]}")
        out = np.empty(X.shape[0])
        k = self.n_neighbors
        for start in range(0, X.shape[0], self.chunk_size):
            q = X[start:start + self.chunk_size]
            # ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2 (vectorised).
            d2 = (np.einsum("ij,ij->i", q, q)[:, None]
                  - 2.0 * q @ self.X_.T + self._sq_norms[None, :])
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            rows = np.arange(q.shape[0])[:, None]
            if self.weights == "uniform":
                out[start:start + q.shape[0]] = self.y_[nn].mean(axis=1)
            else:
                dist = np.sqrt(d2[rows, nn])
                w = 1.0 / np.maximum(dist, 1e-12)
                # Exact matches dominate entirely.
                exact = dist <= 1e-12
                w[exact.any(axis=1)] = 0.0
                w[exact] = 1.0
                out[start:start + q.shape[0]] = (w * self.y_[nn]).sum(axis=1) / w.sum(axis=1)
        return out
