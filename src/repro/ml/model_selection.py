"""Data splitting and cross-validation.

The paper (Section IV-C) uses stratified sampling for the train/test and
validation splits "to ensure a similar distribution in the train set,
test set, and validation sets", and k-fold cross-validation (rather than
leave-one-out) for hyper-parameter tuning.  The target here is
continuous (GEMM runtime), so stratification works on quantile bins of
the target, which is the standard adaptation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import clone


def stratify_bins(y, n_bins: int = 10) -> np.ndarray:
    """Quantile-bin a continuous target for stratified splitting."""
    y = np.asarray(y, dtype=np.float64).ravel()
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    n_bins = min(n_bins, max(2, y.size // 2))
    edges = np.quantile(y, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.searchsorted(np.unique(edges), y, side="left")


def train_test_split(X, y, test_size: float = 0.3, stratify=None,
                     random_state=None):
    """Split arrays into train and test subsets.

    Parameters
    ----------
    test_size:
        Fraction of samples in the test set.
    stratify:
        Optional label array (use :func:`stratify_bins` on a continuous
        target); splitting then preserves per-label proportions.

    Returns ``X_train, X_test, y_train, y_test``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if y.shape[0] != n:
        raise ValueError("X and y disagree on sample count")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)

    if stratify is None:
        perm = rng.permutation(n)
        n_test = max(1, int(round(n * test_size)))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
    else:
        labels = np.asarray(stratify).ravel()
        if labels.shape[0] != n:
            raise ValueError("stratify labels disagree on sample count")
        test_parts, train_parts = [], []
        for lab in np.unique(labels):
            members = np.nonzero(labels == lab)[0]
            members = rng.permutation(members)
            n_test = int(round(members.size * test_size))
            # Keep at least one sample on each side when possible.
            if members.size >= 2:
                n_test = min(max(n_test, 1), members.size - 1)
            test_parts.append(members[:n_test])
            train_parts.append(members[n_test:])
        test_idx = np.concatenate(test_parts)
        train_idx = np.concatenate(train_parts)
        rng.shuffle(test_idx)
        rng.shuffle(train_idx)

    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validator with optional shuffling and stratification.

    ``split`` yields ``(train_indices, val_indices)`` pairs.  When
    ``stratify_on`` labels are provided, each fold receives a
    proportional share of every label (stratified k-fold).
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, stratify_on=None):
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = np.random.default_rng(self.random_state)

        if stratify_on is None:
            idx = rng.permutation(n) if self.shuffle else np.arange(n)
            folds = np.array_split(idx, self.n_splits)
        else:
            labels = np.asarray(stratify_on).ravel()
            folds = [[] for _ in range(self.n_splits)]
            for lab in np.unique(labels):
                members = np.nonzero(labels == lab)[0]
                if self.shuffle:
                    members = rng.permutation(members)
                for i, chunk in enumerate(np.array_split(members, self.n_splits)):
                    folds[i].extend(chunk.tolist())
            folds = [np.asarray(sorted(f), dtype=np.int64) for f in folds]

        for i in range(self.n_splits):
            val = np.asarray(folds[i], dtype=np.int64)
            train = np.concatenate([np.asarray(folds[j], dtype=np.int64)
                                    for j in range(self.n_splits) if j != i])
            yield train, val


def fold_indices(cv: KFold, X, stratify_on=None) -> list:
    """Materialise a cross-validator's folds as index-array pairs.

    A :class:`KFold` with a fixed ``random_state`` yields the same folds
    on every ``split`` call; materialising them once lets many workers
    (the staged pipeline's parallel tuner) score (configuration, fold)
    work items against literally identical splits, which is a
    precondition for serial/parallel score equality.
    """
    return list(cv.split(X, stratify_on=stratify_on))


def cross_val_score(estimator, X, y, cv: KFold = None, scoring=None,
                    stratify_on=None, folds=None) -> np.ndarray:
    """Per-fold scores for an estimator (higher is better).

    ``scoring`` is a callable ``(y_true, y_pred) -> float``; the default
    is R^2.  The estimator is cloned per fold so no state leaks.
    ``folds`` (pre-materialised via :func:`fold_indices`) bypasses
    ``cv`` entirely — pass it when several scorers must agree on the
    exact splits.
    """
    from repro.ml.metrics import r2_score

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if folds is None:
        cv = cv or KFold(n_splits=5, shuffle=True, random_state=0)
        folds = fold_indices(cv, X, stratify_on=stratify_on)
    scoring = scoring or r2_score
    scores = []
    for train_idx, val_idx in folds:
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scoring(y[val_idx], model.predict(X[val_idx])))
    return np.asarray(scores)
