"""Learning curves: validation performance versus training-set size.

Section VI-A of the paper: "Learning curves for the training and
validation loss were built to determine how much data was necessary to
train an accurate machine learning model", concluding 1763 samples
suffice below 500 MB.  This utility regenerates that analysis.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import clone
from repro.ml.metrics import rmse
from repro.ml.model_selection import KFold


def learning_curve(estimator, X, y, train_sizes=None, cv: KFold = None,
                   scoring=None, random_state=None):
    """Train/validation score versus number of training samples.

    For each requested size, every CV fold's training split is truncated
    (after shuffling) to that size, the model is fitted and scored on
    both the truncated train split and the validation split.

    Returns
    -------
    sizes : ndarray of actual training sizes used
    train_scores : ndarray (n_sizes, n_folds)
    val_scores : ndarray (n_sizes, n_folds)
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    cv = cv or KFold(n_splits=3, shuffle=True, random_state=0)
    scoring = scoring or (lambda yt, yp: rmse(yt, yp))
    if train_sizes is None:
        train_sizes = np.linspace(0.1, 1.0, 5)
    rng = np.random.default_rng(random_state)

    splits = list(cv.split(X))
    min_train = min(len(tr) for tr, _ in splits)
    sizes = []
    for s in train_sizes:
        n = int(round(s * min_train)) if 0 < s <= 1 else int(s)
        sizes.append(int(np.clip(n, 2, min_train)))
    sizes = sorted(set(sizes))

    train_scores = np.empty((len(sizes), len(splits)))
    val_scores = np.empty((len(sizes), len(splits)))
    for i, size in enumerate(sizes):
        for j, (train_idx, val_idx) in enumerate(splits):
            subset = rng.permutation(train_idx)[:size]
            model = clone(estimator)
            model.fit(X[subset], y[subset])
            train_scores[i, j] = scoring(y[subset], model.predict(X[subset]))
            val_scores[i, j] = scoring(y[val_idx], model.predict(X[val_idx]))
    return np.asarray(sizes), train_scores, val_scores
