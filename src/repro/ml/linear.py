"""Ordinary least squares and ridge regression.

The paper's linear candidates exist mainly to bound the accuracy/speed
trade-off: they evaluate in microseconds but cannot represent the highly
non-linear runtime surface, so their normalised RMSE sits near 1.0
(Tables III/IV).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via numpy's lstsq (SVD-based, rank-safe)."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            coef, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=None)
            self.coef_ = coef
            self.intercept_ = float(y_mean - x_mean @ coef)
        else:
            coef, *_ = np.linalg.lstsq(X, y, rcond=None)
            self.coef_ = coef
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularised least squares, solved in closed form.

    Solves ``(X^T X + alpha I) w = X^T y`` on centred data so the
    intercept is not penalised.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "Ridge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_
