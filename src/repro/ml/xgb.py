"""XGBoost-style gradient boosting (Chen & Guestrin 2016).

Second-order gradient boosting over histogram trees with regularised
leaf weights.  For squared loss the gradients are simply the residuals
and all hessians are one, but the regularisation (``reg_lambda``,
``gamma``), shrinkage, and row/column subsampling all behave as in the
reference implementation — this is the model the paper selects on both
platforms for its combination of best RMSE and microsecond-scale
evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.ml._histtree import TreeParams, bin_features, build_hist_tree, quantile_bin_edges
from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class XGBRegressor(BaseEstimator, RegressorMixin):
    """Regularised second-order boosting for squared loss.

    Parameters
    ----------
    n_estimators / learning_rate / max_depth:
        The classic boosting trio.
    reg_lambda:
        L2 penalty on leaf weights.
    gamma:
        Minimum split gain (complexity pruning).
    subsample / colsample_bytree:
        Stochastic row / feature sampling per tree.
    early_stopping_rounds:
        If set together with ``eval_fraction``, training stops when the
        held-out loss fails to improve for that many rounds.
    """

    def __init__(self, n_estimators: int = 200, learning_rate: float = 0.1,
                 max_depth: int = 6, reg_lambda: float = 1.0, gamma: float = 0.0,
                 subsample: float = 1.0, colsample_bytree: float = 1.0,
                 min_child_weight: float = 1.0, max_bins: int = 64,
                 early_stopping_rounds: int = None, eval_fraction: float = 0.1,
                 random_state=None):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.min_child_weight = min_child_weight
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.eval_fraction = eval_fraction
        self.random_state = random_state

    def fit(self, X, y) -> "XGBRegressor":
        if not 0 < self.subsample <= 1 or not 0 < self.colsample_bytree <= 1:
            raise ValueError("subsample and colsample_bytree must be in (0, 1]")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape

        eval_idx = None
        if self.early_stopping_rounds:
            n_eval = max(1, int(n * self.eval_fraction))
            perm = rng.permutation(n)
            eval_idx, train_idx = perm[:n_eval], perm[n_eval:]
        else:
            train_idx = np.arange(n)

        self.edges_ = quantile_bin_edges(X, self.max_bins)
        codes = bin_features(X, self.edges_)
        params = TreeParams(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            leaf_shrinkage=self.learning_rate,
        )

        self.base_score_ = float(y[train_idx].mean())
        pred = np.full(n, self.base_score_)
        self.trees_ = []
        best_eval, rounds_since_best = np.inf, 0
        n_cols = max(1, int(round(d * self.colsample_bytree)))
        n_rows = max(2, int(round(train_idx.size * self.subsample)))

        for _ in range(self.n_estimators):
            residual = y - pred  # gradient of squared loss (negated)
            rows = (train_idx if n_rows >= train_idx.size
                    else rng.choice(train_idx, size=n_rows, replace=False))
            feats = rng.choice(d, size=n_cols, replace=False) if n_cols < d else None
            tree = build_hist_tree(codes, self.edges_, g=residual, h=np.ones(n),
                                   params=params, feature_subset=feats,
                                   sample_indices=rows)
            self.trees_.append(tree)
            pred += tree.predict(X)
            if eval_idx is not None:
                eval_loss = float(np.mean((y[eval_idx] - pred[eval_idx]) ** 2))
                if eval_loss < best_eval - 1e-12:
                    best_eval, rounds_since_best = eval_loss, 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break

        self.n_features_ = d
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        out = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            out += tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting round (for diagnostics)."""
        self._check_fitted("trees_")
        X = check_array(X)
        out = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            out = out + tree.predict(X)
            yield out.copy()

    @property
    def feature_importances_(self):
        """Gain-based importances, normalised to sum to 1."""
        self._check_fitted("trees_")
        from repro.ml._histtree import ensemble_importances

        return ensemble_importances(self.trees_, self.n_features_)
