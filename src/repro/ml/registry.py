"""The candidate-model registry of the paper's Table I.

Maps each candidate name to a factory and a hyper-parameter search
space, scaled by a ``budget`` knob so unit tests can run the whole
selection loop in seconds while benchmark runs use fuller ensembles.

The names follow the rows of Tables III/IV so the benchmark harness can
emit identically-labelled tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.bayes import BayesianRidge
from repro.ml.elasticnet import ElasticNet
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.lgbm import LGBMRegressor
from repro.ml.linear import LinearRegression
from repro.ml.svr import LinearSVR
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.xgb import XGBRegressor


@dataclass
class CandidateModel:
    """One entry of the model-selection bake-off."""

    name: str
    factory: type
    defaults: dict = field(default_factory=dict)
    search_space: dict = field(default_factory=dict)
    family: str = "other"

    def build(self, **overrides):
        """Instantiate with defaults overridden by ``overrides``."""
        params = dict(self.defaults)
        params.update(overrides)
        return self.factory(**params)


def candidate_models(budget: str = "full", include_extra: bool = False,
                     random_state: int = 0) -> list:
    """The paper's candidate list with tuning search spaces.

    Parameters
    ----------
    budget:
        "full" approximates the paper's model sizes; "fast" shrinks
        ensembles for tests and CI.
    include_extra:
        Also return the kNN and SVR candidates that Table I lists but
        the paper rules out before the final comparison.
    """
    if budget not in ("full", "fast"):
        raise ValueError("budget must be 'full' or 'fast'")
    fast = budget == "fast"
    n_small = 20 if fast else 100
    n_boost = 30 if fast else 200

    models = [
        CandidateModel(
            name="Linear Regression",
            factory=LinearRegression,
            search_space={"fit_intercept": [True]},
            family="linear",
        ),
        CandidateModel(
            name="ElasticNet",
            factory=ElasticNet,
            defaults={"max_iter": 300 if fast else 1000},
            search_space={"alpha": [0.001, 0.01, 0.1], "l1_ratio": [0.2, 0.5, 0.8]},
            family="linear",
        ),
        CandidateModel(
            name="Bayes Regression",
            factory=BayesianRidge,
            search_space={"max_iter": [100 if fast else 300]},
            family="linear",
        ),
        CandidateModel(
            name="Decision Tree",
            factory=DecisionTreeRegressor,
            defaults={"random_state": random_state},
            search_space={"max_depth": [6, 10] if fast else [6, 10, 14, None],
                          "min_samples_leaf": [1, 4]},
            family="tree",
        ),
        CandidateModel(
            name="Random Forest",
            factory=RandomForestRegressor,
            # Deep, many-leaved trees: the classic unbounded regression
            # forest.  This is what gives the paper's RF its excellent
            # RMSE *and* its ruinous evaluation time (Tables III/IV).
            defaults={"n_estimators": 40 if fast else 100,
                      "max_leaves": 1024, "min_samples_leaf": 1,
                      "random_state": random_state},
            search_space={"min_samples_leaf": [1, 2]},
            family="tree",
        ),
        CandidateModel(
            name="AdaBoost",
            factory=AdaBoostRegressor,
            defaults={"n_estimators": 15 if fast else 50, "random_state": random_state},
            search_space={"max_depth": [3, 5],
                          "loss": ["linear", "square"]},
            family="tree",
        ),
        CandidateModel(
            name="XGBoost",
            factory=XGBRegressor,
            defaults={"n_estimators": n_boost, "random_state": random_state},
            search_space={"max_depth": [4, 6] if fast else [4, 6, 8],
                          "learning_rate": [0.1] if fast else [0.05, 0.1, 0.2],
                          "reg_lambda": [1.0]},
            family="tree",
        ),
        CandidateModel(
            name="LightGBM",
            factory=LGBMRegressor,
            defaults={"n_estimators": n_boost, "random_state": random_state},
            search_space={"num_leaves": [15, 31] if fast else [15, 31, 63],
                          "learning_rate": [0.1] if fast else [0.05, 0.1, 0.2]},
            family="tree",
        ),
    ]
    if include_extra:
        models.extend([
            CandidateModel(
                name="KNN Regressor",
                factory=KNeighborsRegressor,
                search_space={"n_neighbors": [3, 5, 9],
                              "weights": ["uniform", "distance"]},
                family="other",
            ),
            CandidateModel(
                name="SVM Regressor",
                factory=LinearSVR,
                defaults={"n_epochs": 10 if fast else 30,
                          "random_state": random_state},
                search_space={"C": [0.1, 1.0, 10.0]},
                family="other",
            ),
        ])
    return models
