"""Bayesian ridge regression via evidence (type-II ML) maximisation.

Implements the classic Tipping/Bishop iterative scheme the paper's
"Bayes Regression" candidate refers to: a Gaussian prior ``w ~ N(0,
alpha^-1 I)`` and noise ``y ~ N(Xw, beta^-1)``, with ``alpha`` and
``beta`` re-estimated from the data until convergence.  Evaluation is a
single dot product, which is why the paper measures it as the fastest
model on both platforms (7.9 us on Setonix, Table III).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class BayesianRidge(BaseEstimator, RegressorMixin):
    """Evidence-maximising Bayesian linear regression.

    Parameters
    ----------
    max_iter, tol:
        Hyper-parameter re-estimation loop controls.
    alpha_init, beta_init:
        Optional starting precisions (prior / noise); sensible defaults
        are derived from the data when omitted.
    """

    def __init__(self, max_iter: int = 300, tol: float = 1e-4,
                 alpha_init: float = None, beta_init: float = None):
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_init = alpha_init
        self.beta_init = beta_init

    def fit(self, X, y) -> "BayesianRidge":
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape
        x_mean, y_mean = X.mean(axis=0), y.mean()
        Xc, yc = X - x_mean, y - y_mean

        y_var = float(np.var(yc))
        alpha = self.alpha_init if self.alpha_init is not None else 1.0
        beta = self.beta_init if self.beta_init is not None else (
            1.0 / y_var if y_var > 0 else 1.0)

        # Work in the eigenbasis of X^T X so each iteration is O(d^2).
        gram = Xc.T @ Xc
        eigvals, eigvecs = np.linalg.eigh(gram)
        eigvals = np.clip(eigvals, 0.0, None)
        Xty = Xc.T @ yc
        proj = eigvecs.T @ Xty

        mean = np.zeros(n_features)
        for _ in range(self.max_iter):
            # Posterior mean in eigenbasis: (alpha + beta*lam)^-1 beta proj
            denom = alpha + beta * eigvals
            mean_eig = beta * proj / denom
            mean_new = eigvecs @ mean_eig
            gamma = float(np.sum(beta * eigvals / denom))  # effective dof
            residual = yc - Xc @ mean_new
            rss = float(residual @ residual)
            # Clamp the precision re-estimates: degenerate data (constant
            # features or targets) drives gamma and rss to zero, and the
            # raw updates would diverge to 0 or infinity.
            alpha_new = float(np.clip(
                gamma / max(float(mean_new @ mean_new), 1e-12), 1e-10, 1e10))
            beta_new = float(np.clip(
                max(n_samples - gamma, 1e-12) / max(rss, 1e-12), 1e-10, 1e10))
            converged = (abs(np.log(alpha_new / alpha)) < self.tol
                         and abs(np.log(beta_new / beta)) < self.tol)
            alpha, beta, mean = alpha_new, beta_new, mean_new
            if converged:
                break

        self.alpha_ = alpha
        self.beta_ = beta
        self.coef_ = mean
        self.intercept_ = float(y_mean - x_mean @ mean)
        # Posterior covariance for predictive uncertainty.
        self.sigma_ = eigvecs @ np.diag(1.0 / (alpha + beta * eigvals)) @ eigvecs.T
        return self

    def predict(self, X, return_std: bool = False):
        self._check_fitted("coef_")
        X = check_array(X)
        mean = X @ self.coef_ + self.intercept_
        if not return_std:
            return mean
        var = 1.0 / self.beta_ + np.einsum("ij,jk,ik->i", X, self.sigma_, X)
        return mean, np.sqrt(np.clip(var, 0.0, None))
