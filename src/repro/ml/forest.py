"""Random forest regressor over histogram trees.

Bootstrap resampling plus per-tree feature subsampling, averaged at
prediction time (Breiman 2001, the paper's reference [33]).  Trees are
grown deep by default (no depth cap, small leaves), which is what makes
the forest accurate but *slow to evaluate* — the property that, in the
paper's Tables III/IV, erases its speedup despite the second-best RMSE.
"""

from __future__ import annotations

import numpy as np

from repro.ml._histtree import TreeParams, bin_features, build_hist_tree, quantile_bin_edges
from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Bagged ensemble of deep variance-reduction trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Depth cap per tree; ``None`` grows until ``min_samples_leaf``.
    max_features:
        Features considered per tree ("sqrt", "log2", int or None=all).
    bootstrap:
        Sample rows with replacement per tree.
    max_leaves:
        Leaf cap per tree, grown best-first.  Bounds the cost of deep
        forests while splitting where the variance reduction is largest;
        0 disables the cap (classic unbounded CART forest).
    max_bins:
        Histogram resolution for split finding.
    """

    def __init__(self, n_estimators: int = 100, max_depth=None,
                 min_samples_leaf: int = 2, max_features=None,
                 bootstrap: bool = True, max_leaves: int = 256,
                 max_bins: int = 64, random_state=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_leaves = max_leaves
        self.max_bins = max_bins
        self.random_state = random_state

    def _n_features_per_tree(self, d: int) -> int:
        if self.max_features is None:
            return d
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(d)))
            if self.max_features == "log2":
                return max(1, int(np.log2(d)) or 1)
            raise ValueError(f"unknown max_features {self.max_features!r}")
        return max(1, min(int(self.max_features), d))

    def fit(self, X, y) -> "RandomForestRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        self.edges_ = quantile_bin_edges(X, self.max_bins)
        codes = bin_features(X, self.edges_)
        params = TreeParams(
            max_depth=self.max_depth if self.max_depth else 0,
            max_leaves=self.max_leaves,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=0.0,
        )
        h = np.ones(n)
        k = self._n_features_per_tree(d)
        self.trees_ = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n) if self.bootstrap else None
            feats = rng.choice(d, size=k, replace=False) if k < d else None
            tree = build_hist_tree(codes, self.edges_, g=y, h=h, params=params,
                                   feature_subset=feats, sample_indices=rows)
            self.trees_.append(tree)
        self.n_features_ = d
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"X has {X.shape[1]} features, expected {self.n_features_}")
        out = np.zeros(X.shape[0])
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)

    @property
    def feature_importances_(self):
        """Gain-based importances, normalised to sum to 1."""
        self._check_fitted("trees_")
        from repro.ml._histtree import ensemble_importances

        return ensemble_importances(self.trees_, self.n_features_)
