"""ElasticNet regression via cyclic coordinate descent.

Minimises::

    (1 / 2n) * ||y - Xw - b||^2 + alpha * l1_ratio * ||w||_1
        + 0.5 * alpha * (1 - l1_ratio) * ||w||^2

which matches scikit-learn's objective, so hyper-parameter ranges from
the literature transfer directly.  The solver is the standard cyclic
coordinate descent with the soft-thresholding update; features are
cycled until the largest coefficient update falls below ``tol``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


def soft_threshold(value: float, threshold: float) -> float:
    """The proximal operator of the L1 norm."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNet(BaseEstimator, RegressorMixin):
    """L1+L2 regularised linear regression.

    Parameters
    ----------
    alpha:
        Overall regularisation strength.
    l1_ratio:
        Mix between L1 (1.0 = lasso) and L2 (0.0 = ridge).
    max_iter, tol:
        Coordinate-descent stopping controls.
    """

    def __init__(self, alpha: float = 1.0, l1_ratio: float = 0.5,
                 fit_intercept: bool = True, max_iter: int = 1000, tol: float = 1e-6):
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "ElasticNet":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= self.l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(n_features), 0.0
            Xc, yc = X, y

        l1 = self.alpha * self.l1_ratio * n_samples
        l2 = self.alpha * (1.0 - self.l1_ratio) * n_samples
        col_sq = np.einsum("ij,ij->j", Xc, Xc)  # ||x_j||^2 per feature

        w = np.zeros(n_features)
        residual = yc.copy()  # residual = yc - Xc @ w, maintained incrementally
        self.n_iter_ = self.max_iter
        for it in range(self.max_iter):
            max_update = 0.0
            for j in range(n_features):
                if col_sq[j] == 0.0:
                    continue
                w_old = w[j]
                # rho = x_j . (residual + x_j * w_j)
                rho = Xc[:, j] @ residual + col_sq[j] * w_old
                w_new = soft_threshold(rho, l1) / (col_sq[j] + l2)
                if w_new != w_old:
                    residual += Xc[:, j] * (w_old - w_new)
                    w[j] = w_new
                    max_update = max(max_update, abs(w_new - w_old))
            if max_update <= self.tol:
                self.n_iter_ = it + 1
                break

        self.coef_ = w
        self.intercept_ = float(y_mean - x_mean @ w)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    @property
    def sparsity_(self) -> float:
        """Fraction of exactly-zero coefficients after fitting."""
        self._check_fitted("coef_")
        return float(np.mean(self.coef_ == 0.0))
