"""Linear support-vector regression via averaged subgradient descent.

The paper lists SVM regression among the candidates (Table I) but rules
it out for this task: the dataset's dimensionality is low and SVR's
strengths do not apply.  A linear epsilon-insensitive SVR trained by
Pegasos-style stochastic subgradient descent is a faithful stand-in: it
optimises the same objective family and has the same microsecond-scale
linear evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class LinearSVR(BaseEstimator, RegressorMixin):
    """Epsilon-insensitive linear regression, L2-regularised.

    Minimises ``0.5*||w||^2 + C * sum(max(0, |y - wx - b| - epsilon))``
    with averaged SGD (Polyak averaging over the second half of the run
    stabilises the final iterate).

    Parameters
    ----------
    C:
        Inverse regularisation strength.
    epsilon:
        Insensitivity tube half-width, in target units.
    n_epochs:
        Passes over the data.
    """

    def __init__(self, C: float = 1.0, epsilon: float = 0.1,
                 n_epochs: int = 30, random_state=None):
        self.C = C
        self.epsilon = epsilon
        self.n_epochs = n_epochs
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVR":
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        X, y = check_X_y(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        lam = 1.0 / (self.C * n)

        w = np.zeros(d)
        b = 0.0
        w_avg = np.zeros(d)
        b_avg = 0.0
        n_avg = 0
        t = 0
        half = self.n_epochs * n // 2
        for epoch in range(self.n_epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * (t + 1))
                margin = y[i] - (X[i] @ w + b)
                w *= (1.0 - eta * lam)
                if margin > self.epsilon:
                    w += eta / n * X[i]
                    b += eta / n
                elif margin < -self.epsilon:
                    w -= eta / n * X[i]
                    b -= eta / n
                if t > half:
                    n_avg += 1
                    w_avg += (w - w_avg) / n_avg
                    b_avg += (b - b_avg) / n_avg

        self.coef_ = w_avg if n_avg else w
        self.intercept_ = float(b_avg if n_avg else b)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_
