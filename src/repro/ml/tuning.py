"""Hyper-parameter search: grid and randomised.

The paper tunes every candidate model's hyper-parameters with k-fold
cross-validation before the final model selection (Sections III-B and
IV-C).  Both searchers refit the best configuration on the full data,
mirroring scikit-learn semantics.

Seeding contract: ``random_state`` may be an int, a
:class:`numpy.random.SeedSequence` or a ``Generator``.  Each candidate
model in a bake-off gets its *own* seed via :func:`candidate_seed`,
derived from the root seed and the candidate's name — never from a
stream shared across candidates, where any reordering (or a parallel
schedule) would change every downstream draw.  This is what makes the
staged training pipeline's parallel tuning bitwise-equivalent to the
serial path.
"""

from __future__ import annotations

import hashlib
import itertools

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.ml.model_selection import KFold, cross_val_score


def candidate_seed(seed, name: str) -> np.random.SeedSequence:
    """Per-candidate seed sequence, stable under reordering.

    The entropy pool combines the root ``seed`` with a digest of the
    candidate ``name``, so a candidate's hyper-parameter draws are
    identical whether it is tuned first, last, alone, or on a parallel
    worker — unlike ``SeedSequence.spawn``, whose children depend on
    spawn *order*.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return np.random.SeedSequence(
        [int(seed)] + [int.from_bytes(digest[i:i + 8], "little")
                       for i in (0, 8)])


class ParameterGrid:
    """Iterate over the cartesian product of a dict of value lists."""

    def __init__(self, grid: dict):
        if not isinstance(grid, dict):
            raise TypeError("grid must be a dict of parameter: values-list")
        for key, values in grid.items():
            if not hasattr(values, "__iter__") or isinstance(values, str):
                raise ValueError(f"grid[{key!r}] must be an iterable of values")
        self.grid = {k: list(v) for k, v in grid.items()}

    def __iter__(self):
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def __len__(self):
        out = 1
        for values in self.grid.values():
            out *= len(values)
        return out


class _BaseSearchCV(BaseEstimator, RegressorMixin):
    """Shared fit/refit logic for the two searchers."""

    def __init__(self, estimator, cv=None, scoring=None):
        self.estimator = estimator
        self.cv = cv
        self.scoring = scoring

    def _candidates(self, rng):  # pragma: no cover - abstract
        raise NotImplementedError

    def fit(self, X, y, stratify_on=None):
        rng = np.random.default_rng(getattr(self, "random_state", None))
        cv = self.cv or KFold(n_splits=3, shuffle=True, random_state=0)
        results = []
        for params in self._candidates(rng):
            model = clone(self.estimator).set_params(**params)
            scores = cross_val_score(model, X, y, cv=cv, scoring=self.scoring,
                                     stratify_on=stratify_on)
            results.append((params, float(np.mean(scores)), scores))
        if not results:
            raise ValueError("empty hyper-parameter search space")
        results.sort(key=lambda r: r[1], reverse=True)
        self.cv_results_ = [{"params": p, "mean_score": m, "scores": s}
                            for p, m, s in results]
        self.best_params_ = results[0][0]
        self.best_score_ = results[0][1]
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X):
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict(X)


class GridSearchCV(_BaseSearchCV):
    """Exhaustive search over a parameter grid with CV scoring."""

    def __init__(self, estimator, param_grid: dict, cv=None, scoring=None):
        super().__init__(estimator, cv=cv, scoring=scoring)
        self.param_grid = param_grid

    def _candidates(self, rng):
        return iter(ParameterGrid(self.param_grid))


class RandomizedSearchCV(_BaseSearchCV):
    """Randomised search: ``n_iter`` draws from the grid without replacement."""

    def __init__(self, estimator, param_grid: dict, n_iter: int = 10,
                 cv=None, scoring=None, random_state=None):
        super().__init__(estimator, cv=cv, scoring=scoring)
        self.param_grid = param_grid
        self.n_iter = n_iter
        self.random_state = random_state

    def sampled_params(self) -> list:
        """The deterministic draw ``fit`` will evaluate, without fitting.

        A fresh generator is seeded from ``random_state`` on every call,
        so the list is reproducible and identical to the configurations
        ``fit`` scores — the staged pipeline's parallel tuner enumerates
        work items from here and is guaranteed to agree with a serial
        ``fit`` on the same searcher.
        """
        return list(self._candidates(
            np.random.default_rng(self.random_state)))

    def _candidates(self, rng):
        space = list(ParameterGrid(self.param_grid))
        if self.n_iter >= len(space):
            return iter(space)
        picks = rng.choice(len(space), size=self.n_iter, replace=False)
        return iter([space[i] for i in picks])
