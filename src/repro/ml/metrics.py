"""Regression metrics.

Tables III and IV of the paper report a "Normalised Test RMSE" where the
worst model (ElasticNet) sits at 1.00 and strong tree ensembles reach
0.05-0.28.  Dividing the RMSE by the standard deviation of the test
targets produces exactly this behaviour (a model no better than
predicting the mean scores ~1.0), so that is the definition used here.
"""

from __future__ import annotations

import numpy as np


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean."""
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        # Constant target: perfect iff we predicted it exactly.
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def normalised_rmse(y_true, y_pred) -> float:
    """RMSE divided by the standard deviation of the true targets.

    The paper's Tables III/IV metric: ~1.0 for models that do no better
    than predicting the mean, approaching 0 for accurate models.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    std = float(np.std(y_true))
    if std == 0.0:
        return 0.0 if rmse(y_true, y_pred) == 0.0 else float("inf")
    return rmse(y_true, y_pred) / std
