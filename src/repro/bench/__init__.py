"""Benchmark harness utilities shared by the ``benchmarks/`` suite.

- :mod:`repro.bench.stats` — the speedup statistics of Tables V/VI.
- :mod:`repro.bench.gflops` — GFLOPS aggregation by memory bucket
  (Figs. 11/12) and per-panel sweeps (Figs. 13/14).
- :mod:`repro.bench.report` — ASCII tables, histograms and heatmap
  summaries standing in for the paper's figures.
- :mod:`repro.bench.runner` — cached installation runs so several
  benchmarks can share one trained bundle per platform.
"""

from repro.bench.stats import SpeedupStats, speedup_stats
from repro.bench.gflops import bucket_gflops, MemoryBucket
from repro.bench.report import (ascii_histogram, format_table, heatmap_summary)
from repro.bench.runner import ExperimentContext

__all__ = [
    "SpeedupStats",
    "speedup_stats",
    "bucket_gflops",
    "MemoryBucket",
    "ascii_histogram",
    "format_table",
    "heatmap_summary",
    "ExperimentContext",
]
