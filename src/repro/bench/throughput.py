"""Batched-prediction throughput: the engine's amortisation benchmark.

Single-shape prediction pays the full Python round trip — feature
build, pipeline transform, model predict — per call.  The engine's
:meth:`~repro.core.predictor.ThreadPredictor.predict_threads_batch`
pays it once per batch, so the per-shape cost should fall as the batch
grows.  :func:`prediction_throughput` measures exactly that on a fitted
predictor, with the cache invalidated between passes so the numbers are
honest evaluation cost, not lookup cost.
"""

from __future__ import annotations

import time

import numpy as np


def _distinct_shapes(n: int, seed: int = 0, lo: int = 16, hi: int = 4096) -> list:
    """Deterministic distinct (m, k, n) triples (no cache interference)."""
    rng = np.random.default_rng(seed)
    shapes = set()
    while len(shapes) < n:
        m, k, n_dim = (int(x) for x in rng.integers(lo, hi, size=3))
        shapes.add((m, k, n_dim))
    return sorted(shapes)


def prediction_throughput(predictor, shapes=None, n_shapes: int = 128,
                          batch_sizes=(1, 8, 64), repeats: int = 3,
                          seed: int = 0) -> list:
    """Per-shape prediction cost across batch sizes.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.ThreadPredictor`.
    shapes:
        Distinct ``(m, k, n)`` triples to predict (generated when None).
    batch_sizes:
        Chunk sizes to measure; size 1 uses the scalar
        ``predict_threads`` path and is the baseline every row's
        ``speedup`` is relative to (when 1 is not measured, the
        smallest measured batch is the reference).
    repeats:
        Full passes over the shape set per batch size (best pass wins,
        shielding against scheduler noise).

    Returns a list of report-ready dict rows (``batch_size``,
    ``per_shape_us``, ``total_ms``, ``speedup``).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    shapes = list(shapes) if shapes is not None \
        else _distinct_shapes(n_shapes, seed=seed)
    if not shapes:
        raise ValueError("no shapes to measure")

    def one_pass(batch: int) -> float:
        predictor.invalidate_memo()
        t0 = time.perf_counter()
        if batch == 1:
            for m, k, n in shapes:
                predictor.predict_threads(m, k, n)
        else:
            for start in range(0, len(shapes), batch):
                predictor.predict_threads_batch(shapes[start:start + batch])
        return time.perf_counter() - t0

    measured = {}
    for batch in batch_sizes:
        if batch < 1:
            raise ValueError("batch sizes must be >= 1")
        one_pass(batch)  # warm-up (allocations, code paths)
        best = min(one_pass(batch) for _ in range(repeats))
        measured[batch] = best
    predictor.invalidate_memo()

    # Speedups are relative to the scalar path; when batch size 1 was
    # not measured, the smallest measured batch stands in.
    reference = measured.get(1, measured[min(measured)])
    return [{
        "batch_size": batch,
        "per_shape_us": round(best / len(shapes) * 1e6, 2),
        "total_ms": round(best * 1e3, 3),
        "speedup": round(reference / best, 2),
    } for batch, best in measured.items()]
