"""GFLOPS aggregation by memory bucket (paper Figs. 11/12)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MemoryBucket:
    """One bar group of Figs. 11/12."""

    lo_mb: float
    hi_mb: float
    baseline_gflops: float
    ml_gflops: float
    n: int

    @property
    def label(self) -> str:
        return f"{int(self.lo_mb)}-{int(self.hi_mb)}"

    @property
    def speedup(self) -> float:
        if self.baseline_gflops <= 0:
            return float("nan")
        return self.ml_gflops / self.baseline_gflops


def bucket_gflops(memory_mb, flops, t_baseline, t_ml, edges_mb=None) -> list:
    """Aggregate achieved GFLOPS into memory-footprint buckets.

    GFLOPS per bucket is the *throughput of the bucket as a whole*
    (total FLOPs over total wall time), matching how a bar summarising
    many GEMMs is computed.

    Parameters
    ----------
    memory_mb, flops, t_baseline, t_ml:
        Per-GEMM arrays: footprint, FLOP count, baseline (max threads)
        runtime and ML-selected runtime, all aligned.
    edges_mb:
        Bucket boundaries; default 0..500 in steps of 100 (the paper's).
    """
    memory_mb = np.asarray(memory_mb, dtype=np.float64)
    flops = np.asarray(flops, dtype=np.float64)
    t_baseline = np.asarray(t_baseline, dtype=np.float64)
    t_ml = np.asarray(t_ml, dtype=np.float64)
    for name, arr in (("flops", flops), ("t_baseline", t_baseline), ("t_ml", t_ml)):
        if arr.shape != memory_mb.shape:
            raise ValueError(f"{name} misaligned with memory_mb")
    if edges_mb is None:
        edges_mb = [0, 100, 200, 300, 400, 500]
    edges_mb = list(edges_mb)

    buckets = []
    for lo, hi in zip(edges_mb[:-1], edges_mb[1:]):
        mask = (memory_mb > lo) & (memory_mb <= hi)
        if not mask.any():
            buckets.append(MemoryBucket(lo, hi, 0.0, 0.0, 0))
            continue
        total_flops = flops[mask].sum()
        buckets.append(MemoryBucket(
            lo_mb=lo, hi_mb=hi,
            baseline_gflops=total_flops / t_baseline[mask].sum() / 1e9,
            ml_gflops=total_flops / t_ml[mask].sum() / 1e9,
            n=int(mask.sum()),
        ))
    return buckets
