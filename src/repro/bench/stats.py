"""Sample summaries: the paper's Tables V/VI speedup rows and the
serving layer's latency percentiles.

Both the serve telemetry (:mod:`repro.serve.telemetry`) and the
benchmark reports (:mod:`repro.bench.report`) summarise latency samples
through :func:`latency_summary`, so p50/p95/p99 always mean the same
thing everywhere they are printed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpeedupStats:
    """Mean/std/percentile summary of a speedup sample."""

    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    n: int

    def as_dict(self) -> dict:
        return {
            "Mean Speedup": round(self.mean, 2),
            "Standard Deviation": round(self.std, 2),
            "Min Speedup": round(self.minimum, 2),
            "25th Percentile": round(self.p25, 2),
            "50th Percentile": round(self.median, 2),
            "75th Percentile": round(self.p75, 2),
            "Max Speedup": round(self.maximum, 2),
            "N": self.n,
        }


@dataclass(frozen=True)
class LatencySummary:
    """Tail-focused summary of a latency sample (units preserved)."""

    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    n: int

    def as_row(self, label: str = None, scale: float = 1e3,
               unit: str = "ms", ndigits: int = 3) -> dict:
        """One :func:`repro.bench.report.format_table`-ready row.

        Values are multiplied by ``scale`` (seconds in, milliseconds out
        by default) and rounded; ``label`` prepends a ``series`` column
        so several summaries can share one table.
        """
        row = {} if label is None else {"series": label}
        row.update({
            f"mean_{unit}": round(self.mean * scale, ndigits),
            f"p50_{unit}": round(self.p50 * scale, ndigits),
            f"p95_{unit}": round(self.p95 * scale, ndigits),
            f"p99_{unit}": round(self.p99 * scale, ndigits),
            f"max_{unit}": round(self.maximum * scale, ndigits),
            "n": self.n,
        })
        return row


def latency_summary(latencies) -> LatencySummary:
    """Summarise a latency sample (p50/p95/p99, mean, max).

    The one latency aggregation in the repository: serve telemetry and
    the benchmark reports both call this rather than re-deriving
    percentiles ad hoc.  Units in == units out.
    """
    s = np.asarray(latencies, dtype=np.float64)
    if s.size == 0:
        raise ValueError("empty latency sample")
    if (s < 0).any():
        raise ValueError("latencies must be non-negative")
    return LatencySummary(
        mean=float(s.mean()),
        p50=float(np.percentile(s, 50)),
        p95=float(np.percentile(s, 95)),
        p99=float(np.percentile(s, 99)),
        maximum=float(s.max()),
        n=int(s.size),
    )


def speedup_stats(speedups) -> SpeedupStats:
    """Summarise a vector of per-GEMM speedups (Tables V/VI rows)."""
    s = np.asarray(speedups, dtype=np.float64)
    if s.size == 0:
        raise ValueError("empty speedup sample")
    if (s <= 0).any():
        raise ValueError("speedups must be positive")
    return SpeedupStats(
        mean=float(s.mean()),
        std=float(s.std(ddof=1)) if s.size > 1 else 0.0,
        minimum=float(s.min()),
        p25=float(np.percentile(s, 25)),
        median=float(np.percentile(s, 50)),
        p75=float(np.percentile(s, 75)),
        maximum=float(s.max()),
        n=int(s.size),
    )
