"""Speedup statistics in the exact shape of the paper's Tables V/VI."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpeedupStats:
    """Mean/std/percentile summary of a speedup sample."""

    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    n: int

    def as_dict(self) -> dict:
        return {
            "Mean Speedup": round(self.mean, 2),
            "Standard Deviation": round(self.std, 2),
            "Min Speedup": round(self.minimum, 2),
            "25th Percentile": round(self.p25, 2),
            "50th Percentile": round(self.median, 2),
            "75th Percentile": round(self.p75, 2),
            "Max Speedup": round(self.maximum, 2),
            "N": self.n,
        }


def speedup_stats(speedups) -> SpeedupStats:
    """Summarise a vector of per-GEMM speedups (Tables V/VI rows)."""
    s = np.asarray(speedups, dtype=np.float64)
    if s.size == 0:
        raise ValueError("empty speedup sample")
    if (s <= 0).any():
        raise ValueError("speedups must be positive")
    return SpeedupStats(
        mean=float(s.mean()),
        std=float(s.std(ddof=1)) if s.size > 1 else 0.0,
        minimum=float(s.min()),
        p25=float(np.percentile(s, 25)),
        median=float(np.percentile(s, 50)),
        p75=float(np.percentile(s, 75)),
        maximum=float(s.max()),
        n=int(s.size),
    )
