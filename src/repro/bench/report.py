"""ASCII rendering of tables, histograms and heatmap summaries.

The paper's figures are plots; benchmarks in this repository print the
same information as text so it lands in ``bench_output.txt`` and can be
diffed across runs.
"""

from __future__ import annotations

import numpy as np


def format_table(rows: list, title: str = "") -> str:
    """Render a list of dicts (same keys) as an aligned ASCII table."""
    if not rows:
        raise ValueError("no rows")
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise ValueError("all rows must share the same keys in order")
    cells = [[str(row[h]) for h in headers] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for r in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def cache_effectiveness_table(stats: dict, title: str = "prediction cache") -> str:
    """Render engine serving statistics next to the speedup tables.

    ``stats`` is what :meth:`repro.engine.service.GemmService.stats`
    (or :attr:`repro.core.library.AdsalaGemm.cache_stats`) returns; the
    row surfaces how much of the workload the prediction cache absorbed.
    """
    wanted = ("requests", "unique_shapes", "evaluations", "memo_hit_rate",
              "cache_hits", "cache_misses", "cache_evictions", "cache_size",
              "cache_maxsize")
    row = {key: stats[key] for key in wanted if key in stats}
    if not row:
        raise ValueError("stats has no cache fields to report")
    return format_table([row], title=title)


def latency_table(summaries, title: str = "latency") -> str:
    """Render one or more latency summaries as an aligned table.

    ``summaries`` maps a series label to a
    :class:`~repro.bench.stats.LatencySummary` (values in seconds;
    printed in milliseconds).  Serve telemetry and the serve benchmark
    both report through this, so their p50/p95/p99 columns line up.
    """
    if not summaries:
        raise ValueError("no summaries")
    rows = [summary.as_row(label=label) for label, summary in summaries.items()]
    return format_table(rows, title=title)


def batch_size_table(histogram: dict, title: str = "batch sizes") -> str:
    """Render a batch-size histogram (``{size: count}``) as a table."""
    if not histogram:
        raise ValueError("empty histogram")
    total = sum(histogram.values())
    rows = [{"batch_size": size, "batches": count,
             "share": f"{count / total:.1%}"}
            for size, count in sorted(histogram.items())]
    return format_table(rows, title=title)


def ascii_histogram(values, bins=10, width: int = 40, title: str = "") -> str:
    """Text histogram (stands in for the paper's Figs. 1/8)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"[{lo:8.1f}, {hi:8.1f}) {c:5d} {bar}")
    return "\n".join(lines)


def sparkline(values, width: int = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Used by the sweep benchmarks (Figs. 13/14) so the GFLOPS-vs-size
    shape is visible directly in the text results.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return blocks[0] * values.size
    scaled = (values - lo) / (hi - lo) * (len(blocks) - 1)
    return "".join(blocks[int(round(s))] for s in scaled)


def heatmap_summary(x, y, values, x_bins=5, y_bins=5,
                    x_label: str = "x", y_label: str = "y",
                    value_label: str = "value") -> str:
    """Coarse 2-D binned means as text (stands in for Figs. 9/10).

    Bins on a square-root scale like the paper's axes, prints the mean
    of ``values`` per cell ("." for empty cells).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if not (x.shape == y.shape == values.shape):
        raise ValueError("x, y, values must be aligned")
    sx, sy = np.sqrt(x), np.sqrt(y)
    x_edges = np.linspace(sx.min(), sx.max() + 1e-9, x_bins + 1)
    y_edges = np.linspace(sy.min(), sy.max() + 1e-9, y_bins + 1)
    grid = np.full((y_bins, x_bins), np.nan)
    for i in range(y_bins):
        for j in range(x_bins):
            mask = ((sx >= x_edges[j]) & (sx < x_edges[j + 1])
                    & (sy >= y_edges[i]) & (sy < y_edges[i + 1]))
            if mask.any():
                grid[i, j] = values[mask].mean()
    lines = [f"{value_label} by ({x_label}, {y_label}) [sqrt-scale bins]"]
    col_labels = [f"{(e ** 2):8.0f}" for e in x_edges[1:]]
    lines.append(" " * 10 + " ".join(col_labels))
    for i in range(y_bins - 1, -1, -1):
        row = []
        for j in range(x_bins):
            v = grid[i, j]
            row.append("       ." if np.isnan(v) else f"{v:8.2f}")
        lines.append(f"{y_edges[i + 1] ** 2:9.0f} " + " ".join(row))
    return "\n".join(lines)
