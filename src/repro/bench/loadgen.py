"""Deterministic synthetic load: CPU-bound backends and drill models.

The machine simulators answer ``timed_run`` from a closed-form cost
model in microseconds of *wall* time, so a single Python process can
"serve" tens of thousands of requests per second and a multi-process
fleet has nothing to win — inter-process framing would dominate the
measurement.  Real deployments spend real CPU per request.
:class:`CpuBoundBackend` stands in for that: a fixed pure-Python spin
(GIL-holding by construction, so one process serialises no matter how
many executor threads it owns), optionally a blocking ``sleep_s``
kernel-occupancy window (a real BLAS call keeps its worker busy for
the kernel's wall time, and separate workers' kernels overlap even
when the *host* driving the benchmark has a single core, where spin
work cannot), followed by a *returned* runtime that is a pure function
of the spec.  Fleet-vs-single comparisons then measure process
parallelism against identical work, and thread selections stay
deterministic because prediction never touches the backend.

Everything here is importable by dotted path from spawned fleet
workers (:class:`repro.fleet.WorkerSpec` carries factory paths, not
objects), which is also why :class:`ThreadBiasModel` lives in product
code rather than a test file: rollout drills publish bundles carrying
it, and a published bundle must unpickle inside any worker process.
"""

from __future__ import annotations

import time

import numpy as np


class CpuBoundBackend:
    """Execution backend burning a deterministic pure-Python spin.

    Parameters
    ----------
    thread_grid:
        Candidate grid exposed to :func:`~repro.engine.backend.as_backend`
        (serving normally clamps it to the bundle's own grid anyway).
    iters:
        Spin iterations per call — pure Python, so the GIL is held for
        the whole spin.  Calibrate against the request volume: ~20k
        iterations is a few hundred microseconds of real CPU on a
        typical container.
    sleep_s:
        Blocking kernel-occupancy per call: after the spin, the backend
        holds its process for this much wall time the way a synchronous
        BLAS kernel would.  Unlike the spin, this component parallelises
        across worker *processes* regardless of how many cores the host
        granting the benchmark has — the right knob when measuring fleet
        scaling inside a CPU-quota'd container.
    """

    def __init__(self, thread_grid=(1, 2, 4, 8, 12, 16),
                 iters: int = 20000, sleep_s: float = 0.0,
                 name: str = "cpu_bound"):
        self.thread_grid = np.asarray(
            sorted(set(int(t) for t in thread_grid)), dtype=np.int64)
        if self.thread_grid.size == 0 or (self.thread_grid < 1).any():
            raise ValueError("thread_grid must be non-empty positive ints")
        self.iters = int(iters)
        self.sleep_s = float(sleep_s)
        if self.sleep_s < 0:
            raise ValueError("sleep_s must be >= 0")
        self.name = str(name)
        self.n_calls = 0

    def timed_run(self, spec, n_threads: int, repeats: int = 1) -> float:
        acc = 1.0
        for _ in range(self.iters):
            acc = acc * 1.0000001 + 1e-9  # GIL-holding busy work
        if self.sleep_s:
            time.sleep(self.sleep_s)
        self.n_calls += 1
        # The *reported* runtime is a pure function of the spec — the
        # spin above costs wall time but never leaks measurement noise
        # into records, so replays compare bitwise across processes.
        flops = getattr(spec, "flops", None)
        if flops is None:
            flops = float(np.prod([float(d) for d in spec.dims]))
        return float(flops) / (float(n_threads) * 1e12) + acc * 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CpuBoundBackend(iters={self.iters}, "
                f"sleep_s={self.sleep_s}, "
                f"grid={self.thread_grid.tolist()})")


def cpu_bound_backend(iters: int = 20000, sleep_s: float = 0.0,
                      thread_grid=(1, 2, 4, 8, 12, 16)) -> CpuBoundBackend:
    """Factory for :class:`CpuBoundBackend` (fleet ``WorkerSpec.backend``
    target: ``"repro.bench.loadgen:cpu_bound_backend"``)."""
    return CpuBoundBackend(thread_grid=thread_grid, iters=iters,
                           sleep_s=sleep_s)


class ThreadBiasModel:
    """Synthetic model scoring ``|n_threads - target|`` from raw features.

    Used with ``pipeline=None`` and feature groups carrying the raw
    ``n_threads`` column (``"both"``/``"group1"``: column 3): argmin
    selection then deterministically picks the grid point closest to
    ``target``.  Publishing a bundle with a *different* target is the
    canonical way to mint a registry version whose selections diverge
    from the incumbent — exactly what a canary rollout must detect and
    roll back.
    """

    def __init__(self, target: int = 1, column: int = 3):
        self.target = float(target)
        self.column = int(column)

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return np.abs(X[:, self.column] - self.target)


def bias_bundle(bundle, target: int = 1):
    """A publishable variant of ``bundle`` selecting threads near ``target``.

    Swaps the model for a :class:`ThreadBiasModel`, drops the pipeline
    (the bias model reads raw features) and discards compiled
    artefacts so the plan re-lowers against the new model.  The config
    and report are shared with the source bundle — version provenance
    in the registry stays meaningful.
    """
    from dataclasses import replace

    return replace(bundle, model=ThreadBiasModel(target=target),
                   pipeline=None, plan=None, table=None)
