"""Shared experiment context for the benchmark suite.

Several of the paper's tables/figures consume the *same* installation
(one per platform).  Training even a "fast"-budget installation takes
tens of seconds, so :class:`ExperimentContext` memoises trained bundles,
gathered datasets and test sets per (platform, settings) key within a
process — pytest-benchmark then measures the per-experiment analysis,
not redundant re-training.
"""

from __future__ import annotations

from repro.core.dataset import TimingDataset
from repro.core.training import InstallationWorkflow, TrainedBundle
from repro.machine.presets import by_name
from repro.machine.simulator import MachineSimulator
from repro.sampling.domain import GemmDomainSampler

MB = 1024 * 1024


class ExperimentContext:
    """Process-wide cache of expensive experiment artefacts."""

    _instance = None

    def __init__(self):
        self._simulators = {}
        self._datasets = {}
        self._bundles = {}

    @classmethod
    def get(cls) -> "ExperimentContext":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance

    # ------------------------------------------------------------------
    def simulator(self, machine: str, seed: int = 0,
                  hyperthreading: bool = True) -> MachineSimulator:
        key = (machine, seed, hyperthreading)
        if key not in self._simulators:
            self._simulators[key] = MachineSimulator(
                by_name(machine), seed=seed, hyperthreading=hyperthreading)
        return self._simulators[key]

    def dataset(self, machine: str, n_shapes: int, memory_cap_mb: int,
                seed: int = 0, thread_grid=None,
                hyperthreading: bool = True) -> TimingDataset:
        """Gathered (and cached) timing campaign."""
        from repro.core.gather import DataGatherer

        key = (machine, n_shapes, memory_cap_mb, seed,
               tuple(thread_grid) if thread_grid else None, hyperthreading)
        if key not in self._datasets:
            sim = self.simulator(machine, seed=seed, hyperthreading=hyperthreading)
            gatherer = DataGatherer(sim, thread_grid=thread_grid)
            self._datasets[key] = gatherer.gather(
                n_shapes, memory_cap_mb * MB, seed=seed)
        return self._datasets[key]

    def bundle(self, machine: str, n_shapes: int = 220, memory_cap_mb: int = 500,
               seed: int = 0, hyperthreading: bool = True,
               **workflow_kwargs) -> TrainedBundle:
        """Trained (and cached) installation bundle for a platform."""
        def freeze(value):
            if isinstance(value, (list, tuple)):
                return tuple(freeze(v) for v in value)
            try:
                hash(value)
                return value
            except TypeError:
                return repr(value)

        hashable = tuple(sorted((k, freeze(v)) for k, v in workflow_kwargs.items()))
        key = (machine, n_shapes, memory_cap_mb, seed, hyperthreading, hashable)
        if key not in self._bundles:
            sim = self.simulator(machine, seed=seed, hyperthreading=hyperthreading)
            workflow = InstallationWorkflow(
                sim, memory_cap_bytes=memory_cap_mb * MB, n_shapes=n_shapes,
                seed=seed, **workflow_kwargs)
            self._bundles[key] = workflow.run()
        return self._bundles[key]

    def fresh_test_shapes(self, memory_cap_mb: int, n: int = 174,
                          seed: int = 12345):
        """An independent low-discrepancy test set (paper Section VI-C)."""
        sampler = GemmDomainSampler(memory_cap_bytes=memory_cap_mb * MB,
                                    seed=seed)
        return sampler.sample(n)
