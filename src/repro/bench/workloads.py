"""Synthetic GEMM workload traces for end-to-end replay experiments.

The paper motivates ADSALA with application workloads (deep-learning
inference, scientific computing) whose GEMM streams mix shapes and
repeat them inside loops.  This module generates such traces and replays
them through an :class:`~repro.core.library.AdsalaGemm` instance versus
the always-max baseline, reporting cumulative wall time — the metric an
application user actually experiences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gemm.interface import GemmSpec


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered stream of GEMM calls."""

    name: str
    calls: tuple  # tuple of GemmSpec, repetitions preserved in order

    def __len__(self) -> int:
        return len(self.calls)

    @property
    def unique_shapes(self) -> int:
        return len({spec.key() for spec in self.calls})

    @property
    def total_flops(self) -> float:
        return float(sum(spec.flops for spec in self.calls))


def resnet_inference(batches: int = 8) -> WorkloadTrace:
    """Convolution-lowered GEMMs of a ResNet-like forward pass.

    Batched layer-major order (all batches of a layer before the next),
    the structure the paper's memoisation exploits.
    """
    layers = [
        GemmSpec(64, 147, 12544), GemmSpec(64, 576, 3136),
        GemmSpec(128, 1152, 784), GemmSpec(256, 2304, 196),
        GemmSpec(512, 4608, 49), GemmSpec(1000, 512, 1),
    ]
    calls = tuple(spec for spec in layers for _ in range(batches))
    return WorkloadTrace(name=f"resnet_inference_x{batches}", calls=calls)


def scf_iterations(iterations: int = 6, seed: int = 0) -> WorkloadTrace:
    """Quantum-chemistry-like contraction stream (small irregular tiles)."""
    rng = np.random.default_rng(seed)
    blocks = [1, 3, 6, 10, 15]
    calls = []
    for _ in range(iterations):
        for _ in range(16):
            bi, bj = rng.choice(blocks, size=2)
            calls.append(GemmSpec(int(bi * bj), 512, 64))
        calls.append(GemmSpec(64, 512, 512))
        calls.append(GemmSpec(512, 512, 64))
    return WorkloadTrace(name=f"scf_x{iterations}", calls=tuple(calls))


def mixed_hpc(n_calls: int = 60, memory_cap_mb: int = 200, seed: int = 0) -> WorkloadTrace:
    """A Halton-sampled mixed stream (no repeated shapes: memoisation-hostile)."""
    from repro.sampling.domain import GemmDomainSampler

    sampler = GemmDomainSampler(memory_cap_bytes=memory_cap_mb * 1024 * 1024,
                                seed=seed)
    return WorkloadTrace(name="mixed_hpc", calls=tuple(sampler.sample(n_calls)))


@dataclass
class ReplayResult:
    """Cumulative comparison of one trace replay."""

    trace: WorkloadTrace
    adsala_seconds: float
    baseline_seconds: float
    memo_hit_rate: float
    thread_choices: dict = field(default_factory=dict)
    cache_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.adsala_seconds

    def report_row(self) -> dict:
        """One report-table row: speedup alongside cache effectiveness."""
        return {
            "trace": self.trace.name,
            "calls": len(self.trace),
            "unique": self.trace.unique_shapes,
            "adsala_ms": round(self.adsala_seconds * 1e3, 2),
            "baseline_ms": round(self.baseline_seconds * 1e3, 2),
            "speedup": round(self.speedup, 2),
            "memo_hit_rate": round(self.memo_hit_rate, 3),
            "cache_hits": self.cache_stats.get("cache_hits", 0),
            "cache_evictions": self.cache_stats.get("cache_evictions", 0),
        }


def replay(trace: WorkloadTrace, gemm, repeats: int = 1) -> ReplayResult:
    """Run a trace through an AdsalaGemm instance and its baseline.

    ``gemm`` is an open :class:`~repro.core.library.AdsalaGemm`.  The
    baseline re-times each *unique* shape once at the maximum thread
    count and charges it per call (exactly what a static configuration
    would cost).
    """
    baseline_cache = {}
    total_ml = 0.0
    total_base = 0.0
    choices = {}
    for spec in trace.calls:
        record = gemm.run(spec)
        total_ml += record.runtime
        key = spec.key()
        if key not in baseline_cache:
            baseline_cache[key] = gemm.run_baseline(spec)
        total_base += baseline_cache[key]
        choices[spec.dims] = record.n_threads
    return ReplayResult(trace=trace, adsala_seconds=total_ml,
                        baseline_seconds=total_base,
                        memo_hit_rate=gemm.memo_hit_rate,
                        thread_choices=choices,
                        cache_stats=dict(getattr(gemm, "cache_stats", {}) or {}))
