"""Single-threaded cache-blocked GEMM kernel.

This is the per-thread building block of the parallel executor: a classic
three-level blocking scheme (``mc x kc`` A-blocks, ``kc x nc`` B-panels)
with panels packed contiguously before the inner multiply.  The inner
multiply itself delegates to numpy's dot on the packed tiles — on real
hardware that is where the vector FMA kernel lives; here it keeps the
Python overhead per tile bounded while preserving the blocking structure
and memory traffic pattern the paper's profiling discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.interface import GemmSpec, Transpose
from repro.gemm.packing import PackingBuffer, pack_block


@dataclass(frozen=True)
class BlockSizes:
    """Cache blocking factors.

    ``mc``/``kc`` size the packed A block (targets L2), ``nc`` sizes the
    packed B panel (targets L3) — the standard Goto/BLIS decomposition.
    Defaults are sensible for ~1 MB L2 caches in float32.
    """

    mc: int = 128
    kc: int = 256
    nc: int = 512

    def __post_init__(self):
        for name in ("mc", "kc", "nc"):
            if getattr(self, name) < 1:
                raise ValueError(f"block size {name} must be >= 1")

    @classmethod
    def for_cache(cls, l2_bytes: int, l3_bytes: int, dtype: str = "float32") -> "BlockSizes":
        """Derive blocking factors from cache capacities.

        Sizing rule: the packed A block (mc*kc) should occupy about half
        of L2; the packed B panel (kc*nc) about half of the per-core L3
        share.  This mirrors the analytical model of Low et al. that the
        paper cites as prior art for single-thread autotuning.
        """
        itemsize = np.dtype(dtype).itemsize
        kc = max(32, int(np.sqrt(l2_bytes / (2 * itemsize))))
        mc = max(32, (l2_bytes // (2 * itemsize)) // kc)
        nc = max(64, (l3_bytes // (2 * itemsize)) // kc)
        return cls(mc=int(mc), kc=int(kc), nc=int(nc))


def gemm_blocked(spec: GemmSpec, a, b, c, blocks: BlockSizes = None,
                 row_range=None, col_range=None, workspace: PackingBuffer = None):
    """Blocked GEMM over an optional sub-range of C (for thread workers).

    Parameters
    ----------
    row_range, col_range:
        ``(start, stop)`` ranges of C this call is responsible for; the
        parallel executor hands each worker its partition cell.  Defaults
        to the full matrix.
    workspace:
        Optional :class:`PackingBuffer` through which panel copies are
        routed so copy volume can be measured per thread.

    Returns the (in-place updated) ``c``.
    """
    blocks = blocks or BlockSizes()
    op_a = a.T if spec.transa is Transpose.YES else a
    op_b = b.T if spec.transb is Transpose.YES else b
    m0, m1 = row_range if row_range is not None else (0, spec.m)
    n0, n1 = col_range if col_range is not None else (0, spec.n)
    if not (0 <= m0 <= m1 <= spec.m and 0 <= n0 <= n1 <= spec.n):
        raise ValueError("row/col ranges out of bounds")

    # beta scaling of the owned C block happens exactly once, up front.
    c_block = c[m0:m1, n0:n1]
    if spec.beta == 0.0:
        c_block[...] = 0.0
    elif spec.beta != 1.0:
        c_block *= spec.beta

    for jc in range(n0, n1, blocks.nc):
        jc1 = min(jc + blocks.nc, n1)
        for pc in range(0, spec.k, blocks.kc):
            pc1 = min(pc + blocks.kc, spec.k)
            # Pack the kc x nc B panel once per (jc, pc) iteration.
            b_panel = pack_block(op_b, (pc, pc1), (jc, jc1), workspace=None)
            for ic in range(m0, m1, blocks.mc):
                ic1 = min(ic + blocks.mc, m1)
                a_block = pack_block(op_a, (ic, ic1), (pc, pc1), workspace=workspace)
                # Inner macro-kernel: contiguous tiles, accumulate into C.
                partial = a_block @ b_panel
                if spec.alpha != 1.0:
                    partial *= spec.alpha
                c[ic:ic1, jc:jc1] += partial.astype(c.dtype, copy=False)
    return c
