"""Strict reference GEMM used as the correctness oracle.

This implementation privileges obviousness over speed: it materialises
``op(A)`` and ``op(B)``, multiplies in float64 regardless of the storage
precision (so rounding in optimised kernels can be compared against a
higher-precision truth), and applies ``alpha``/``beta`` exactly as the
BLAS specification dictates — including the ``beta == 0`` case where the
previous contents of ``C`` must be ignored even if they contain NaNs.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.interface import GemmSpec, Transpose


def gemm_reference(spec: GemmSpec, a, b, c):
    """Compute ``C <- alpha * op(A) @ op(B) + beta * C`` in place.

    Parameters
    ----------
    spec:
        Problem description.
    a, b, c:
        numpy arrays whose shapes match ``spec.a_shape()`` etc.  ``c`` is
        modified in place and also returned.
    """
    _check_operands(spec, a, b, c)
    op_a = a.T if spec.transa is Transpose.YES else a
    op_b = b.T if spec.transb is Transpose.YES else b
    product = op_a.astype(np.float64) @ op_b.astype(np.float64)
    if spec.beta == 0.0:
        # BLAS semantics: beta==0 means C is write-only; pre-existing
        # NaN/Inf values must not propagate.
        result = spec.alpha * product
    else:
        result = spec.alpha * product + spec.beta * c.astype(np.float64)
    c[...] = result.astype(c.dtype)
    return c


def _check_operands(spec: GemmSpec, a, b, c) -> None:
    expectations = (
        ("A", a, spec.a_shape()),
        ("B", b, spec.b_shape()),
        ("C", c, spec.c_shape()),
    )
    for name, arr, shape in expectations:
        if not isinstance(arr, np.ndarray):
            raise TypeError(f"operand {name} must be a numpy array, got {type(arr).__name__}")
        if arr.shape != shape:
            raise ValueError(f"operand {name} has shape {arr.shape}, expected {shape}")
        if str(arr.dtype) != spec.dtype:
            raise ValueError(f"operand {name} has dtype {arr.dtype}, expected {spec.dtype}")
