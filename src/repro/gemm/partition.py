"""Thread-wise job assignment for multi-threaded GEMM.

Multi-thread BLAS implementations assign matrix blocks to threads
(Section I of the paper: "for multi-thread GEMM implementations, blocking
is also used for thread-wise job assignments").  The two classic layouts
are a 1D split of the ``m`` (or ``n``) dimension and a 2D grid over both.
The cost model in :mod:`repro.machine.costmodel` and the real threaded
executor in :mod:`repro.gemm.parallel` share these partitioners, so the
simulated copy volumes correspond to an actual implementable schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def split_range(extent: int, parts: int):
    """Split ``range(extent)`` into ``parts`` contiguous chunks.

    Chunks differ in length by at most one (the BLIS-style balanced
    partition).  Empty chunks are produced when ``parts > extent``; the
    caller decides whether those threads idle or the thread count is
    clamped.

    Returns a list of ``(start, stop)`` tuples of length ``parts``.
    """
    if extent < 0:
        raise ValueError("extent must be non-negative")
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, extra = divmod(extent, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def factor_grid(p: int, m: int, n: int):
    """Choose a ``pm x pn`` thread grid (``pm * pn == p``) matching C's aspect.

    Picks the factorisation whose ``pm / pn`` ratio is closest (in log
    space) to ``m / n``, which minimises the perimeter-to-area ratio of
    per-thread C blocks and hence the packed-panel replication volume.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    target = np.log(max(m, 1) / max(n, 1))
    best, best_err = (1, p), float("inf")
    for pm in range(1, p + 1):
        if p % pm:
            continue
        pn = p // pm
        err = abs(np.log(pm / pn) - target)
        if err < best_err:
            best, best_err = (pm, pn), err
    return best


@dataclass(frozen=True)
class Partition1D:
    """Split the ``m`` dimension of C across ``p`` threads.

    Every thread consumes the whole of B, so the packed-B panel is either
    shared (single packing pass, but synchronised) or replicated per
    thread.  The paper's Table VII data-copy blow-up at 96 threads on a
    ``64 x 2048 x 64`` problem is a direct consequence of this replication.
    """

    m: int
    k: int
    n: int
    p: int

    def __post_init__(self):
        if self.p < 1:
            raise ValueError("thread count must be >= 1")

    def thread_blocks(self):
        """Yield ``(row_range, col_range)`` per thread; columns are full."""
        return [((lo, hi), (0, self.n)) for lo, hi in split_range(self.m, self.p)]

    def active_threads(self) -> int:
        """Threads that actually receive rows (p may exceed m)."""
        return min(self.p, self.m)


@dataclass(frozen=True)
class Partition2D:
    """Split C across a ``pm x pn`` thread grid.

    A-panels are shared along grid rows and replicated across grid
    columns; B-panels vice versa.  This is the layout used by MKL/BLIS
    for squarish problems.
    """

    m: int
    k: int
    n: int
    pm: int
    pn: int

    def __post_init__(self):
        if self.pm < 1 or self.pn < 1:
            raise ValueError("grid dims must be >= 1")

    @classmethod
    def for_threads(cls, m: int, k: int, n: int, p: int) -> "Partition2D":
        pm, pn = factor_grid(p, m, n)
        return cls(m=m, k=k, n=n, pm=pm, pn=pn)

    @property
    def p(self) -> int:
        return self.pm * self.pn

    def thread_blocks(self):
        """Yield ``(row_range, col_range)`` for every grid cell, row-major."""
        rows = split_range(self.m, self.pm)
        cols = split_range(self.n, self.pn)
        return [(r, c) for r in rows for c in cols]

    def active_threads(self) -> int:
        return min(self.pm, self.m) * min(self.pn, self.n)

    def packed_a_volume(self) -> int:
        """Elements of A packed in total: each grid column packs its rows.

        A is ``m x k``; the rows are split across ``pm`` but every one of
        the ``pn`` grid columns needs the full k-extent of its row block,
        so the aggregate A-pack volume is ``m * k * pn`` elements.
        """
        return self.m * self.k * self.pn

    def packed_b_volume(self) -> int:
        """Elements of B packed in total (replicated across grid rows)."""
        return self.k * self.n * self.pm


def choose_thread_grid(max_threads: int, include_all: bool = False):
    """Candidate thread counts for data gathering and runtime prediction.

    The paper separates experiments per thread count and (Fig. 1) appears
    to cover the full 1..max range on Gadi.  Evaluating the model for
    every integer up to 256 at runtime would be wasteful, so by default we
    use a geometric-ish grid refined with intermediate points (matching
    the granularity visible in the paper's histograms); pass
    ``include_all=True`` for the exhaustive grid.
    """
    if max_threads < 1:
        raise ValueError("max_threads must be >= 1")
    if include_all:
        return list(range(1, max_threads + 1))
    grid = set()
    value = 1
    while value < max_threads:
        grid.add(value)
        grid.add(min(max_threads, value + value // 2) if value >= 4 else value)
        value *= 2
    grid.add(max_threads)
    # Refine the upper half where the histograms show fine structure.
    step = max(1, max_threads // 16)
    grid.update(range(step, max_threads + 1, step))
    return sorted(t for t in grid if 1 <= t <= max_threads)
