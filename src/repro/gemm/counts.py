"""FLOP and memory accounting for GEMM problems.

The paper's data-gathering step bounds the sampled GEMM shapes by their
aggregate memory footprint (Section IV-B): ``4(mk + kn + mn)`` bytes for
single precision and ``8(mk + kn + mn)`` for double precision.  These
helpers centralise that arithmetic so that the sampler, the simulator and
the benchmark harness all agree on it.
"""

from __future__ import annotations

import numpy as np

#: Bytes per element for the two precisions the paper considers.
DTYPE_BYTES = {"float32": 4, "float64": 8}


def gemm_flops(m: int, k: int, n: int) -> int:
    """Number of floating point operations for ``C <- A @ B`` (+ update).

    Each of the ``m * n`` output elements requires ``k`` multiplications
    and ``k`` additions, i.e. ``2 * m * k * n`` FLOPs.  The ``alpha`` and
    ``beta`` scalings add ``O(m * n)`` work which is accounted for as well
    because for very skinny problems (e.g. ``k = 1``) it is not negligible.
    """
    _validate_dims(m, k, n)
    return 2 * m * k * n + 2 * m * n


def gemm_memory_bytes(m: int, k: int, n: int, dtype: str = "float32") -> int:
    """Aggregate memory footprint of the three GEMM operands in bytes.

    Mirrors the paper's Section IV-B formula: ``s * (m*k + k*n + m*n)``
    where ``s`` is the element size (4 for SGEMM, 8 for DGEMM).
    """
    _validate_dims(m, k, n)
    try:
        itemsize = DTYPE_BYTES[str(np.dtype(dtype))]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unsupported dtype {dtype!r}; expected float32/float64") from exc
    return itemsize * (m * k + k * n + m * n)


def gemm_arithmetic_intensity(m: int, k: int, n: int, dtype: str = "float32") -> float:
    """FLOPs per byte of operand traffic, used by the roofline cost model."""
    return gemm_flops(m, k, n) / gemm_memory_bytes(m, k, n, dtype)


def max_dim_for_memory(memory_bytes: int, dtype: str = "float32") -> int:
    """Largest square dimension ``d`` such that a ``d x d x d`` GEMM fits.

    Used by the domain sampler to derive per-dimension upper bounds from a
    memory cap: for square matrices the footprint is ``3 * s * d**2``.
    """
    if memory_bytes <= 0:
        raise ValueError("memory_bytes must be positive")
    itemsize = DTYPE_BYTES[str(np.dtype(dtype))]
    return max(1, int(np.sqrt(memory_bytes / (3.0 * itemsize))))


def _validate_dims(m: int, k: int, n: int) -> None:
    for name, value in (("m", m), ("k", k), ("n", n)):
        if int(value) != value or value < 1:
            raise ValueError(f"GEMM dimension {name} must be a positive integer, got {value!r}")
