"""Multi-threaded blocked GEMM with per-phase instrumentation.

The executor mirrors the structure the paper profiles on real BLAS
(Table VII): worker threads synchronise at a barrier, pack their operand
panels into private workspaces (data copy), then run blocked kernels on
their partition cell (kernel calls).  numpy's matmul releases the GIL,
so on multi-core hosts this achieves genuine parallel speedup; on any
host it produces the same schedule and copy volumes the machine
simulator models analytically, which is what the tests cross-check.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.gemm.blocked import BlockSizes, gemm_blocked
from repro.gemm.interface import GemmSpec
from repro.gemm.packing import PackingBuffer
from repro.gemm.partition import Partition2D


@dataclass
class GemmTimings:
    """Wall-time breakdown of one parallel GEMM call.

    Matches the three components of the paper's profiler analysis:
    ``sync`` (barrier waits), ``copy`` (panel packing), ``kernel``
    (the arithmetic).  All values are seconds, summed across threads for
    copy/kernel and maximum-over-threads for sync/total, mirroring how
    VTune attributes wall time.
    """

    total: float = 0.0
    sync: float = 0.0
    copy: float = 0.0
    kernel: float = 0.0
    threads: int = 1
    copied_elements: int = 0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "sync": self.sync,
            "copy": self.copy,
            "kernel": self.kernel,
            "threads": self.threads,
            "copied_elements": self.copied_elements,
        }


class ParallelGemm:
    """Thread-pool GEMM executor with a fixed thread count.

    The thread count is fixed at construction, matching the paper's data
    gathering protocol: "we avoid changing the number of threads at
    runtime by separating experiments with different numbers of threads
    to different program execution" (Section III-B).

    Instances are callable with the standard backend signature
    ``(spec, a, b, c) -> c`` so they can be passed to
    :func:`repro.gemm.interface.gemm` and to the ADSALA runtime library.
    """

    def __init__(self, n_threads: int, blocks: BlockSizes = None,
                 workspace_elements: int = 1 << 20):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = int(n_threads)
        self.blocks = blocks or BlockSizes()
        self.workspace_elements = int(workspace_elements)
        self.last_timings: GemmTimings = GemmTimings(threads=self.n_threads)

    def __call__(self, spec: GemmSpec, a, b, c):
        return self.run(spec, a, b, c)

    def run(self, spec: GemmSpec, a, b, c):
        """Execute the GEMM, populating :attr:`last_timings`."""
        part = Partition2D.for_threads(spec.m, spec.k, spec.n, self.n_threads)
        cells = part.thread_blocks()
        t_start = time.perf_counter()

        if self.n_threads == 1:
            ws = PackingBuffer(self.workspace_elements, dtype=spec.dtype)
            t0 = time.perf_counter()
            gemm_blocked(spec, a, b, c, blocks=self.blocks, workspace=ws)
            elapsed = time.perf_counter() - t0
            self.last_timings = GemmTimings(
                total=elapsed, sync=0.0, copy=0.0, kernel=elapsed,
                threads=1, copied_elements=ws.copied_elements)
            return c

        barrier = threading.Barrier(self.n_threads)
        sync_times = [0.0] * self.n_threads
        kernel_times = [0.0] * self.n_threads
        copied = [0] * self.n_threads
        errors = []

        def worker(tid: int, cell):
            try:
                ws = PackingBuffer(self.workspace_elements, dtype=spec.dtype)
                t_sync = time.perf_counter()
                barrier.wait()
                sync_times[tid] += time.perf_counter() - t_sync
                rows, cols = cell
                t_k = time.perf_counter()
                if rows[1] > rows[0] and cols[1] > cols[0]:
                    gemm_blocked(spec, a, b, c, blocks=self.blocks,
                                 row_range=rows, col_range=cols, workspace=ws)
                kernel_times[tid] += time.perf_counter() - t_k
                t_sync = time.perf_counter()
                barrier.wait()
                sync_times[tid] += time.perf_counter() - t_sync
                copied[tid] = ws.copied_elements
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
                # Release peers stuck on the barrier.
                barrier.abort()

        threads = [threading.Thread(target=worker, args=(tid, cell), daemon=True)
                   for tid, cell in enumerate(cells)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

        total = time.perf_counter() - t_start
        self.last_timings = GemmTimings(
            total=total,
            sync=max(sync_times),
            copy=0.0,  # copy time is folded into kernel wall-time; volume below
            kernel=max(kernel_times),
            threads=self.n_threads,
            copied_elements=int(sum(copied)),
        )
        return c

    def timed_run(self, spec: GemmSpec, a, b, c, repeats: int = 3) -> float:
        """Best-of-``repeats`` wall time (seconds), the paper's timing protocol.

        The paper runs ten iterations of the same-size GEMM in a loop; the
        repeat count is a parameter here because unit tests need it small.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            self.run(spec, a, b, c)
            best = min(best, time.perf_counter() - t0)
        return best


class WorkerPool:
    """Ordered fan-out of independent Python tasks over a thread pool.

    The deterministic sibling of :class:`ExecutorPool`: where that class
    owns GEMM executors per team size, this one owns a reusable pool of
    generic workers and guarantees that :meth:`map` returns results in
    *submission order* regardless of completion order, so any
    reduction over the results is schedule-independent.  ``n_workers=1``
    degenerates to an inline loop (no threads), which is what makes
    "parallel with one worker" bitwise-identical to serial code paths.

    The training pipeline fans (candidate, configuration, fold) tuning
    work items through this; anything CPU-bound and GIL-holding should
    use :func:`process_map` instead.
    """

    def __init__(self, n_workers: int = 1):
        if int(n_workers) < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self._executor = None

    def map(self, fn, items) -> list:
        """``[fn(item) for item in items]``, fanned across the pool."""
        items = list(items)
        if self.n_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _noop_child() -> None:  # pragma: no cover - runs in the probe child
    pass


_FORK_USABLE = None  # cached once per process


def _fork_usable() -> bool:
    """Can this process fork workers?  Probed once, cached.

    Non-POSIX platforms have no fork context (and spawned workers would
    not inherit the module state :mod:`repro.train.tuning` shares with
    them); sandboxed hosts may refuse the fork syscall itself.
    """
    global _FORK_USABLE
    if _FORK_USABLE is None:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
            probe = context.Process(target=_noop_child)
            probe.start()
            probe.join()
            _FORK_USABLE = True
        except (ValueError, OSError, PermissionError):  # pragma: no cover
            _FORK_USABLE = False
    return _FORK_USABLE


def process_map(fn, items, n_workers: int) -> list:
    """:meth:`WorkerPool.map` semantics over worker *processes*.

    For GIL-bound tasks (pure-Python model fitting) threads cannot
    scale; ``fn`` and every item must be picklable.  Falls back to an
    inline loop when ``n_workers == 1`` or the platform cannot fork —
    but an exception raised by ``fn`` itself always propagates, never
    triggering a silent serial re-run of work that may already have had
    effects.
    """
    items = list(items)
    if int(n_workers) < 1:
        raise ValueError("n_workers must be >= 1")
    if n_workers == 1 or len(items) <= 1 or not _fork_usable():
        return [fn(item) for item in items]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=multiprocessing.get_context("fork")) as pool:
        return list(pool.map(fn, items))


class ExecutorPool:
    """Executors per thread count + operands per shape, behind ``timed_run``.

    Real-execution timing needs two caches to measure the GEMM and not
    the setup: a :class:`ParallelGemm` instance per team size (threads
    are fixed at construction, per the paper's gathering protocol) and
    allocated operands per spec (real BLAS benchmarking allocates once
    and loops, Section V-B3).  The pool owns both and exposes the
    engine's ``timed_run(spec, n_threads, repeats)`` timing protocol;
    :class:`repro.machine.host.HostMachine` and
    :class:`repro.engine.backend.ParallelExecutionBackend` are thin
    layers over it.
    """

    def __init__(self, blocks: BlockSizes = None,
                 workspace_elements: int = 1 << 20,
                 operand_cache: bool = True, seed: int = 0):
        self.blocks = blocks or BlockSizes()
        self.workspace_elements = int(workspace_elements)
        self.operand_cache = operand_cache
        self.seed = seed
        self._executors: dict = {}
        self._operands: dict = {}

    def executor(self, n_threads: int) -> ParallelGemm:
        if n_threads not in self._executors:
            self._executors[n_threads] = ParallelGemm(
                n_threads, blocks=self.blocks,
                workspace_elements=self.workspace_elements)
        return self._executors[n_threads]

    def operands(self, spec: GemmSpec):
        key = spec.key()
        if not self.operand_cache:
            return spec.random_operands(rng=self.seed)
        if key not in self._operands:
            self._operands[key] = spec.random_operands(rng=self.seed)
        return self._operands[key]

    def run(self, spec: GemmSpec, n_threads: int) -> float:
        """One timed execution; returns elapsed seconds."""
        a, b, c = self.operands(spec)
        executor = self.executor(n_threads)
        t0 = time.perf_counter()
        executor.run(spec, a, b, c)
        return time.perf_counter() - t0

    def timed_run(self, spec: GemmSpec, n_threads: int, repeats: int = 3,
                  reduce: str = "median") -> float:
        """Loop-timing protocol over cached operands."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        times = [self.run(spec, n_threads) for _ in range(repeats)]
        if reduce == "median":
            return float(np.median(times))
        if reduce == "min":
            return float(np.min(times))
        if reduce == "mean":
            return float(np.mean(times))
        raise ValueError(f"unknown reduction {reduce!r}")

    def release(self) -> None:
        """Free cached operand arrays and executors."""
        self._operands.clear()
        self._executors.clear()
