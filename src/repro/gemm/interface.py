"""BLAS-style GEMM problem description and front-end entry points.

The paper (Listing 1) works against the standard ``sgemm`` interface::

    sgemm(TRANSA, TRANSB, M, N, K, ALPHA, A, LDA, B, LDB, BETA, C, LDC)

We model the *problem* as an immutable :class:`GemmSpec` so the sampler,
the simulator, the ML feature builder and the runtime library all share
one vocabulary, and provide thin ``sgemm``/``dgemm`` wrappers that follow
the classic argument order on top of numpy arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import ClassVar

import numpy as np

from repro.gemm.counts import gemm_flops, gemm_memory_bytes


class Transpose(enum.Enum):
    """Transpose flag for a GEMM operand, mirroring BLAS 'N'/'T' characters."""

    NO = "N"
    YES = "T"

    @classmethod
    def from_flag(cls, flag) -> "Transpose":
        """Accept BLAS-style characters, booleans, or Transpose instances."""
        if isinstance(flag, Transpose):
            return flag
        if isinstance(flag, bool):
            return cls.YES if flag else cls.NO
        if isinstance(flag, str) and flag.upper() in ("N", "T"):
            return cls.YES if flag.upper() == "T" else cls.NO
        raise ValueError(f"invalid transpose flag {flag!r}; expected 'N', 'T', bool or Transpose")


@dataclass(frozen=True)
class GemmSpec:
    """Immutable description of one GEMM problem ``C <- alpha*op(A)op(B) + beta*C``.

    Attributes
    ----------
    m, k, n:
        Logical dimensions: ``op(A)`` is ``m x k``, ``op(B)`` is ``k x n``
        and ``C`` is ``m x n``.
    dtype:
        ``"float32"`` (SGEMM) or ``"float64"`` (DGEMM).
    transa, transb:
        Whether each input operand is transposed before multiplication.
    alpha, beta:
        The scalar multipliers from the BLAS interface.
    """

    #: Routine name in the central registry (:mod:`repro.core.routines`).
    routine: ClassVar[str] = "gemm"

    m: int
    k: int
    n: int
    dtype: str = "float32"
    transa: Transpose = Transpose.NO
    transb: Transpose = Transpose.NO
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self):
        for name in ("m", "k", "n"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"GemmSpec.{name} must be a positive integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        dtype = str(np.dtype(self.dtype))
        if dtype not in ("float32", "float64"):
            raise ValueError(f"GemmSpec.dtype must be float32 or float64, got {self.dtype!r}")
        object.__setattr__(self, "dtype", dtype)
        object.__setattr__(self, "transa", Transpose.from_flag(self.transa))
        object.__setattr__(self, "transb", Transpose.from_flag(self.transb))

    # -- accounting ---------------------------------------------------
    @property
    def flops(self) -> int:
        """Total floating point operations for this problem."""
        return gemm_flops(self.m, self.k, self.n)

    @property
    def memory_bytes(self) -> int:
        """Aggregate operand footprint (paper Section IV-B)."""
        return gemm_memory_bytes(self.m, self.k, self.n, self.dtype)

    @property
    def memory_mb(self) -> float:
        """Footprint in binary megabytes, the unit used throughout the paper."""
        return self.memory_bytes / (1024.0 * 1024.0)

    @property
    def dims(self) -> tuple:
        """The ``(m, k, n)`` triple."""
        return (self.m, self.k, self.n)

    @property
    def min_dim(self) -> int:
        """Smallest of the three dimensions (drives Fig. 8's filter)."""
        return min(self.m, self.k, self.n)

    @property
    def max_dim(self) -> int:
        return max(self.m, self.k, self.n)

    def with_dtype(self, dtype: str) -> "GemmSpec":
        """Return a copy with a different precision."""
        return replace(self, dtype=dtype)

    # -- routine protocol ---------------------------------------------
    def equivalent_gemm(self) -> "GemmSpec":
        """GEMM is its own GEMM equivalent (routine-oracle protocol)."""
        return self

    @property
    def work_fraction(self) -> float:
        """Arithmetic fraction of the equivalent product (1 for GEMM)."""
        return 1.0

    # -- operand helpers ----------------------------------------------
    def a_shape(self) -> tuple:
        """Stored shape of A (before ``op``) as a row-major numpy array."""
        return (self.k, self.m) if self.transa is Transpose.YES else (self.m, self.k)

    def b_shape(self) -> tuple:
        return (self.n, self.k) if self.transb is Transpose.YES else (self.k, self.n)

    def c_shape(self) -> tuple:
        return (self.m, self.n)

    def random_operands(self, rng=None, aligned: bool = True):
        """Allocate random operands ``(A, B, C)`` for this problem.

        The paper fills operands with random numbers and aligns them to 64
        bytes to assist vector units (Section V-B3).  numpy does not expose
        ``memalign`` directly, so when ``aligned`` we over-allocate a byte
        buffer and carve out a 64-byte-aligned view, which preserves the
        behavioural intent (stable, vector-friendly base addresses).
        """
        rng = np.random.default_rng(rng)
        a = _aligned_random(rng, self.a_shape(), self.dtype, aligned)
        b = _aligned_random(rng, self.b_shape(), self.dtype, aligned)
        c = _aligned_random(rng, self.c_shape(), self.dtype, aligned)
        return a, b, c

    def key(self) -> tuple:
        """Hashable identity used for runtime memoisation of predictions.

        The routine name leads so keys from different routines with
        coinciding dimensions can never alias in a shared table.
        """
        return (self.routine, self.m, self.k, self.n, self.dtype,
                self.transa.value, self.transb.value)


def _aligned_random(rng, shape, dtype, aligned: bool, alignment: int = 64):
    n_items = int(np.prod(shape))
    itemsize = np.dtype(dtype).itemsize
    if not aligned:
        return rng.standard_normal(shape).astype(dtype)
    raw = np.empty(n_items * itemsize + alignment, dtype=np.uint8)
    offset = (-raw.ctypes.data) % alignment
    view = raw[offset : offset + n_items * itemsize].view(dtype).reshape(shape)
    view[...] = rng.standard_normal(shape).astype(dtype)
    # Keep the raw buffer alive through the view's base reference chain.
    return view


def gemm(spec: GemmSpec, a, b, c, backend=None):
    """Execute ``spec`` on concrete operands using ``backend``.

    ``backend`` is any callable ``(spec, a, b, c) -> c``; by default the
    strict reference kernel is used.  The parallel executor in
    :mod:`repro.gemm.parallel` and the machine simulator both satisfy the
    same signature, which is what lets ADSALA treat GEMM as a black box.
    """
    from repro.gemm.reference import gemm_reference

    backend = backend or gemm_reference
    return backend(spec, a, b, c)


def sgemm(transa, transb, m, n, k, alpha, a, b, beta, c, backend=None):
    """Single-precision GEMM following the classic BLAS argument order.

    Note BLAS orders the dimension arguments ``M, N, K`` (as in Listing 1
    of the paper) whereas :class:`GemmSpec` stores ``m, k, n``.
    """
    spec = GemmSpec(m=m, k=k, n=n, dtype="float32", transa=transa, transb=transb,
                    alpha=alpha, beta=beta)
    return gemm(spec, a, b, c, backend=backend)


def dgemm(transa, transb, m, n, k, alpha, a, b, beta, c, backend=None):
    """Double-precision GEMM following the classic BLAS argument order."""
    spec = GemmSpec(m=m, k=k, n=n, dtype="float64", transa=transa, transb=transb,
                    alpha=alpha, beta=beta)
    return gemm(spec, a, b, c, backend=backend)
