"""Panel packing into contiguous per-thread workspaces.

High-performance GEMM implementations copy blocks of the operands into
contiguous, cache-resident buffers before the inner kernel runs.  The
paper's profiler analysis (Table VII) shows this "data copy" phase can
dominate wall-time when many threads each re-pack overlapping panels of
a small matrix.  This module implements the packing primitives for the
real threaded executor and exposes the copy-volume arithmetic the
machine simulator reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gemm.partition import Partition2D


@dataclass
class PackingBuffer:
    """A reusable per-thread workspace holding packed A and B panels.

    Real BLAS implementations size these buffers from the cache hierarchy;
    here the capacity is explicit so tests can assert on reuse behaviour.
    The buffer tracks the total number of elements copied through it,
    which the instrumentation layer reports as the data-copy volume.
    """

    capacity: int
    dtype: str = "float32"
    _buf: np.ndarray = field(init=False, repr=False)
    copied_elements: int = field(init=False, default=0)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buf = np.empty(self.capacity, dtype=self.dtype)

    def pack(self, block: np.ndarray) -> np.ndarray:
        """Copy ``block`` into the workspace, returning a contiguous view.

        Raises :class:`ValueError` when the block exceeds the workspace;
        callers are expected to tile their panels to fit.
        """
        needed = block.size
        if needed > self.capacity:
            raise ValueError(
                f"block of {needed} elements exceeds workspace capacity {self.capacity}"
            )
        out = self._buf[:needed].reshape(block.shape)
        np.copyto(out, block)
        self.copied_elements += needed
        return out

    def reset_stats(self) -> None:
        self.copied_elements = 0


def pack_block(src: np.ndarray, rows, cols, workspace: PackingBuffer = None) -> np.ndarray:
    """Extract ``src[rows, cols]`` as a contiguous panel.

    ``rows``/``cols`` are ``(start, stop)`` tuples.  When ``workspace`` is
    given the copy goes through it (counting towards its statistics);
    otherwise a fresh contiguous array is returned.
    """
    r0, r1 = rows
    c0, c1 = cols
    if not (0 <= r0 <= r1 <= src.shape[0] and 0 <= c0 <= c1 <= src.shape[1]):
        raise ValueError(f"block [{r0}:{r1}, {c0}:{c1}] out of bounds for {src.shape}")
    block = src[r0:r1, c0:c1]
    if workspace is not None:
        return workspace.pack(block)
    return np.ascontiguousarray(block)


def packing_volume(m: int, k: int, n: int, p: int) -> int:
    """Total elements copied when packing for a ``p``-thread 2D schedule.

    Every grid column re-packs its A row-panel and every grid row re-packs
    its B column-panel, so the volume *grows* with the thread count even
    though the problem size is fixed — the mechanism behind the paper's
    Table VII observation that 96 threads spend 163 s copying for a GEMM
    whose operands total ~1 MB.
    """
    part = Partition2D.for_threads(m, k, n, p)
    return part.packed_a_volume() + part.packed_b_volume()


def packing_bytes(m: int, k: int, n: int, p: int, dtype: str = "float32") -> int:
    """Packed traffic in bytes for a ``p``-thread schedule."""
    return packing_volume(m, k, n, p) * np.dtype(dtype).itemsize
