"""GEMM substrate: BLAS-style interfaces, kernels, packing and threading.

This package provides the matrix-multiplication machinery that ADSALA
treats as a black box:

- :mod:`repro.gemm.interface` — the BLAS-style problem description
  (:class:`GemmSpec`) with transpose flags, scaling factors and leading
  dimensions, plus FLOP and memory accounting.
- :mod:`repro.gemm.reference` — a strict reference implementation used
  as the correctness oracle in tests.
- :mod:`repro.gemm.blocked` — a single-threaded cache-blocked kernel.
- :mod:`repro.gemm.packing` — panel packing into contiguous per-thread
  workspaces with copy-volume accounting (the "data copy" component the
  paper profiles in Table VII).
- :mod:`repro.gemm.partition` — 1D/2D thread-wise job assignment.
- :mod:`repro.gemm.parallel` — a real multi-threaded blocked GEMM built
  on a Python thread pool (numpy's inner dot releases the GIL), with
  per-phase instrumentation mirroring the paper's profiler breakdown.
"""

from repro.gemm.interface import GemmSpec, Transpose, gemm, sgemm, dgemm
from repro.gemm.counts import gemm_flops, gemm_memory_bytes
from repro.gemm.reference import gemm_reference
from repro.gemm.blocked import BlockSizes, gemm_blocked
from repro.gemm.partition import Partition1D, Partition2D, choose_thread_grid, split_range
from repro.gemm.packing import PackingBuffer, pack_block, packing_volume
from repro.gemm.parallel import ExecutorPool, ParallelGemm, GemmTimings

__all__ = [
    "GemmSpec",
    "Transpose",
    "gemm",
    "sgemm",
    "dgemm",
    "gemm_flops",
    "gemm_memory_bytes",
    "gemm_reference",
    "BlockSizes",
    "gemm_blocked",
    "Partition1D",
    "Partition2D",
    "choose_thread_grid",
    "split_range",
    "PackingBuffer",
    "pack_block",
    "packing_volume",
    "ParallelGemm",
    "GemmTimings",
    "ExecutorPool",
]
