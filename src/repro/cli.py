"""Command-line interface: install, registry, predict, batch-serve.

Mirrors how a deployed ADSALA would be driven::

    python -m repro install --machine gadi --shapes 150 --cap-mb 100 --out ./install
    python -m repro install --machine gadi --jobs 4 --resume --out ./install
    python -m repro install --matrix --machine gadi --machine setonix \\
                            --routine gemm --routine gemv --out ./registry
    python -m repro models  --registry ./registry
    python -m repro models  --registry ./registry --inspect gemv/gadi@1
    python -m repro models  --registry ./registry --compile gemv/gadi@1
    python -m repro models  --registry ./registry --compile-table gemv/gadi@1
    python -m repro predict --install ./install 64 2048 64
    python -m repro batch   --install ./install --machine gadi shapes.txt
    python -m repro batch   --registry ./registry --machine gadi mixed.txt
    python -m repro models  --registry ./registry --gc 3
    python -m repro serve   --install ./install --rate 500 shapes.txt
    python -m repro serve   --registry ./registry --rate 500 mixed.txt
    python -m repro serve   --registry ./registry --workers 4 \\
                            --router least_loaded mixed.txt
    python -m repro serve   --install ./install --trace --obs-dir ./obs shapes.txt
    python -m repro fleet   --registry ./registry --workers 2 --route-file mixed.txt
    python -m repro obs     ./obs
    python -m repro obs     ./obs --tail 5
    python -m repro obs     ./obs --dump
    python -m repro demo    --machine setonix

The ``install`` command runs the staged training pipeline (on the named
simulated machine, or ``--machine host`` for real execution) and writes
the artefacts: ``--jobs`` fans hyper-parameter tuning across workers
(selection is bitwise identical at any worker count), ``--resume``
keeps a stage cache under the output directory so an interrupted
installation re-executes only unfinished stages, ``--routine`` trains
for a non-GEMM BLAS routine, and ``--matrix`` trains every (routine,
machine) cell and publishes versioned bundles into a model registry.
``models`` lists, inspects or compiles registry entries (``--compile``
(re)builds a bundle's compiled inference plan and publishes it as a new
version — published bundles stay immutable — ``--compile-table``
pre-evaluates the plan over the campaign shape lattice into a tier-0
decision table, and ``--inspect`` shows plan presence, packed-array
sizes and decision-table coverage); ``predict`` loads
artefacts and reports the thread choice for a shape; ``batch`` serves a
whole shape file through the engine's
:class:`~repro.engine.service.GemmService` (deduplicated, vectorised
prediction) and reports cache effectiveness; ``serve`` replays the
shape file as a Poisson request stream through the async
:class:`~repro.serve.server.GemmServer` (micro-batching, admission
control, optionally several machine shards) and reports latency
percentiles and the batch-size distribution; ``demo`` runs a quick
before/after comparison.

``batch`` and ``serve`` also run **registry-driven**: with
``--registry`` instead of ``--install``, the request file may mix
routines (``gemv 2048 512`` lines next to plain ``m k n`` GEMM
triples) and every request is answered by its routine's own published
model — one multi-routine engine service for ``batch``, one shard per
routine behind a :class:`~repro.serve.router.RoutineRouter` for
``serve``.

``serve --workers N`` (registry mode) replays the trace through a
multi-process :class:`~repro.fleet.FleetServer` instead — N spawned
worker processes, each a full server over its own registry-loaded
service, behind a least-loaded or consistent-hash front router; with
``--watch-interval`` workers hot-reload whenever the registry's
``latest`` moves.  ``fleet`` inspects that deployment shape without
serving traffic: it spawns the workers, reports each one's pid and
loaded versions, and previews where a trace file's requests would
route.  ``models --gc N`` bounds registry disk by deleting all but the
newest N versions per (routine, machine) cell (never the one
``latest`` points at).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.library import AdsalaGemm
from repro.core.serialize import load_bundle, save_bundle
from repro.core.training import InstallationWorkflow
from repro.engine.service import GemmService
from repro.gemm.interface import GemmSpec
from repro.gemm.partition import choose_thread_grid
from repro.machine.host import HostMachine
from repro.machine.presets import PRESETS, by_name
from repro.machine.simulator import MachineSimulator
from repro.train.registry import ROUTINES

MB = 1024 * 1024


def _machine(name: str, seed: int):
    if name == "host":
        return HostMachine(seed=seed)
    return MachineSimulator(by_name(name), seed=seed)


def cmd_install(args) -> int:
    machines = args.machine or ["gadi"]
    routines = args.routine or ["gemm"]
    cache = os.path.join(args.out, ".stage_cache") if args.resume else None
    settings = dict(
        n_shapes=args.shapes, memory_cap_bytes=args.cap_mb * MB,
        budget=args.budget, label_transform=args.label_transform,
        tune_iters=args.tune_iters, cv_folds=args.cv_folds)

    if args.matrix:
        from repro.train.matrix import TrainingMatrix

        try:
            matrix = TrainingMatrix(routines, machines, registry=args.out,
                                    cache=cache, n_jobs=args.jobs,
                                    executor=args.executor, seed=args.seed,
                                    **settings)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"training matrix: {len(matrix.cells())} cells "
              f"({'/'.join(routines)} x {'/'.join(machines)}), "
              f"{args.jobs} worker(s)")
        result = matrix.run(progress=print)
        stats = result.stage_stats
        print(f"registry at {args.out}/ — {len(result.records)} bundles "
              f"published (stage cache: {stats['hits']} hits, "
              f"{stats['misses']} misses)")
        return 0

    if len(machines) > 1 or len(routines) > 1:
        print("error: several --machine/--routine values need --matrix",
              file=sys.stderr)
        return 2
    routine, machine_name = routines[0], machines[0]
    if routine == "gemm":
        machine = _machine(machine_name, args.seed)
        grid = choose_thread_grid(machine.max_threads())
        workflow = InstallationWorkflow(
            machine, thread_grid=grid, seed=args.seed, n_jobs=args.jobs,
            executor=args.executor, **settings)
    else:
        if machine_name == "host":
            print("error: non-GEMM routines install on simulated machines "
                  "only (pick a preset)", file=sys.stderr)
            return 2
        from repro.train.matrix import build_workflow

        workflow = build_workflow(routine, machine_name, seed=args.seed,
                                  n_jobs=args.jobs, executor=args.executor,
                                  **settings)
        grid = workflow.thread_grid
    print(f"installing {routine} on {machine_name}: {args.shapes} shapes, "
          f"<= {args.cap_mb} MB, grid {grid}, {args.jobs} worker(s)")
    bundle = workflow.run(cache=cache)
    from repro.bench.report import format_table

    print(format_table(bundle.report.as_table(), title="model bake-off"))
    print(f"selected: {bundle.report.selected}")
    if args.resume:
        run = workflow.last_pipeline_.last_run_
        print(f"stage cache: {run.cache_hits} stage(s) replayed, "
              f"{len(run.executed)} executed")
    save_bundle(bundle, args.out)
    print(f"artefacts written to {args.out}/")
    return 0


def _parse_model_ref(ref: str):
    """``routine/machine[@version]`` -> (routine, machine, version)."""
    if "/" not in ref:
        raise ValueError(f"expected ROUTINE/MACHINE[@VERSION], got {ref!r}")
    routine, rest = ref.split("/", 1)
    version = "latest"
    if "@" in rest:
        rest, version = rest.rsplit("@", 1)
    return routine, rest, version


def _print_plan_meta(plan_meta: dict) -> None:
    """Render compiled-plan metadata (kind, node/array sizes)."""
    print(f"  plan:     pipeline={plan_meta.get('pipeline')} "
          f"model={plan_meta.get('model')}"
          f"{'' if plan_meta.get('fully_lowered') else '  (partial)'}")
    arrays = plan_meta.get("model_arrays") or {}
    if "n_trees" in arrays:
        print(f"            {arrays['n_trees']} trees, "
              f"{arrays['n_nodes']} packed nodes, "
              f"depth <= {arrays['max_depth']}, "
              f"{arrays['nbytes']} bytes")
    elif arrays:
        print(f"            {arrays.get('n_features')} coefficients, "
              f"{arrays.get('nbytes')} bytes")
    transform = plan_meta.get("transform")
    if transform:
        print(f"            fused transform: "
              f"{transform['n_features_in']} -> "
              f"{transform['n_features_out']} features, "
              f"yeo_johnson={transform['yeo_johnson']}, "
              f"{transform['nbytes']} bytes")


def _print_table_meta(table_meta: dict) -> None:
    """Render decision-table metadata (lattice, memory, coverage)."""
    shape = "x".join(str(s) for s in table_meta.get("lattice_shape", []))
    print(f"  table:    lattice {shape} "
          f"({table_meta.get('n_points')} points, "
          f"{table_meta.get('nbytes')} bytes, "
          f"snap={table_meta.get('snap')})")
    coverage = table_meta.get("coverage")
    if coverage is not None:
        print(f"            covers {coverage:.0%} of the campaign shape "
              f"distribution ({table_meta.get('n_probe')} probes)")
    ranges = table_meta.get("axis_ranges")
    if ranges:
        spans = ", ".join(f"{lo}..{hi}" for lo, hi in ranges)
        print(f"            axis ranges: {spans}")


def cmd_models(args) -> int:
    from repro.bench.report import format_table
    from repro.core.serialize import BundleError
    from repro.train.registry import ModelRegistry, RegistryError

    registry = ModelRegistry(args.registry)
    try:
        if args.gc is not None:
            report = registry.gc(keep_last=args.gc)
            if not report["n_removed"]:
                print(f"gc: nothing to collect ({report['n_kept']} versions "
                      f"within keep_last={report['keep_last']})")
                return 0
            print(f"gc: removed {report['n_removed']} versions, kept "
                  f"{report['n_kept']} (keep_last={report['keep_last']})")
            for ref in report["removed"]:
                print(f"  removed {ref}")
            return 0
        if args.compile_table:
            routine, machine, version = _parse_model_ref(args.compile_table)
            info = registry.compile_table(routine, machine, version,
                                          snap=args.snap)
            if info.get("up_to_date"):
                print(f"{routine}/{machine}@{info['version']}: decision "
                      f"table already up to date; no new version published")
                _print_table_meta(info["table"])
                return 0
            print(f"decision table for {routine}/{machine}"
                  f"@{info['table_from_version']} published as "
                  f"version {info['version']}")
            print(f"  checksum: {info['checksum']}")
            _print_table_meta(info["table"])
            return 0
        if args.refine_table:
            from repro.core.routines import routine_of

            routine, machine, version = _parse_model_ref(args.refine_table)
            if not args.shapes_file:
                raise ValueError(
                    "--refine-table needs --shapes-file with the observed "
                    "off-lattice request shapes")
            specs = parse_trace_file(args.shapes_file)
            shapes = [tuple(int(v) for v in s.dims) for s in specs
                      if routine_of(s) == routine]
            if not shapes:
                raise ValueError(
                    f"{args.shapes_file}: no {routine} requests to refine "
                    f"the lattice from")
            info = registry.refine_table(routine, machine, version,
                                         shapes=shapes)
            if info.get("up_to_date"):
                print(f"{routine}/{machine}@{info['version']}: lattice "
                      f"already covers the {info['n_miss_shapes']} offered "
                      f"shapes (generation {info['generation']}); no new "
                      f"version published")
                return 0
            print(f"refined decision table for {routine}/{machine}"
                  f"@{info['refined_from_version']} published as version "
                  f"{info['version']} (generation {info['generation']}, "
                  f"{info['n_miss_shapes']} miss shapes)")
            print(f"  checksum: {info['checksum']}")
            _print_table_meta(info["table"])
            return 0
        if args.compile:
            routine, machine, version = _parse_model_ref(args.compile)
            info = registry.compile_plan(routine, machine, version)
            if info["plan"] is None:
                print(f"{routine}/{machine}@{info['version']}: nothing "
                      f"lowerable (model and pipeline keep the object "
                      f"path); no new version published")
                return 0
            if info.get("up_to_date"):
                print(f"{routine}/{machine}@{info['version']}: compiled "
                      f"plan already up to date; no new version published")
                _print_plan_meta(info["plan"])
                return 0
            print(f"compiled plan for {routine}/{machine}"
                  f"@{info['compiled_from_version']} published as "
                  f"version {info['version']}")
            print(f"  checksum: {info['checksum']}")
            _print_plan_meta(info["plan"])
            return 0
        if args.inspect:
            routine, machine, version = _parse_model_ref(args.inspect)
            info = registry.inspect(routine, machine, version)
            print(f"{routine}/{machine}@{info['version']}"
                  f"{'  (latest)' if info['latest'] else ''}")
            print(f"  path:     {info['path']}")
            print(f"  checksum: {info['checksum']}")
            manifest = info["manifest"] or {}
            print(f"  schema:   {manifest.get('schema_version')}")
            print(f"  model:    {manifest.get('model_name')}")
            plan_meta = manifest.get("plan")
            if info["has_plan"] and plan_meta:
                _print_plan_meta(plan_meta)
            else:
                print("  plan:     none (build with --compile "
                      f"{routine}/{machine}@{info['version']})")
            table_meta = manifest.get("table")
            if info["has_table"] and table_meta:
                _print_table_meta(table_meta)
            else:
                print("  table:    none (build with --compile-table "
                      f"{routine}/{machine}@{info['version']})")
            selection = manifest.get("selection")
            if selection:
                print()
                print(format_table(selection, title="selection report"))
            return 0
        entries = registry.entries()
    except (RegistryError, BundleError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"registry {args.registry} has no published models")
        return 0
    rows = [{"routine": e.routine, "machine": e.machine,
             "version": e.version, "model": e.model_name,
             "checksum": e.checksum[:12],
             "plan": "*" if registry.has_plan(e) else "",
             "table": "*" if registry.has_table(e) else "",
             "latest": "*" if e.latest else ""} for e in entries]
    print(format_table(rows, title=f"registry {args.registry}"))
    return 0


def cmd_predict(args) -> int:
    bundle = load_bundle(args.install)
    predictor = bundle.predictor()
    p = predictor.predict_threads(args.m, args.k, args.n)
    spec = GemmSpec(args.m, args.k, args.n)
    print(f"GEMM {spec.dims} ({spec.memory_mb:.1f} MB): "
          f"predicted optimal threads = {p} "
          f"(grid max {int(predictor.thread_grid.max())})")
    return 0


def parse_trace_file(path: str, dtype="float32") -> list:
    """Read one routine request per line into a list of specs.

    A line is either a bare ``m k n`` triple (GEMM, the historic shape
    file format) or a routine name followed by that routine's natural
    dimensions from the central registry — ``gemv m n``, ``syrk n k``,
    ``trsm m n``.  Commas work as separators and ``#`` starts a
    comment.  ``dtype`` is a precision name, or a mapping of routine
    name to precision (registry-driven serving, where each routine's
    bundle records its own trained dtype).
    """
    from repro.core.routines import REGISTRY, get_routine

    specs = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            parts = text.replace(",", " ").split()
            routine = "gemm"
            if parts and parts[0] in REGISTRY:
                routine, parts = parts[0], parts[1:]
            info = get_routine(routine)
            if len(parts) != info.n_dims or not all(
                    p.lstrip("-").isdigit() for p in parts):
                raise ValueError(
                    f"{path}:{lineno}: expected "
                    f"'[{routine}] {' '.join(info.dim_names)}', "
                    f"got {line.strip()!r}")
            precision = dtype.get(routine, "float32") \
                if isinstance(dtype, dict) else dtype
            specs.append(info.build(*(int(p) for p in parts),
                                    dtype=precision))
    if not specs:
        raise ValueError(f"{path}: no requests found")
    return specs


def _registry_machine(registry, requested: str, seed: int):
    """Resolve the execution machine for a registry-driven command."""
    if requested is not None:
        return requested, _machine(requested, seed)
    machines = sorted({e.machine for e in registry.entries() if e.latest})
    if len(machines) != 1:
        raise ValueError(
            f"registry publishes machines {machines or '[]'}; pick one "
            f"with --machine")
    return machines[0], _machine(machines[0], seed)


def cmd_batch(args) -> int:
    try:
        if args.registry:
            from repro.train.registry import ModelRegistry

            registry = ModelRegistry(args.registry)
            machine_name, machine = _registry_machine(registry, args.machine,
                                                      args.seed)
            service = GemmService.from_registry(
                registry, machine, machine_name=machine_name,
                routines=args.routine or None, repeats=args.repeats,
                cache_size=args.cache_size)
            specs = parse_trace_file(
                args.shapes_file,
                dtype={routine: info.get("dtype", "float32")
                       for routine, info in service.routine_info.items()})
        else:
            bundle = load_bundle(args.install)
            machine_name = args.machine or bundle.config.machine
            machine = _machine(machine_name, args.seed)
            specs = parse_trace_file(args.shapes_file,
                                     dtype=bundle.config.dtype)
            service = GemmService.from_bundle(bundle, machine,
                                              repeats=args.repeats,
                                              cache_size=args.cache_size)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records = service.run_batch(specs)

    from repro.bench.report import cache_effectiveness_table, format_table
    from repro.core.routines import routine_of

    mixed = len({routine_of(r.spec) for r in records}) > 1
    per_shape = {}
    for record in records:
        routine = routine_of(record.spec)
        label = f"{routine} {record.spec.dims}" if mixed \
            else str(record.spec.dims)
        entry = per_shape.setdefault((routine, record.spec.dims), {
            "request": label,
            "threads": record.n_threads, "calls": 0, "total_ms": 0.0})
        entry["calls"] += 1
        entry["total_ms"] += record.runtime * 1e3
    rows = [{**e, "total_ms": round(e["total_ms"], 3)}
            for e in per_shape.values()]
    print(format_table(rows, title=f"batch of {len(records)} calls "
                                   f"on {machine_name}"))

    total_ml = sum(r.runtime for r in records)
    print(f"\ntotal ADSALA runtime: {total_ml * 1e3:.3f} ms")
    if args.baseline:
        from repro.engine.cache import routine_key

        baselines = {}
        for record in records:
            key = routine_key(record.spec)
            if key not in baselines:
                baselines[key] = service.run_baseline(record.spec)
        total_base = sum(baselines[routine_key(r.spec)] for r in records)
        print(f"max-thread baseline:  {total_base * 1e3:.3f} ms "
              f"(speedup {total_base / total_ml:.2f}x)")
    print()
    print(cache_effectiveness_table(service.stats()))
    return 0


def _worker_version_cell(versions: dict) -> str:
    return ",".join(f"{routine}@{version}"
                    for routine, version in sorted(versions.items()))


def _serve_fleet(args, machine_name: str, routines, specs) -> int:
    """Registry-mode ``serve --workers N``: replay through a fleet."""
    from repro.bench.report import format_table
    from repro.fleet import FleetServer
    from repro.serve.trace import poisson_trace, replay_trace

    trace = poisson_trace(specs, rate_hz=args.rate, n_requests=args.requests,
                          n_clients=args.clients, seed=args.seed)
    server = FleetServer.from_registry(
        args.registry, machine_name, workers=args.workers,
        routines=tuple(routines), router=args.router,
        watch_interval_s=args.watch_interval, seed=args.seed,
        repeats=args.repeats, cache_size=args.cache_size,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        max_batch_cost=args.cost_budget, max_queue=args.max_queue)
    print(f"replaying {len(trace)} requests at ~{args.rate:g}/s "
          f"({args.clients} clients) across {args.workers} workers "
          f"({args.router} routing)")
    outcome = replay_trace(server, trace)
    stats = outcome.stats
    print()
    print(format_table([outcome.report_row(f"fleet-{args.workers}w")],
                       title="serve replay"))
    rows = []
    for name, entry in sorted(stats["workers"].items()):
        counters = entry.get("counters", {})
        rows.append({"worker": name, "pid": entry.get("pid"),
                     "dispatched": counters.get("dispatched", 0),
                     "completed": counters.get("completed", 0),
                     "failed": counters.get("failed", 0),
                     "frames": counters.get("frames", 0),
                     "outstanding_cost": counters.get(
                         "outstanding_cost_flops", 0.0),
                     "reloads": entry.get("reloads", 0),
                     "versions": _worker_version_cell(
                         entry.get("versions", {}))})
    print()
    print(format_table(rows, title="fleet workers"))
    print(f"\nfleet: {stats.get('served', outcome.served)} served, "
          f"{stats.get('rejected', 0)} rejected, {stats.get('batches', 0)} "
          f"worker batches, {stats.get('model_passes', 0)} model passes")
    return 0


def cmd_fleet(args) -> int:
    import asyncio
    from collections import Counter

    from repro.bench.report import format_table
    from repro.fleet import FleetServer
    from repro.train.registry import ModelRegistry

    try:
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        registry = ModelRegistry(args.registry)
        machine_name, _ = _registry_machine(registry, args.machine, args.seed)
        routines = args.routine or list(dict.fromkeys(
            e.routine for e in registry.entries()
            if e.machine == machine_name and e.latest))
        if not routines:
            raise ValueError(
                f"no published routines for machine {machine_name!r} "
                f"in registry {args.registry}")
        specs = (parse_trace_file(args.route_file)
                 if args.route_file else None)
        server = FleetServer.from_registry(
            args.registry, machine_name, workers=args.workers,
            routines=tuple(routines), router=args.router, seed=args.seed)

        async def inspect():
            # Routing must be previewed while workers are alive: dead
            # workers leave the routing ring.
            async with server:
                live = await server.worker_stats()
                assignment = (server.router.route_batch(specs)
                              if specs else None)
                return live, assignment

        live, assignment = asyncio.run(inspect())
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [{"worker": name,
             "pid": stats.get("pid"),
             "reloads": stats.get("reloads", 0),
             "versions": _worker_version_cell(stats.get("versions", {}))}
            for name, stats in sorted(live.items())]
    print(format_table(
        rows, title=f"fleet: {args.workers} workers over {args.registry} "
                    f"({machine_name}, {args.router} routing)"))
    if assignment is not None:
        counts = Counter(assignment)
        # Cost-weight the preview: per-worker predicted FLOPs shows
        # whether the routing policy balances load, not just requests.
        costs = server.cost_model.cost_of(specs)
        cost_by_worker = Counter()
        for name, cost in zip(assignment, costs):
            cost_by_worker[name] += cost
        print()
        print(format_table(
            [{"worker": name, "requests": counts.get(name, 0),
              "predicted_cost_flops": round(cost_by_worker.get(name, 0.0))}
             for name in sorted(live)],
            title=f"routing preview: {len(assignment)} requests from "
                  f"{args.route_file} ({args.router} routing)"))
    return 0


def cmd_serve(args) -> int:
    from repro.serve.router import RoutineRouter
    from repro.serve.server import GemmServer
    from repro.serve.trace import poisson_trace, replay_trace

    try:
        if args.requests is not None and args.requests < 1:
            raise ValueError("--requests must be >= 1")
        if args.cost_budget is not None and args.cost_budget <= 0:
            raise ValueError("--cost-budget must be > 0 FLOPs")
        if args.refine_after is not None:
            if args.refine_after < 1:
                raise ValueError("--refine-after must be >= 1")
            if not args.registry:
                raise ValueError("--refine-after republishes refined "
                                 "tables, which needs --registry mode")
        if args.workers < 1:
            raise ValueError("--workers must be >= 1")
        if args.workers > 1:
            if not args.registry:
                raise ValueError("--workers > 1 spawns a fleet whose "
                                 "workers load from the registry; needs "
                                 "--registry mode")
            if args.refine_after is not None:
                raise ValueError("--refine-after reads in-process "
                                 "predictor counters; not available with "
                                 "--workers > 1")
            if args.trace or args.obs_dir:
                raise ValueError("--trace/--obs-dir instrument the "
                                 "in-process server; not available with "
                                 "--workers > 1")
        router = None
        if args.registry:
            # One shard per published routine, routed by routine name:
            # a single server answers a mixed GEMM/GEMV/TRSM/SYRK trace
            # with each request resolved by its routine's model.
            from repro.train.registry import ModelRegistry

            if args.machine and len(args.machine) > 1:
                raise ValueError(
                    "--registry mode shards per routine on one machine; "
                    "pass a single --machine")
            registry = ModelRegistry(args.registry)
            machine_name, _ = _registry_machine(registry, args.machine[0]
                                                if args.machine else None,
                                                args.seed)
            routines = args.routine or list(dict.fromkeys(
                e.routine for e in registry.entries()
                if e.machine == machine_name and e.latest))
            if not routines:
                raise ValueError(
                    f"no published routines for machine {machine_name!r} "
                    f"in registry {args.registry}")
            bundles = {routine: registry.load(routine, machine_name)
                       for routine in routines}
            shards = {routine: GemmService.from_bundle(
                bundle, _machine(machine_name, args.seed),
                repeats=args.repeats, cache_size=args.cache_size)
                for routine, bundle in bundles.items()}
            router = RoutineRouter()
            specs = parse_trace_file(
                args.shapes_file,
                dtype={routine: bundle.config.dtype
                       for routine, bundle in bundles.items()})
            if args.workers > 1:
                return _serve_fleet(args, machine_name, routines, specs)
        else:
            bundle = load_bundle(args.install)
            machines = args.machine or [bundle.config.machine]
            specs = parse_trace_file(args.shapes_file,
                                     dtype=bundle.config.dtype)
            shards = {name: GemmService.from_bundle(
                bundle, _machine(name, args.seed), repeats=args.repeats,
                cache_size=args.cache_size) for name in machines}
        trace = poisson_trace(specs, rate_hz=args.rate,
                              n_requests=args.requests,
                              n_clients=args.clients, seed=args.seed)
        tracing = args.trace or args.obs_dir is not None
        server = GemmServer(shards, router=router,
                            max_batch=args.max_batch,
                            max_wait_ms=args.max_wait_ms,
                            max_batch_cost=args.cost_budget,
                            max_queue=args.max_queue,
                            tracing=tracing)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"replaying {len(trace)} requests at ~{args.rate:g}/s "
          f"({args.clients} clients) across shards {sorted(shards)}")
    outcome = replay_trace(server, trace)

    from repro.bench.report import (batch_size_table,
                                    cache_effectiveness_table, format_table,
                                    latency_table)

    print()
    print(format_table([outcome.report_row("micro-batched")],
                       title="serve replay"))
    stats = outcome.stats
    if stats.get("latency_ms"):
        print()
        print(latency_table({"latency": server.telemetry.latency(),
                             "queue wait": server.telemetry.wait()},
                            title="request latency (ms)"))
    if stats["batch_size_histogram"]:
        print()
        print(batch_size_table(stats["batch_size_histogram"]))
    closes_by_shard = stats.get("batch_closes_by_shard", {})
    routine_rows = []
    for routine, entry in sorted(stats["routines"].items()):
        row = {"routine": routine,
               **{k: v for k, v in entry.items()
                  if k not in ("latency_ms", "queue_wait_ms")}}
        if args.cost_budget is not None:
            # Registry mode shards per routine, so a shard's batch-close
            # counters are its routine's.
            row["cost_closed"] = closes_by_shard.get(routine,
                                                     {}).get("cost", 0)
        routine_rows.append(row)
    if len(routine_rows) > 1:
        print()
        print(format_table(routine_rows, title="per-routine traffic"))
    if args.cost_budget is not None:
        cost_closed = stats.get("batch_close_reasons", {}).get("cost", 0)
        batch_cost = stats.get("batch_cost", {})
        line = (f"\ncost budget {args.cost_budget:g} FLOPs: "
                f"{cost_closed} cost-closed batches")
        if batch_cost.get("count"):
            line += (f", mean batch cost "
                     f"{batch_cost['mean']:.4g} FLOPs")
        print(line)
    for name in sorted(shards):
        print()
        print(cache_effectiveness_table(stats["shards"][name],
                                        title=f"shard {name}"))
    print(f"\nmodel passes: {stats['model_passes']} covering "
          f"{stats['evaluations']} evaluated shapes and {stats['served']} "
          f"served requests (per-request serving would pay "
          f"{stats['evaluations']} passes)")
    if server.collector is not None:
        trace_stats = server.collector.stats()
        print(f"trace: {trace_stats['complete']} complete span chains of "
              f"{trace_stats['traces']} finished traces "
              f"({trace_stats['dropped']} dropped)")
    if args.refine_after is not None:
        # Close the tier-0 loop: any predictor whose fallback counter
        # crossed the threshold donates its miss reservoir to a lattice
        # refinement, republished as a new immutable version.
        print()
        refined = 0
        for shard_name in sorted(shards):
            for routine, predictor in sorted(
                    shards[shard_name].predictors.items()):
                if getattr(predictor, "table", None) is None:
                    continue
                if predictor.n_table_fallbacks < args.refine_after \
                        or not len(predictor.fallback_shapes):
                    continue
                info = registry.refine_table(
                    routine, machine_name,
                    shapes=predictor.fallback_shapes.shapes())
                refined += 1
                if info.get("up_to_date"):
                    print(f"refine {routine}/{machine_name}: lattice "
                          f"already covers the observed misses "
                          f"(generation {info['generation']})")
                else:
                    print(f"refine {routine}/{machine_name}: "
                          f"{predictor.n_table_fallbacks} fallbacks >= "
                          f"{args.refine_after}; published version "
                          f"{info['version']} (generation "
                          f"{info['generation']}, "
                          f"{info['n_miss_shapes']} miss shapes)")
        if refined == 0:
            print(f"refine: no routine crossed {args.refine_after} table "
                  f"fallbacks with a new off-lattice shape")
    if args.obs_dir:
        from repro.obs.exporters import write_snapshot

        written = write_snapshot(server.registry, args.obs_dir,
                                 collector=server.collector, stats=stats)
        print("observability artefacts:")
        for role, path in sorted(written.items()):
            print(f"  {role:<10} {path}")
    return 0


def _span_ms(span: dict) -> float:
    return span.get("duration_s", 0.0) * 1e3


def cmd_obs(args) -> int:
    """Inspect an observability artefact directory (``serve --obs-dir``)."""
    import json

    from repro.bench.report import format_table
    from repro.obs.exporters import read_jsonl
    from repro.obs.tracing import CHAIN

    d = args.obs_dir
    stats_path = os.path.join(d, "stats.json")
    spans_path = os.path.join(d, "spans.jsonl")
    metrics_path = os.path.join(d, "metrics.jsonl")
    prom_path = os.path.join(d, "metrics.prom")
    if not os.path.isdir(d):
        print(f"error: {d} is not a directory (write one with "
              f"'repro serve ... --obs-dir {d}')", file=sys.stderr)
        return 2

    if args.dump:
        # Raw artefacts, machine-readable, ready to pipe elsewhere.
        for path in (prom_path, stats_path):
            if os.path.exists(path):
                print(f"# ---- {path}")
                with open(path) as fh:
                    sys.stdout.write(fh.read())
                print()
        return 0

    if args.tail:
        if not os.path.exists(spans_path):
            print(f"error: {spans_path} not found (serve with tracing "
                  f"enabled)", file=sys.stderr)
            return 2
        spans = read_jsonl(spans_path)
        by_trace: dict = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        recent = list(by_trace.items())[-args.tail:]
        for trace_id, chain in recent:
            root = next((s for s in chain if s["name"] == "request"),
                        chain[0])
            complete = "" if tuple(s["name"] for s in chain) == CHAIN \
                else "  [incomplete]"
            print(f"{trace_id}  client={root.get('client')} "
                  f"routine={root.get('routine', '-')} "
                  f"shard={root.get('shard')} "
                  f"status={root.get('status')}{complete}")
            for span in chain:
                if span["name"] == "request":
                    continue
                attrs = {k: v for k, v in span.items()
                         if k not in ("trace_id", "span_id", "parent_id",
                                      "name", "t_start", "t_end",
                                      "duration_s")}
                detail = " ".join(f"{k}={v}" for k, v in attrs.items()
                                  if v is not None)
                print(f"  {span['name']:<12} {_span_ms(span):9.3f} ms"
                      f"{'  ' + detail if detail else ''}")
        return 0

    # Default view: the stats table plus metric and event summaries.
    shown = False
    if os.path.exists(stats_path):
        with open(stats_path) as fh:
            payload = json.load(fh)
        stats = payload.get("stats") or {}
        rows = [{"metric": key, "value": value}
                for key, value in sorted(stats.items())
                if isinstance(value, (int, float, str))]
        if rows:
            print(format_table(rows, title=f"serve stats ({stats_path})"))
            shown = True
        trace_stats = payload.get("trace")
        if trace_stats:
            print(f"\ntrace: {trace_stats['complete']} complete chains of "
                  f"{trace_stats['traces']} traces "
                  f"({trace_stats['dropped']} dropped, capacity "
                  f"{trace_stats['capacity']})")
        events = payload.get("events") or []
        drifts = [e for e in events if e.get("event") == "drift"]
        if drifts:
            print()
            print(format_table(
                [{k: v for k, v in e.items() if k != "event"}
                 for e in drifts], title="drift events"))
    if os.path.exists(metrics_path):
        metrics = read_jsonl(metrics_path)
        kinds = {}
        for row in metrics:
            kinds[row.get("type", "?")] = kinds.get(row.get("type", "?"), 0) + 1
        summary = ", ".join(f"{n} {kind}s" for kind, n in sorted(kinds.items()))
        print(f"\nmetrics: {len(metrics)} series ({summary}) "
              f"in {metrics_path}")
        shown = True
    if not shown:
        print(f"error: no artefacts in {d} (expected stats.json / "
              f"metrics.jsonl from 'repro serve --obs-dir')",
              file=sys.stderr)
        return 2
    return 0


def cmd_demo(args) -> int:
    machine = _machine(args.machine, args.seed)
    workflow = InstallationWorkflow(
        machine, memory_cap_bytes=100 * MB, n_shapes=args.shapes,
        tune_iters=2, cv_folds=2, seed=args.seed)
    print(f"quick install on {args.machine}...")
    bundle = workflow.run()
    print(f"selected: {bundle.report.selected}")
    with AdsalaGemm(bundle, machine) as gemm:
        for dims in [(64, 2048, 64), (1024, 1024, 1024), (3000, 3000, 3000)]:
            spec = GemmSpec(*dims)
            record = gemm.run(spec)
            baseline = gemm.run_baseline(spec)
            print(f"  {str(dims):>20}: threads={record.n_threads:4d} "
                  f"speedup vs max = {baseline / record.runtime:6.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ADSALA: ML-guided GEMM thread selection")
    sub = parser.add_subparsers(dest="command", required=True)
    machines = sorted(PRESETS) + ["host"]

    p = sub.add_parser("install", help="run the staged training pipeline")
    p.add_argument("--machine", choices=machines, action="append",
                   default=None,
                   help="target machine; repeat with --matrix "
                        "(default: gadi)")
    p.add_argument("--routine", choices=sorted(ROUTINES), action="append",
                   default=None,
                   help="BLAS routine to train for; repeat with --matrix "
                        "(default: gemm)")
    p.add_argument("--matrix", action="store_true",
                   help="train every (routine, machine) cell and publish "
                        "versioned bundles into a registry at --out")
    p.add_argument("--jobs", type=int, default=1,
                   help="tuning workers; selection is bitwise identical "
                        "at any count")
    p.add_argument("--executor", choices=["thread", "process"],
                   default="thread",
                   help="worker kind for --jobs > 1")
    p.add_argument("--resume", action="store_true",
                   help="keep a stage cache under --out; an interrupted "
                        "install re-executes only unfinished stages")
    p.add_argument("--shapes", type=int, default=150)
    p.add_argument("--cap-mb", type=int, default=100)
    p.add_argument("--budget", choices=["fast", "full"], default="fast")
    p.add_argument("--label-transform", choices=["log", "sqrt", "identity"],
                   default="log")
    p.add_argument("--tune-iters", type=int, default=3)
    p.add_argument("--cv-folds", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True,
                   help="artefact output directory (registry root "
                        "with --matrix)")
    p.set_defaults(func=cmd_install)

    p = sub.add_parser("models", help="list, inspect or compile registry "
                                      "entries")
    p.add_argument("--registry", required=True, help="registry root directory")
    action = p.add_mutually_exclusive_group()
    action.add_argument("--inspect", default=None,
                        metavar="ROUTINE/MACHINE[@V]",
                        help="show one entry's manifest, compiled-plan "
                             "sizes, decision-table coverage and "
                             "selection report")
    action.add_argument("--compile", default=None,
                        metavar="ROUTINE/MACHINE[@V]",
                        help="(re)build one entry's compiled inference "
                             "plan, published as a new version")
    action.add_argument("--compile-table", dest="compile_table", default=None,
                        metavar="ROUTINE/MACHINE[@V]",
                        help="pre-evaluate one entry's compiled plan over "
                             "the campaign shape lattice into a tier-0 "
                             "decision table, published as a new version")
    action.add_argument("--refine-table", dest="refine_table", default=None,
                        metavar="ROUTINE/MACHINE[@V]",
                        help="densify one entry's table lattice where the "
                             "shapes in --shapes-file missed it, published "
                             "as a new version (no-op when the lattice "
                             "already covers them)")
    action.add_argument("--gc", type=int, default=None, metavar="N",
                        help="delete all but the newest N versions per "
                             "(routine, machine) cell; the version "
                             "'latest' points at is never collected")
    p.add_argument("--snap", choices=["exact", "nearest", "plateau"],
                   default="exact",
                   help="--compile-table snap mode: 'plateau' also answers "
                        "off-lattice shapes from cells whose corners agree "
                        "(validated against the plan at build time)")
    p.add_argument("--shapes-file", default=None, metavar="FILE",
                   help="observed request shapes for --refine-table (same "
                        "format as the batch/serve trace files)")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("predict", help="query a saved installation")
    p.add_argument("--install", required=True, help="artefact directory")
    p.add_argument("m", type=int)
    p.add_argument("k", type=int)
    p.add_argument("n", type=int)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("batch", help="serve a request file through the engine")
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--install", help="artefact directory")
    source.add_argument("--registry",
                        help="model-registry root: serve mixed-routine "
                             "traffic, one predictor per routine")
    p.add_argument("--machine", choices=machines, default=None,
                   help="execution backend (default: the installed machine)")
    p.add_argument("--routine", choices=sorted(ROUTINES), action="append",
                   default=None,
                   help="with --registry: routines to serve (default: all "
                        "published for the machine)")
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--baseline", action="store_true",
                   help="also time the max-thread baseline per unique shape")
    p.add_argument("shapes_file",
                   help="text file with one request per line: 'm k n' "
                        "(GEMM) or '<routine> dims...' (e.g. 'gemv 2048 512')")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("serve", help="replay a request file through the "
                                     "async micro-batching server")
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--install", help="artefact directory")
    source.add_argument("--registry",
                        help="model-registry root: one shard per routine, "
                             "routed by routine name")
    p.add_argument("--machine", choices=machines, action="append",
                   help="shard backend; repeat for multi-tenant shards "
                        "(default: the installed machine)")
    p.add_argument("--routine", choices=sorted(ROUTINES), action="append",
                   default=None,
                   help="with --registry: routines to shard (default: all "
                        "published for the machine)")
    p.add_argument("--workers", type=int, default=1,
                   help="with --registry: spawn a multi-process fleet of "
                        "this many workers instead of one in-process "
                        "server (default: 1)")
    p.add_argument("--router",
                   choices=["least_loaded", "cost_least_loaded", "hash"],
                   default="least_loaded",
                   help="fleet routing policy: live in-flight counts, "
                        "outstanding predicted FLOPs, or consistent-hash "
                        "shape affinity (--workers > 1)")
    p.add_argument("--watch-interval", dest="watch_interval", type=float,
                   default=None, metavar="SECONDS",
                   help="fleet workers poll the registry's latest refs "
                        "this often and hot-reload published versions "
                        "(--workers > 1)")
    p.add_argument("--rate", type=float, default=500.0,
                   help="Poisson arrival rate, requests/second")
    p.add_argument("--requests", type=int, default=None,
                   help="trace length (default: one per shape-file line)")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument("--cost-budget", dest="cost_budget", type=float,
                   default=None, metavar="FLOPS",
                   help="cost-aware batch formation: also close a "
                        "micro-batch when its summed predicted FLOPs "
                        "would exceed this budget (heavy requests form "
                        "small batches, light ones fill large ones; "
                        "thread selections are unchanged)")
    p.add_argument("--max-queue", type=int, default=128)
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--refine-after", dest="refine_after", type=int,
                   default=None, metavar="N",
                   help="after the replay, refine and republish the "
                        "decision table of any routine that logged >= N "
                        "table fallbacks, densifying the lattice at its "
                        "recorded miss shapes (--registry mode only)")
    p.add_argument("--trace", action="store_true",
                   help="record a span chain per served request "
                        "(admission, queue wait, batch, predict tier, "
                        "execution)")
    p.add_argument("--obs-dir", default=None, metavar="DIR",
                   help="write observability artefacts (metrics.prom, "
                        "metrics.jsonl, spans.jsonl, stats.json) into DIR "
                        "after the replay; implies --trace")
    p.add_argument("shapes_file",
                   help="text file with one request per line: 'm k n' "
                        "(GEMM) or '<routine> dims...' (e.g. 'gemv 2048 512')")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("fleet", help="inspect a multi-process serving "
                                     "fleet: spawn workers, report loaded "
                                     "versions, preview routing")
    p.add_argument("--registry", required=True,
                   help="model-registry root the workers load from")
    p.add_argument("--machine", choices=machines, default=None,
                   help="registry machine cell (default: the single "
                        "published machine)")
    p.add_argument("--routine", choices=sorted(ROUTINES), action="append",
                   default=None,
                   help="routines to serve (default: all published for "
                        "the machine)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--router",
                   choices=["least_loaded", "cost_least_loaded", "hash"],
                   default="least_loaded")
    p.add_argument("--route-file", dest="route_file", default=None,
                   metavar="FILE",
                   help="preview where this trace file's requests would "
                        "route (same format as the serve shape files)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("obs", help="inspect observability artefacts "
                                   "written by 'serve --obs-dir'")
    p.add_argument("obs_dir", metavar="DIR",
                   help="artefact directory (stats.json, spans.jsonl, "
                        "metrics.prom, metrics.jsonl)")
    view = p.add_mutually_exclusive_group()
    view.add_argument("--tail", type=int, default=None, metavar="N",
                      help="show the span chains of the N most recent "
                           "traces")
    view.add_argument("--dump", action="store_true",
                      help="print the raw Prometheus text and stats JSON "
                           "artefacts")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser("demo", help="quick install + before/after comparison")
    p.add_argument("--machine", choices=machines, default="gadi")
    p.add_argument("--shapes", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_demo)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream reader (head, grep -q) closed the pipe early —
        # a normal way to consume `obs --dump` output, not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
