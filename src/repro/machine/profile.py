"""Table VII-style profiler reports from the white-box simulator.

The paper used Intel Advisor / VTune on Gadi to attribute the wall time
of two pathological GEMMs to thread synchronisation, data copies and
kernel calls.  Our simulator computes those components explicitly, so
"profiling" is exact: this module just packages the breakdown the way
the paper's Table VII presents it (total over N repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gemm.interface import GemmSpec
from repro.machine.simulator import MachineSimulator


@dataclass(frozen=True)
class ProfileReport:
    """Aggregated component times over a repetition loop.

    Field units are seconds, matching Table VII ("each matrix
    multiplication was repeated 1000 times").
    """

    spec: GemmSpec
    n_threads: int
    repetitions: int
    total: float
    sync: float
    kernel: float
    copy: float

    def row(self, label: str = "") -> dict:
        """A Table VII row: m,k,n | threads | total | sync | kernel | copy."""
        return {
            "case": label or f"{self.spec.m},{self.spec.k},{self.spec.n}",
            "threads": self.n_threads,
            "total_s": round(self.total, 3),
            "sync_s": round(self.sync, 3),
            "kernel_s": round(self.kernel, 3),
            "copy_s": round(self.copy, 3),
        }


def profile_gemm(simulator: MachineSimulator, spec: GemmSpec, n_threads: int,
                 repetitions: int = 1000, noisy: bool = False) -> ProfileReport:
    """Profile ``repetitions`` GEMM calls at a fixed thread count.

    With ``noisy=False`` (default) the noise-free component model is
    scaled by the repetition count, which is what a sampling profiler
    converges to; ``noisy=True`` actually simulates every call and
    distributes the measured total proportionally to the model
    components.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    breakdown = simulator.cost_model.breakdown(
        spec, n_threads, simulator.affinity, simulator.hyperthreading)
    if noisy:
        total = sum(simulator.run(spec, n_threads, iteration=i).time
                    for i in range(repetitions))
        scale = total / (breakdown.total * repetitions)
    else:
        total = breakdown.total * repetitions
        scale = 1.0
    return ProfileReport(
        spec=spec,
        n_threads=n_threads,
        repetitions=repetitions,
        total=total,
        sync=breakdown.sync * repetitions * scale,
        kernel=breakdown.kernel * repetitions * scale,
        copy=breakdown.copy * repetitions * scale,
    )
