"""The machine simulator: deterministic, seedable GEMM timing oracle.

:class:`MachineSimulator` combines a :class:`~repro.machine.costmodel.CostModel`
with a :class:`~repro.machine.noise.NoiseModel` and plays the role the
physical node + vendor BLAS played in the paper: given a GEMM problem and
a thread count it returns a (noisy) wall time and a white-box component
breakdown.

Determinism contract: two simulators built with the same preset and seed
return identical timings for the same sequence of calls *and* for the
same ``(spec, n_threads, iteration)`` triple regardless of call order —
the per-measurement RNG is derived by hashing the call coordinates with
the base seed.  Every experiment in ``benchmarks/`` leans on this to be
exactly regenerable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.gemm.interface import GemmSpec
from repro.machine.affinity import AffinityPolicy, place_threads
from repro.machine.clock import SimClock
from repro.machine.costmodel import CostBreakdown, CostModel
from repro.machine.noise import NoiseModel
from repro.machine.numa import NumaMode, NumaPolicy


@dataclass(frozen=True)
class SimResult:
    """One simulated timing measurement."""

    spec: GemmSpec
    n_threads: int
    time: float
    breakdown: CostBreakdown
    affinity: AffinityPolicy
    hyperthreading: bool

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s of this run."""
        return self.spec.flops / self.time / 1e9


class MachineSimulator:
    """Simulated node executing multi-threaded GEMM.

    Parameters
    ----------
    cost_model:
        Analytical model (usually from :mod:`repro.machine.presets`).
    noise:
        Measurement noise model; pass :data:`repro.machine.noise.QUIET`
        for deterministic noise-free timings.
    seed:
        Base seed for the measurement-noise stream.
    affinity / hyperthreading:
        Default execution environment, overridable per call.
    """

    def __init__(self, cost_model: CostModel, noise: NoiseModel = None,
                 seed: int = 0, affinity=AffinityPolicy.CORES,
                 hyperthreading: bool = True, numa="interleave"):
        self.cost_model = cost_model
        self.noise = noise if noise is not None else NoiseModel()
        self.seed = int(seed)
        self.affinity = AffinityPolicy.parse(affinity)
        self.hyperthreading = bool(hyperthreading)
        self.numa = NumaPolicy(mode=NumaMode.parse(numa))
        self.clock = SimClock()

    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.cost_model.topology

    @property
    def name(self) -> str:
        return self.topology.name

    def max_threads(self, hyperthreading: bool = None) -> int:
        ht = self.hyperthreading if hyperthreading is None else hyperthreading
        return self.topology.max_threads(ht)

    def backend(self, thread_grid=None):
        """This simulator as an engine :class:`ExecutionBackend`.

        The grid defaults to :func:`~repro.gemm.partition.choose_thread_grid`
        over the node's logical CPUs.
        """
        from repro.engine.backend import SimulatorBackend

        return SimulatorBackend(self, thread_grid)

    # ------------------------------------------------------------------
    def _rng_for(self, spec: GemmSpec, n_threads: int, iteration: int) -> np.random.Generator:
        """Stable per-measurement RNG derived from the call coordinates.

        Uses a cryptographic digest rather than Python's salted ``hash``
        so the stream is identical across processes and sessions.
        """
        key = (f"{self.seed}|{spec.m}|{spec.k}|{spec.n}|{spec.dtype}|{n_threads}"
               f"|{iteration}|{self.affinity.value}|{int(self.hyperthreading)}")
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        entropy = int.from_bytes(digest, "little")
        return np.random.default_rng(np.random.SeedSequence([self.seed, entropy]))

    def _apply_numa(self, breakdown: CostBreakdown, spec: GemmSpec,
                    n_threads: int, affinity, ht: bool) -> CostBreakdown:
        """Rescale the bandwidth-sensitive components for the NUMA policy.

        The cost-model presets are calibrated under the paper's
        interleave policy; other policies change the effective bandwidth
        a team sees.  Copy time is fully bandwidth-bound; the kernel is
        taken as ~half sensitive (the roofline's compute side is
        unaffected) — an approximation documented in docs/cost_model.md.
        """
        if self.numa.mode is NumaMode.INTERLEAVE:
            return breakdown
        placement = place_threads(self.cost_model.topology, n_threads,
                                  affinity, ht)
        ref = NumaPolicy().bandwidth_factor(self.cost_model.topology,
                                            placement.sockets_used)
        now = self.numa.bandwidth_factor(self.cost_model.topology,
                                         placement.sockets_used)
        rel = max(now / ref, 1e-3)
        return CostBreakdown(
            sync=breakdown.sync,
            copy=breakdown.copy / rel,
            kernel=breakdown.kernel / (0.5 + 0.5 * rel),
        )

    def run(self, spec: GemmSpec, n_threads: int, iteration: int = 0,
            affinity=None, hyperthreading=None) -> SimResult:
        """Simulate one GEMM call, returning a noisy measurement."""
        affinity = self.affinity if affinity is None else AffinityPolicy.parse(affinity)
        ht = self.hyperthreading if hyperthreading is None else bool(hyperthreading)
        breakdown = self.cost_model.breakdown(spec, n_threads, affinity, ht)
        breakdown = self._apply_numa(breakdown, spec, n_threads, affinity, ht)
        rng = self._rng_for(spec, n_threads, iteration)
        noisy = self.noise.apply(breakdown.total, rng)
        jitter = self.numa.jitter_multiplier()
        if jitter != 1.0:
            # The placement lottery: extra multiplicative spread.
            noisy *= float(np.exp(rng.normal(0.0, 0.03 * (jitter - 1.0))))
        self.clock.advance(noisy, category="gemm")
        return SimResult(spec=spec, n_threads=n_threads, time=noisy,
                         breakdown=breakdown, affinity=affinity, hyperthreading=ht)

    def timed_run(self, spec: GemmSpec, n_threads: int, repeats: int = 10,
                  reduce: str = "median", affinity=None, hyperthreading=None) -> float:
        """The paper's timing protocol: loop the same GEMM and reduce.

        Section V-B3 runs ten iterations of the same-size GEMM; we support
        ``median`` (robust to the spike noise, our default), ``min`` and
        ``mean`` reductions.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        times = [self.run(spec, n_threads, iteration=i, affinity=affinity,
                          hyperthreading=hyperthreading).time
                 for i in range(repeats)]
        if reduce == "median":
            return float(np.median(times))
        if reduce == "min":
            return float(np.min(times))
        if reduce == "mean":
            return float(np.mean(times))
        raise ValueError(f"unknown reduction {reduce!r}; expected median/min/mean")

    def true_time(self, spec: GemmSpec, n_threads: int,
                  affinity=None, hyperthreading=None) -> float:
        """Noise-free model time (the quantity the ML model tries to learn)."""
        affinity = self.affinity if affinity is None else AffinityPolicy.parse(affinity)
        ht = self.hyperthreading if hyperthreading is None else bool(hyperthreading)
        breakdown = self.cost_model.breakdown(spec, n_threads, affinity, ht)
        return self._apply_numa(breakdown, spec, n_threads, affinity, ht).total

    def optimal_threads(self, spec: GemmSpec, thread_grid, noisy: bool = False,
                        repeats: int = 10) -> int:
        """Ground-truth best thread count over ``thread_grid``.

        With ``noisy=True`` the choice uses the measured (median-of-
        repeats) timings, replicating what an exhaustive benchmark would
        conclude; otherwise the noise-free model decides.
        """
        best_t, best_time = None, float("inf")
        for t in thread_grid:
            elapsed = (self.timed_run(spec, t, repeats=repeats) if noisy
                       else self.true_time(spec, t))
            if elapsed < best_time:
                best_t, best_time = t, elapsed
        if best_t is None:
            raise ValueError("thread_grid must be non-empty")
        return best_t
