"""Simulated shared-memory HPC node substrate.

The paper's experiments ran on two supercomputer nodes (Setonix: 2-socket
AMD Milan, Gadi: 2-socket Intel Cascade Lake) with MKL/BLIS supplying the
multi-threaded GEMM.  Neither the hardware nor the vendor BLAS is
available here, so this package provides a white-box analytical +
stochastic simulator of multi-threaded GEMM wall-time:

- :mod:`repro.machine.topology` — socket / CCX-module / core / SMT tree
  with NUMA domains and cache capacities.
- :mod:`repro.machine.presets` — Setonix and Gadi node descriptions and a
  small generic node for fast tests.
- :mod:`repro.machine.affinity` — core-based vs thread-based OpenMP-style
  thread placement (paper Fig. 7).
- :mod:`repro.machine.costmodel` — the three wall-time components the
  paper's profiler identifies (thread sync, data copy, kernel), built on
  the *same* partitioning/packing arithmetic as the real executor in
  :mod:`repro.gemm`.
- :mod:`repro.machine.noise` — heteroscedastic measurement noise.
- :mod:`repro.machine.simulator` — ties it together; deterministic given
  a seed, so every experiment in the paper can be regenerated exactly.
- :mod:`repro.machine.profile` — the Table VII-style breakdown report.
- :mod:`repro.machine.clock` — accumulates simulated node-seconds so the
  harness can report "node hours" like the paper's Section VI-A.
"""

from repro.machine.topology import NodeTopology
from repro.machine.presets import setonix, gadi, tiny_test_node
from repro.machine.affinity import AffinityPolicy, place_threads, Placement
from repro.machine.costmodel import CostModel, CostBreakdown
from repro.machine.noise import NoiseModel
from repro.machine.simulator import MachineSimulator, SimResult
from repro.machine.profile import ProfileReport, profile_gemm
from repro.machine.clock import SimClock
from repro.machine.numa import NumaMode, NumaPolicy
from repro.machine.host import HostMachine

__all__ = [
    "NodeTopology",
    "setonix",
    "gadi",
    "tiny_test_node",
    "AffinityPolicy",
    "place_threads",
    "Placement",
    "CostModel",
    "CostBreakdown",
    "NoiseModel",
    "MachineSimulator",
    "SimResult",
    "ProfileReport",
    "profile_gemm",
    "SimClock",
    "NumaMode",
    "NumaPolicy",
    "HostMachine",
]
