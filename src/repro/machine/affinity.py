"""OpenMP-style thread placement policies.

The paper compares ``OMP_PLACES=cores`` against ``OMP_PLACES=threads``
(Fig. 7) and adopts core-based affinity because it is faster whenever the
thread count is below roughly half the logical CPU count.  The mechanism:
with *thread*-based places, consecutive OpenMP threads land on SMT
siblings of the same physical core, so at ``p <= physical_cores`` the job
runs on only ``ceil(p/2)`` cores; with *core*-based places each thread
owns a full core until the cores run out.

``place_threads`` reproduces both policies on the simulated topology and
returns a :class:`Placement` summarising the locality facts the cost
model consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.topology import NodeTopology


class AffinityPolicy(enum.Enum):
    """Thread binding policy, mirroring OMP_PLACES values."""

    CORES = "cores"
    THREADS = "threads"

    @classmethod
    def parse(cls, value) -> "AffinityPolicy":
        if isinstance(value, AffinityPolicy):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(f"unknown affinity policy {value!r}") from exc


@dataclass(frozen=True)
class Placement:
    """Summary of where a team of threads landed on the node.

    Attributes
    ----------
    n_threads:
        Team size requested.
    cores_used:
        Distinct physical cores occupied.
    modules_used:
        Distinct L3 modules occupied.
    sockets_used:
        Distinct sockets occupied.
    max_threads_per_core:
        Worst-case SMT sharing (1 = every thread owns a core).
    cpu_ids:
        The logical CPUs assigned, in thread order.
    """

    n_threads: int
    cores_used: int
    modules_used: int
    sockets_used: int
    max_threads_per_core: int
    cpu_ids: tuple

    @property
    def smt_shared(self) -> bool:
        return self.max_threads_per_core > 1


def place_threads(topology: NodeTopology, n_threads: int,
                  policy=AffinityPolicy.CORES,
                  hyperthreading: bool = True) -> Placement:
    """Assign ``n_threads`` to logical CPUs under ``policy``.

    Core-based placement walks physical cores first (socket-major order,
    matching ``OMP_PROC_BIND=close`` over core places) and only starts
    doubling up on SMT siblings once every physical core is busy.
    Thread-based placement walks logical CPUs in sibling-adjacent order
    (core 0 thread 0, core 0 thread 1, core 1 thread 0, ...), which is
    how Linux enumerates places when ``OMP_PLACES=threads`` with a close
    binding.

    With ``hyperthreading=False`` only the first SMT thread of each core
    is eligible and ``n_threads`` may not exceed the physical core count.
    """
    policy = AffinityPolicy.parse(policy)
    limit = topology.max_threads(hyperthreading)
    if not 1 <= n_threads <= limit:
        raise ValueError(
            f"n_threads={n_threads} outside [1, {limit}] for {topology.name} "
            f"(hyperthreading={'on' if hyperthreading else 'off'})")

    if policy is AffinityPolicy.CORES:
        # All first-SMT CPUs (ids 0..cores-1), then the siblings.
        order = list(range(topology.physical_cores))
        if hyperthreading:
            order += list(range(topology.physical_cores, topology.logical_cpus))
    else:
        # Sibling-adjacent: core c contributes cpu c then cpu c+cores.
        order = []
        for core in range(topology.physical_cores):
            order.append(core)
            if hyperthreading:
                order.append(core + topology.physical_cores)

    cpu_ids = tuple(order[:n_threads])
    cpus = [topology.cpu(i) for i in cpu_ids]
    cores = {c.core for c in cpus}
    per_core = {}
    for c in cpus:
        per_core[c.core] = per_core.get(c.core, 0) + 1
    return Placement(
        n_threads=n_threads,
        cores_used=len(cores),
        modules_used=len({c.module for c in cpus}),
        sockets_used=len({c.socket for c in cpus}),
        max_threads_per_core=max(per_core.values()),
        cpu_ids=cpu_ids,
    )
