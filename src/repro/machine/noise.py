"""Heteroscedastic measurement noise for simulated timings.

Real GEMM timings on shared-memory nodes are noisy even with exclusive
node access: short runs are dominated by scheduling jitter and cache
state, long runs converge to stable throughput.  The paper copes by
running ten iterations per configuration and by pinning NUMA policy;
we model the residual noise so the ML pipeline faces a realistically
hard regression problem (and so the LOF outlier-removal stage has real
outliers to remove).

The model is multiplicative log-normal with a magnitude-dependent sigma
plus occasional positive spikes (a straggler thread, a page-cache miss
storm).  All draws come from a caller-provided generator so experiments
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative timing noise.

    Parameters
    ----------
    sigma_floor:
        Log-sigma for very long runs (asymptotic relative jitter).
    sigma_short:
        Additional log-sigma applied fully when the runtime is far below
        ``t_ref`` — short runs are noisier.
    t_ref:
        Runtime (seconds) scale separating "short" from "long" runs.
    spike_prob:
        Probability that a measurement catches a straggler event.
    spike_scale:
        Mean multiplier of spike events (drawn exponentially above 1).
    """

    sigma_floor: float = 0.02
    sigma_short: float = 0.10
    t_ref: float = 1e-3
    spike_prob: float = 0.015
    spike_scale: float = 0.8

    def __post_init__(self):
        if self.sigma_floor < 0 or self.sigma_short < 0:
            raise ValueError("sigmas must be non-negative")
        if not 0 <= self.spike_prob < 1:
            raise ValueError("spike_prob must be in [0, 1)")

    def sigma_for(self, runtime: float) -> float:
        """Relative log-noise level for a run of the given duration."""
        if runtime <= 0:
            raise ValueError("runtime must be positive")
        shortness = self.t_ref / (self.t_ref + runtime)
        return self.sigma_floor + self.sigma_short * shortness

    def apply(self, runtime: float, rng: np.random.Generator) -> float:
        """One noisy observation of a true runtime."""
        sigma = self.sigma_for(runtime)
        value = runtime * float(np.exp(rng.normal(0.0, sigma)))
        if rng.random() < self.spike_prob:
            value *= 1.0 + float(rng.exponential(self.spike_scale))
        return value

    def apply_many(self, runtime: float, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vector of ``n`` independent noisy observations."""
        if n < 1:
            raise ValueError("n must be >= 1")
        sigma = self.sigma_for(runtime)
        values = runtime * np.exp(rng.normal(0.0, sigma, size=n))
        spikes = rng.random(n) < self.spike_prob
        if spikes.any():
            values[spikes] *= 1.0 + rng.exponential(self.spike_scale, size=int(spikes.sum()))
        return values


QUIET = NoiseModel(sigma_floor=0.0, sigma_short=0.0, spike_prob=0.0)
"""A zero-noise model for deterministic tests."""
