"""Simulated time accounting.

The paper reports the cost of its installation-time data gathering in
node hours (112 node hours on Setonix, Section VI-A).  The simulator
executes in microseconds of real time, so :class:`SimClock` accumulates
the *simulated* seconds each experiment would have consumed on the
modelled node, letting the harness report comparable figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Accumulates simulated wall-seconds, optionally per category."""

    elapsed: float = 0.0
    by_category: dict = field(default_factory=dict)

    def advance(self, seconds: float, category: str = "default") -> None:
        """Record ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock by a negative duration")
        self.elapsed += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds

    @property
    def node_hours(self) -> float:
        """Total simulated node hours (single node)."""
        return self.elapsed / 3600.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.by_category.clear()

    def report(self) -> str:
        lines = [f"simulated time: {self.elapsed:.3f} s ({self.node_hours:.4f} node hours)"]
        for cat in sorted(self.by_category):
            lines.append(f"  {cat}: {self.by_category[cat]:.3f} s")
        return "\n".join(lines)
