"""Execution on the real host machine (not simulated).

The paper's library ultimately times and runs GEMM on actual hardware.
:class:`HostMachine` provides that path here: it executes GEMM through
the real threaded executor (:class:`repro.gemm.parallel.ParallelGemm`,
whose numpy inner kernels release the GIL) and exposes the same
``timed_run`` protocol as :class:`repro.machine.simulator.MachineSimulator`,
so the whole ADSALA stack — gathering, training, the runtime library —
can run against genuine wall-clock measurements on whatever machine
hosts this process.  The executor/operand caching lives in
:class:`repro.gemm.parallel.ExecutorPool`, which the engine's real
execution backend shares.

Expect meaningful results only on multi-core hosts and with campaign
sizes appropriate to real timing costs; the simulator remains the tool
for paper-scale experiments.
"""

from __future__ import annotations

import os

import numpy as np

from repro.gemm.blocked import BlockSizes
from repro.gemm.interface import GemmSpec
from repro.gemm.parallel import ExecutorPool
from repro.machine.affinity import AffinityPolicy
from repro.machine.clock import SimClock


class HostMachine:
    """Real-execution backend with the simulator's timing interface.

    Parameters
    ----------
    max_threads:
        Thread-count ceiling (default: ``os.cpu_count()``).
    blocks:
        Cache blocking for the executor.
    operand_cache:
        Keep allocated operands per shape between timing calls.  Real
        BLAS benchmarking allocates once and loops (paper Section V-B3);
        this mirrors that and avoids measuring allocation.
    """

    def __init__(self, max_threads: int = None, blocks: BlockSizes = None,
                 operand_cache: bool = True, seed: int = 0):
        self._max_threads = int(max_threads or os.cpu_count() or 1)
        if self._max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.pool = ExecutorPool(blocks=blocks, operand_cache=operand_cache,
                                 seed=seed)
        self.seed = seed
        self.clock = SimClock()
        self.hyperthreading = True  # informational; host threads are host threads
        self.affinity = AffinityPolicy.CORES

    @property
    def name(self) -> str:
        return "host"

    @property
    def blocks(self) -> BlockSizes:
        return self.pool.blocks

    @property
    def operand_cache(self) -> bool:
        return self.pool.operand_cache

    def max_threads(self, hyperthreading: bool = None) -> int:
        return self._max_threads

    # -- pre-engine accessors (the pool now owns these caches) ----------
    @property
    def _operands(self) -> dict:
        return self.pool._operands

    def _operands_for(self, spec: GemmSpec):
        return self.pool.operands(spec)

    # ------------------------------------------------------------------
    def run(self, spec: GemmSpec, n_threads: int, iteration: int = 0, **_):
        """One timed execution; returns elapsed seconds."""
        if not 1 <= n_threads <= self._max_threads:
            raise ValueError(f"n_threads={n_threads} outside [1, {self._max_threads}]")
        elapsed = self.pool.run(spec, n_threads)
        self.clock.advance(elapsed, category="gemm")
        return elapsed

    def timed_run(self, spec: GemmSpec, n_threads: int, repeats: int = 10,
                  reduce: str = "median", **_) -> float:
        """The paper's loop-timing protocol on real hardware."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        times = [self.run(spec, n_threads, iteration=i) for i in range(repeats)]
        if reduce == "median":
            return float(np.median(times))
        if reduce == "min":
            return float(np.min(times))
        if reduce == "mean":
            return float(np.mean(times))
        raise ValueError(f"unknown reduction {reduce!r}")

    def optimal_threads(self, spec: GemmSpec, thread_grid, repeats: int = 5) -> int:
        """Exhaustively measured best thread count (ground truth)."""
        grid = [t for t in thread_grid if t <= self._max_threads]
        if not grid:
            raise ValueError("no feasible thread counts")
        return min(grid, key=lambda p: self.timed_run(spec, p, repeats=repeats))

    def release_operands(self) -> None:
        """Free cached operand arrays."""
        self.pool.release()
