"""Node topology: sockets, cache-sharing modules, cores, SMT and NUMA.

A modern two-socket node is a tree: sockets contain modules (AMD calls
them CCDs/CCXs — groups of cores sharing an L3 slice; on monolithic Intel
parts the "module" is the whole socket), modules contain physical cores,
and each core exposes one or more SMT hardware threads ("logical CPUs").
Memory is split into NUMA domains, several per socket on Milan.

The topology object answers the placement and locality questions the
cost model needs: which logical CPU lives on which core/module/socket,
how much L3 a group of threads shares, and how much memory bandwidth a
set of sockets can deliver.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LogicalCpu:
    """One schedulable hardware thread."""

    cpu_id: int
    core: int
    module: int
    socket: int
    smt_rank: int  # 0 for the first thread on a core, 1 for its SMT sibling


@dataclass(frozen=True)
class NodeTopology:
    """A two-level-cache, multi-socket shared-memory node.

    Parameters
    ----------
    name:
        Human-readable node name ("setonix", "gadi", ...).
    sockets:
        Number of CPU sockets.
    modules_per_socket:
        L3-sharing core groups per socket (8 CCDs on Milan, 1 on CLX).
    cores_per_module:
        Physical cores per module.
    smt:
        Hardware threads per core (2 when hyper-threading is on).
    freq_ghz:
        Nominal core clock.
    flops_per_cycle_sp:
        Peak single-precision FLOPs per cycle per core (FMA width).
    l2_kb:
        Private L2 per core.
    l3_mb_per_module:
        Shared L3 per module.
    numa_domains_per_socket:
        NUMA memory domains per socket (4 on Milan with NPS4, 2 on CLX).
    mem_bw_gbs_per_socket:
        Aggregate DRAM bandwidth per socket in GB/s.
    mem_gb:
        Total node memory.
    """

    name: str
    sockets: int
    modules_per_socket: int
    cores_per_module: int
    smt: int
    freq_ghz: float
    flops_per_cycle_sp: int
    l2_kb: int
    l3_mb_per_module: float
    numa_domains_per_socket: int
    mem_bw_gbs_per_socket: float
    mem_gb: int

    def __post_init__(self):
        for name in ("sockets", "modules_per_socket", "cores_per_module", "smt",
                      "flops_per_cycle_sp", "l2_kb", "numa_domains_per_socket", "mem_gb"):
            if getattr(self, name) < 1:
                raise ValueError(f"topology field {name} must be >= 1")
        if self.freq_ghz <= 0 or self.l3_mb_per_module <= 0 or self.mem_bw_gbs_per_socket <= 0:
            raise ValueError("frequencies, cache sizes and bandwidths must be positive")

    # -- derived counts ------------------------------------------------
    @property
    def cores_per_socket(self) -> int:
        return self.modules_per_socket * self.cores_per_module

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def logical_cpus(self) -> int:
        return self.physical_cores * self.smt

    @property
    def total_modules(self) -> int:
        return self.sockets * self.modules_per_socket

    @property
    def numa_domains(self) -> int:
        return self.sockets * self.numa_domains_per_socket

    def max_threads(self, hyperthreading: bool = True) -> int:
        """Maximum usable threads with or without SMT."""
        return self.logical_cpus if hyperthreading else self.physical_cores

    # -- peak rates ----------------------------------------------------
    def peak_gflops_core(self, dtype: str = "float32") -> float:
        """Peak GFLOP/s of one physical core running a single thread."""
        per_cycle = self.flops_per_cycle_sp if dtype == "float32" else self.flops_per_cycle_sp // 2
        return self.freq_ghz * per_cycle

    def peak_gflops_node(self, dtype: str = "float32") -> float:
        return self.peak_gflops_core(dtype) * self.physical_cores

    def total_mem_bw_gbs(self) -> float:
        return self.mem_bw_gbs_per_socket * self.sockets

    # -- CPU enumeration -----------------------------------------------
    def cpu(self, cpu_id: int) -> LogicalCpu:
        """Resolve a logical CPU id to its position in the tree.

        Numbering follows the Linux convention on these systems: CPUs
        ``0 .. physical_cores-1`` are the first SMT thread of each core
        (cores enumerated socket-major, module-major), and CPUs
        ``physical_cores .. 2*physical_cores-1`` are the SMT siblings.
        """
        if not 0 <= cpu_id < self.logical_cpus:
            raise ValueError(f"cpu_id {cpu_id} out of range [0, {self.logical_cpus})")
        smt_rank, core = divmod(cpu_id, self.physical_cores)
        socket, within = divmod(core, self.cores_per_socket)
        module = socket * self.modules_per_socket + within // self.cores_per_module
        return LogicalCpu(cpu_id=cpu_id, core=core, module=module,
                          socket=socket, smt_rank=smt_rank)

    def all_cpus(self):
        return [self.cpu(i) for i in range(self.logical_cpus)]

    def l3_bytes_for_modules(self, n_modules: int) -> float:
        """Aggregate L3 available to threads spread over ``n_modules``."""
        n = max(1, min(n_modules, self.total_modules))
        return n * self.l3_mb_per_module * 1024 * 1024

    def describe(self) -> str:
        """One-line summary, e.g. for benchmark report headers."""
        return (f"{self.name}: {self.sockets}x{self.cores_per_socket}c "
                f"@{self.freq_ghz}GHz, SMT{self.smt}, "
                f"{self.total_modules}xL3 {self.l3_mb_per_module}MB, "
                f"{self.numa_domains} NUMA domains, {self.mem_gb}GB")
