"""NUMA memory placement policies (paper Section V-B2).

The paper sets the NUMA policy to *interleave* "for all threads,
enforcing a round robin algorithm for the memory allocation", matching
Intel's benchmark guidance, and reports that this *stabilises* the GEMM
runtime.  The mechanism: with first-touch (``local``) allocation, a
matrix allocated by one thread lives in one domain, so threads on other
sockets stream remote memory — average bandwidth depends on where the
allocating thread happened to run, which varies call to call.
Interleaving spreads pages round-robin so every team sees the same
(averaged) bandwidth.

:class:`NumaPolicy` models this as two effects consumed by the
simulator: an *effective bandwidth factor* for a team spanning a given
number of sockets, and a *runtime jitter multiplier* reflecting the
placement lottery under non-interleaved policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.topology import NodeTopology


class NumaMode(enum.Enum):
    """Memory placement modes exposed by numactl."""

    INTERLEAVE = "interleave"
    LOCAL = "local"        # first-touch
    BIND_ONE = "bind"      # everything in one domain

    @classmethod
    def parse(cls, value) -> "NumaMode":
        if isinstance(value, NumaMode):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise ValueError(f"unknown NUMA mode {value!r}") from exc


#: Remote-access bandwidth relative to local (cross-socket link ratio).
REMOTE_BW_FRACTION = 0.45


@dataclass(frozen=True)
class NumaPolicy:
    """Bandwidth and stability model of a NUMA placement mode."""

    mode: NumaMode = NumaMode.INTERLEAVE

    def bandwidth_factor(self, topology: NodeTopology, sockets_used: int) -> float:
        """Effective fraction of the used sockets' aggregate bandwidth.

        * ``interleave``: pages spread over all domains; every access is
          local with probability ``sockets_used / sockets`` — the team
          reaches its full share plus the remote fraction at link speed.
        * ``local``: pages live where first touched (assume socket 0);
          threads on other sockets run at the remote link fraction.
        * ``bind``: everything in one domain; one memory controller
          serves the whole team.
        """
        mode = self.mode
        sockets = topology.sockets
        used = max(1, min(sockets_used, sockets))
        if mode is NumaMode.INTERLEAVE:
            local_frac = used / sockets
            return local_frac + (1.0 - local_frac) * REMOTE_BW_FRACTION
        if mode is NumaMode.LOCAL:
            if used == 1:
                return 1.0
            # One socket local, the rest remote over the link.
            return (1.0 + (used - 1) * REMOTE_BW_FRACTION) / used
        # BIND_ONE: a single domain's controller, shared by everyone.
        return 1.0 / used

    def jitter_multiplier(self) -> float:
        """Extra relative timing noise induced by the placement lottery.

        The paper observed interleave *stabilises* runtimes; first-touch
        placement adds variance because the allocating thread's position
        differs between runs.
        """
        if self.mode is NumaMode.INTERLEAVE:
            return 1.0
        if self.mode is NumaMode.LOCAL:
            return 2.5
        return 1.8


def policy(mode="interleave") -> NumaPolicy:
    """Convenience constructor accepting mode strings."""
    return NumaPolicy(mode=NumaMode.parse(mode))
