"""Analytical wall-time model for multi-threaded GEMM.

The paper's profiler analysis (Section VI-D, Table VII) decomposes the
parallel SGEMM wall-time into three components:

1. **Thread synchronisation** — barrier waits; grows with team size and
   jumps when the team spans sockets.
2. **Data copies** — packing operand panels into per-thread workspaces;
   the packed volume *grows with the thread count* because panels are
   replicated across the thread grid (see
   :func:`repro.gemm.packing.packing_volume`), and the effective copy
   bandwidth degrades under contention.  This is what makes "all the
   cores" catastrophically slow for small/skinny GEMM.
3. **Kernel calls** — the actual FLOPs, modelled with a roofline: the
   compute rate is capped both by per-core peak (derated for SMT sharing,
   fringe tiles and short-k ramp) and by the memory bandwidth available
   to the sockets in use.

The model is intentionally built on the *same* partitioning/packing
arithmetic as the real threaded executor in :mod:`repro.gemm`, so the
simulated schedule is implementable, and every coefficient is an explicit
dataclass field so ablation benchmarks can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gemm.interface import GemmSpec
from repro.gemm.partition import Partition2D, split_range
from repro.machine.affinity import AffinityPolicy, Placement, place_threads
from repro.machine.topology import NodeTopology


@dataclass(frozen=True)
class CostBreakdown:
    """Seconds spent in each wall-time component for one GEMM call."""

    sync: float
    copy: float
    kernel: float

    @property
    def total(self) -> float:
        return self.sync + self.copy + self.kernel

    def as_dict(self) -> dict:
        return {"sync": self.sync, "copy": self.copy,
                "kernel": self.kernel, "total": self.total}


@dataclass(frozen=True)
class CostModel:
    """Deterministic (noise-free) GEMM wall-time model for one node.

    Coefficients
    ------------
    kernel_efficiency:
        Fraction of per-core peak the vendor micro-kernel sustains on
        large, well-shaped tiles.
    kernel_ramp_flops:
        Per-thread work (FLOPs) at which kernel efficiency reaches half
        of its asymptote — models startup/loop overhead on tiny blocks.
    fringe_tile_m / fringe_tile_n:
        Micro-kernel register tile; partial tiles on block edges waste
        compute proportionally.
    kc_block:
        The k-blocking factor; determines how many packing rounds a call
        performs.
    sync_base_us / sync_per_thread_us / sync_cross_socket_us:
        Barrier latency model: ``base + per_thread * p`` per barrier,
        plus a cross-socket surcharge when the team spans sockets.
    pack_latency_us:
        Fixed cost of one packing round per thread (buffer setup, TLB,
        write allocation) before contention scaling.
    pack_contention:
        How quickly latency-bound packing degrades as the team saturates
        the node (dimensionless; larger = more collapse under full
        occupancy on cache-resident operands).
    copy_bw_fraction:
        Fraction of DRAM bandwidth achievable by streaming pack copies.
    cache_line_latency_ns:
        Base cost of one latency-bound (non-streamed) cache-line
        transfer during packing of tiny panels.
    latency_panel_bytes:
        Per-pack panel size below which packing is latency-bound rather
        than streaming (the crossover of the two copy regimes).
    smt_yield:
        Total throughput multiplier of a core running two SMT threads
        relative to one (FP-saturated GEMM kernels gain little from SMT
        and can lose to front-end contention, so values slightly below
        1.0 are legitimate).
    malleable_bw:
        Fraction of socket bandwidth a single module can actually pull
        (cross-CCD fabric limits on Milan).
    """

    topology: NodeTopology
    kernel_efficiency: float
    kernel_ramp_flops: float
    fringe_tile_m: int
    fringe_tile_n: int
    kc_block: int
    sync_base_us: float
    sync_per_thread_us: float
    sync_cross_socket_us: float
    pack_latency_us: float
    pack_contention: float
    copy_bw_fraction: float
    smt_yield: float
    malleable_bw: float
    cache_line_latency_ns: float = 100.0
    latency_panel_bytes: float = 65536.0

    def __post_init__(self):
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if not 0 < self.copy_bw_fraction <= 1:
            raise ValueError("copy_bw_fraction must be in (0, 1]")
        if not 0.5 <= self.smt_yield <= 1.5:
            raise ValueError("smt_yield must be within [0.5, 1.5]")

    # ------------------------------------------------------------------
    def breakdown(self, spec: GemmSpec, n_threads: int,
                  affinity=AffinityPolicy.CORES,
                  hyperthreading: bool = True) -> CostBreakdown:
        """Noise-free wall-time decomposition of one GEMM call."""
        placement = place_threads(self.topology, n_threads, affinity, hyperthreading)
        part = Partition2D.for_threads(spec.m, spec.k, spec.n, n_threads)
        rounds = max(1, int(np.ceil(spec.k / self.kc_block)))
        return CostBreakdown(
            sync=self._sync_time(placement, rounds),
            copy=self._copy_time(spec, part, placement, rounds),
            kernel=self._kernel_time(spec, part, placement),
        )

    def total_time(self, spec: GemmSpec, n_threads: int,
                   affinity=AffinityPolicy.CORES,
                   hyperthreading: bool = True) -> float:
        return self.breakdown(spec, n_threads, affinity, hyperthreading).total

    # -- component models ----------------------------------------------
    def _sync_time(self, placement: Placement, rounds: int) -> float:
        """Barrier costs: one join barrier per packing round plus entry/exit."""
        p = placement.n_threads
        if p == 1:
            return 0.0
        per_barrier = self.sync_base_us + self.sync_per_thread_us * p
        if placement.sockets_used > 1:
            per_barrier += self.sync_cross_socket_us
        n_barriers = rounds + 2
        return n_barriers * per_barrier * 1e-6

    def _copy_time(self, spec: GemmSpec, part: Partition2D,
                   placement: Placement, rounds: int) -> float:
        """Packing: replicated panel volume under two traffic regimes.

        The aggregate packed volume (A panels replicated across grid
        columns, B panels across grid rows) is split between:

        * a *streaming* regime — large per-pack panels move at a derated
          fraction of the DRAM bandwidth of the sockets in use;
        * a *latency-bound* regime — tiny per-pack panels degenerate to
          individual cache-line transfers; when the operands are
          cache-resident and the whole node is occupied, the threads
          serialise on each other's lines (false sharing, cross-socket
          snoops) and effective parallelism collapses.  This is the
          mechanism behind the paper's Table VII observation that a
          96-thread GEMM on ~1 MB of operands spends almost all its wall
          time copying.

        A small fixed per-round setup cost per thread is added on top.
        """
        p = placement.n_threads
        if p == 1:
            # Single-thread BLIS still packs, but panels are streamed
            # once and the copies overlap with compute almost entirely.
            return 0.0
        itemsize = np.dtype(spec.dtype).itemsize
        packed_bytes = float(part.packed_a_volume() + part.packed_b_volume()) * itemsize

        # -- streaming regime ------------------------------------------
        bw = (self.topology.mem_bw_gbs_per_socket * 1e9 * placement.sockets_used
              * self.copy_bw_fraction)
        if placement.modules_used == 1:
            bw *= self.malleable_bw
        stream_time = packed_bytes / bw

        # -- latency-bound regime --------------------------------------
        occupancy = p / self.topology.logical_cpus
        panel_bytes = packed_bytes / max(1, p * rounds)
        # Fraction of packing traffic that is latency-bound: ~1 for
        # KB-sized panels, ~0 for MB-sized streaming panels.  Squared in
        # the time term because tiny panels both transfer line-by-line
        # *and* revisit the same source lines from many threads.
        lat_fraction = self.latency_panel_bytes / (self.latency_panel_bytes + panel_bytes)
        lines = packed_bytes / 64.0
        line_lat = self.cache_line_latency_ns * 1e-9
        if placement.sockets_used > 1:
            line_lat *= 1.0 + occupancy  # cross-socket snoop traffic
        parallel_eff = p / (1.0 + self.pack_contention * occupancy * p * lat_fraction / 8.0)
        latency_time = lines * line_lat * lat_fraction ** 2 / max(parallel_eff, 0.25)

        # -- fixed per-round setup -------------------------------------
        setup_time = rounds * self.pack_latency_us * 1e-6 * (1.0 + occupancy)

        return stream_time + latency_time + setup_time

    def _kernel_time(self, spec: GemmSpec, part: Partition2D,
                     placement: Placement) -> float:
        """Roofline kernel time of the slowest thread."""
        p = placement.n_threads
        # Load imbalance: the largest partition cell sets the pace.
        rows = split_range(spec.m, part.pm)
        cols = split_range(spec.n, part.pn)
        max_mb = max(hi - lo for lo, hi in rows)
        max_nb = max(hi - lo for lo, hi in cols)
        if max_mb == 0 or max_nb == 0:
            max_mb, max_nb = max(max_mb, 1), max(max_nb, 1)
        thread_flops = 2.0 * max_mb * spec.k * max_nb

        # Compute rate of the busiest thread.
        core_peak = self.topology.peak_gflops_core(spec.dtype) * 1e9
        share = placement.max_threads_per_core
        thread_peak = core_peak * (self.smt_yield / share if share > 1 else 1.0)

        eff = self.kernel_efficiency
        eff *= thread_flops / (thread_flops + self.kernel_ramp_flops)
        eff *= _fringe_factor(max_mb, self.fringe_tile_m)
        eff *= _fringe_factor(max_nb, self.fringe_tile_n)
        compute_time = thread_flops / (thread_peak * eff)

        # Bandwidth ceiling: all threads stream their panels concurrently.
        itemsize = np.dtype(spec.dtype).itemsize
        total_bytes = (spec.m * spec.k + spec.k * spec.n + 2 * spec.m * spec.n) * itemsize
        bw = self.topology.mem_bw_gbs_per_socket * 1e9 * placement.sockets_used
        if placement.modules_used == 1:
            bw *= self.malleable_bw
        bandwidth_time = total_bytes / bw

        return max(compute_time, bandwidth_time)


def _fringe_factor(extent: int, tile: int) -> float:
    """Fraction of useful lanes when ``extent`` is tiled by ``tile``.

    A 10-row block on a 16-row micro-kernel wastes 6 of 16 lanes on its
    only tile: factor 10/16.  Large extents asymptote to 1.
    """
    if extent <= 0:
        return 1.0
    tiles = int(np.ceil(extent / tile))
    return extent / (tiles * tile)
