"""Node presets matching the paper's two experimentation platforms.

Hardware parameters follow the paper's Section V-A descriptions plus
public specifications of the CPUs involved:

* **Setonix** (Pawsey): 2x AMD EPYC 7763 "Milan" 64-core @ 2.55 GHz,
  Zen 3 cores (2x 256-bit FMA => 32 SP FLOP/cycle), 8 CCDs per socket
  each with 8 cores sharing 32 MB L3, 4 NUMA domains per socket (NPS4),
  8 memory channels (~204 GB/s per socket), 256 GB RAM, SMT2
  => 128 physical cores / 256 logical CPUs per node.

* **Gadi** (NCI): 2x Intel Xeon Platinum 8274 "Cascade Lake" 24-core
  @ 3.2 GHz (2x 512-bit FMA => 64 SP FLOP/cycle), monolithic 35.75 MB L3
  per socket, 2 NUMA domains per socket (sub-NUMA clustering), 6 memory
  channels (~141 GB/s per socket), 192 GB RAM, SMT2
  => 48 physical cores / 96 logical CPUs per node.

Each preset also carries the cost-model coefficients calibrated so the
simulator reproduces the paper's qualitative behaviour (see
``EXPERIMENTS.md`` for the calibration notes).
"""

from __future__ import annotations

from repro.machine.costmodel import CostModel
from repro.machine.topology import NodeTopology


def setonix_topology() -> NodeTopology:
    """The 2-socket AMD Milan node of Fig. 5."""
    return NodeTopology(
        name="setonix",
        sockets=2,
        modules_per_socket=8,
        cores_per_module=8,
        smt=2,
        freq_ghz=2.55,
        flops_per_cycle_sp=32,
        l2_kb=512,
        l3_mb_per_module=32.0,
        numa_domains_per_socket=4,
        mem_bw_gbs_per_socket=204.8,
        mem_gb=256,
    )


def gadi_topology() -> NodeTopology:
    """The 2-socket Intel Cascade Lake node of Fig. 6."""
    return NodeTopology(
        name="gadi",
        sockets=2,
        modules_per_socket=1,
        cores_per_module=24,
        smt=2,
        freq_ghz=3.2,
        flops_per_cycle_sp=64,
        l2_kb=1024,
        l3_mb_per_module=35.75,
        numa_domains_per_socket=2,
        mem_bw_gbs_per_socket=141.0,
        mem_gb=192,
    )


def setonix() -> CostModel:
    """BLIS-flavoured cost model on the Setonix node.

    Calibration intent: many small L3 domains and a deep socket/CCD
    hierarchy make sync and packing relatively expensive, so optimal
    thread counts sit well below the maximum across most of the sampled
    domain (paper Figs. 8-9a) and ADSALA keeps a stable ~1.3x speedup
    even at 500 MB (Fig. 11).
    """
    return CostModel(
        topology=setonix_topology(),
        kernel_efficiency=0.80,
        kernel_ramp_flops=6.0e6,
        fringe_tile_m=16,
        fringe_tile_n=16,
        kc_block=256,
        sync_base_us=1.2,
        sync_per_thread_us=1.4,
        sync_cross_socket_us=14.0,
        pack_latency_us=10.0,
        pack_contention=7.0,
        copy_bw_fraction=0.55,
        smt_yield=0.95,
        malleable_bw=0.85,
        cache_line_latency_ns=110.0,
        latency_panel_bytes=65536.0,
    )


def gadi() -> CostModel:
    """MKL-flavoured cost model on the Gadi node.

    Calibration intent: fewer, wider sockets with monolithic L3 mean the
    max-thread configuration is close to optimal for large squarish GEMM
    (speedup converges to ~1 in Fig. 12) while small/skinny GEMM still
    suffers badly from packing replication at 96 threads (Table VII),
    giving the occasional extreme speedups of Fig. 14.
    """
    return CostModel(
        topology=gadi_topology(),
        kernel_efficiency=0.78,
        kernel_ramp_flops=2.5e6,
        fringe_tile_m=16,
        fringe_tile_n=16,
        kc_block=384,
        sync_base_us=0.8,
        sync_per_thread_us=1.1,
        sync_cross_socket_us=22.0,
        pack_latency_us=12.0,
        pack_contention=10.0,
        copy_bw_fraction=0.55,
        smt_yield=1.0,
        malleable_bw=0.92,
        cache_line_latency_ns=130.0,
        latency_panel_bytes=65536.0,
    )


def tiny_test_node() -> CostModel:
    """A small 2-socket, 8-core node for fast unit tests.

    Keeps every structural feature (two sockets, two modules per socket,
    SMT) while having a thread grid small enough that exhaustive
    assertions are cheap.
    """
    topology = NodeTopology(
        name="tiny",
        sockets=2,
        modules_per_socket=2,
        cores_per_module=2,
        smt=2,
        freq_ghz=2.0,
        flops_per_cycle_sp=16,
        l2_kb=512,
        l3_mb_per_module=8.0,
        numa_domains_per_socket=1,
        mem_bw_gbs_per_socket=50.0,
        mem_gb=32,
    )
    return CostModel(
        topology=topology,
        kernel_efficiency=0.8,
        kernel_ramp_flops=1.0e6,
        fringe_tile_m=8,
        fringe_tile_n=8,
        kc_block=128,
        sync_base_us=1.0,
        sync_per_thread_us=1.0,
        sync_cross_socket_us=10.0,
        pack_latency_us=10.0,
        pack_contention=4.0,
        copy_bw_fraction=0.5,
        smt_yield=1.1,
        malleable_bw=0.9,
    )


PRESETS = {
    "setonix": setonix,
    "gadi": gadi,
    "tiny": tiny_test_node,
}


def by_name(name: str) -> CostModel:
    """Look up a preset cost model by node name."""
    try:
        return PRESETS[name.lower()]()
    except KeyError as exc:
        raise KeyError(f"unknown machine preset {name!r}; known: {sorted(PRESETS)}") from exc
