"""Execution backends: one protocol, many ways to run a routine.

The runtime stack historically grew three bespoke couplings: the ADSALA
library called a :class:`~repro.machine.simulator.MachineSimulator`
directly, real execution went through
:class:`~repro.machine.host.HostMachine`, and the BLAS extension bolted
its :class:`~repro.blas.adapter.RoutineSimulator` on with the same-but-
not-quite ``timed_run`` shape.  The engine collapses all three behind
:class:`ExecutionBackend`:

    timed_run(spec, n_threads, repeats) -> seconds      +      thread_grid

Anything satisfying that serves through the same
:class:`~repro.engine.service.GemmService`, and the
:class:`BackendDispatcher` routes mixed spec streams (GEMM, GEMV, SYRK,
TRSM) to the backend registered for each spec type.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class ExecutionBackend(Protocol):
    """Structural protocol every engine backend satisfies.

    ``spec`` is opaque to the engine: any object with a ``dims`` triple
    (for feature building) that the backend knows how to execute.
    """

    name: str
    thread_grid: np.ndarray

    def timed_run(self, spec, n_threads: int, repeats: int = 1) -> float:
        """Measured wall seconds for ``spec`` on a team of ``n_threads``."""
        ...  # pragma: no cover - protocol stub


def _normalise_grid(thread_grid) -> np.ndarray:
    grid = np.asarray(sorted(set(int(t) for t in thread_grid)), dtype=np.int64)
    if grid.size == 0:
        raise ValueError("thread_grid must be non-empty")
    if (grid < 1).any():
        raise ValueError("thread counts must be >= 1")
    return grid


def _default_grid(machine) -> np.ndarray:
    """Derive a candidate grid from the machine's core count."""
    from repro.gemm.partition import choose_thread_grid

    max_threads = getattr(machine, "max_threads", None)
    if not callable(max_threads):
        raise TypeError(
            f"cannot derive a thread grid from {type(machine).__name__}; "
            "pass thread_grid explicitly")
    return _normalise_grid(choose_thread_grid(max_threads()))


class TimedRunBackend:
    """Generic adapter over anything exposing ``timed_run``.

    This is what makes the engine backward compatible: every historical
    "machine" object (simulator, host, routine oracle) already answers
    ``timed_run(spec, n_threads, repeats=...)``, so wrapping it with a
    thread grid yields a conforming :class:`ExecutionBackend`.
    """

    def __init__(self, machine, thread_grid=None, name: str = None):
        self.machine = machine
        self.thread_grid = (_normalise_grid(thread_grid)
                            if thread_grid is not None
                            else _default_grid(machine))
        self.name = name or getattr(machine, "name", type(machine).__name__)

    def timed_run(self, spec, n_threads: int, repeats: int = 1, **kw) -> float:
        return self.machine.timed_run(spec, n_threads, repeats=repeats, **kw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, grid={self.thread_grid.tolist()})"


class SimulatorBackend(TimedRunBackend):
    """Adapter for :class:`~repro.machine.simulator.MachineSimulator`.

    Adds the simulator's noise-free oracle passthrough, which the
    benchmark harnesses use for ground-truth comparisons.
    """

    def true_time(self, spec, n_threads: int) -> float:
        return self.machine.true_time(spec, n_threads)

    def optimal_threads(self, spec) -> int:
        return self.machine.optimal_threads(spec, self.thread_grid.tolist())


class RoutineBackend(TimedRunBackend):
    """Adapter for :class:`~repro.blas.adapter.RoutineSimulator`.

    Accepts routine specs (GEMV/SYRK/TRSM — anything with
    ``equivalent_gemm()``/``work_fraction``/``dims``) and serves them
    through the engine exactly like GEMM.
    """

    def true_time(self, spec, n_threads: int) -> float:
        return self.machine.true_time(spec, n_threads)


class ParallelExecutionBackend:
    """Real execution through :class:`~repro.gemm.parallel.ParallelGemm`.

    Runs genuine thread teams on the host (numpy's matmul releases the
    GIL), caching executors per thread count and operands per shape so
    repeated timings measure the GEMM, not allocation.
    """

    def __init__(self, thread_grid=None, max_threads: int = None,
                 blocks=None, seed: int = 0):
        from repro.gemm.parallel import ExecutorPool

        self._max_threads = int(max_threads or os.cpu_count() or 1)
        if thread_grid is not None:
            self.thread_grid = _normalise_grid(thread_grid)
        else:
            from repro.gemm.partition import choose_thread_grid

            self.thread_grid = _normalise_grid(
                choose_thread_grid(self._max_threads))
        self.pool = ExecutorPool(blocks=blocks, seed=seed)
        self.name = "parallel-host"

    def timed_run(self, spec, n_threads: int, repeats: int = 1, **kw) -> float:
        if not 1 <= n_threads <= self._max_threads:
            raise ValueError(
                f"n_threads={n_threads} outside [1, {self._max_threads}]")
        return self.pool.timed_run(spec, n_threads, repeats=repeats)

    def release(self) -> None:
        """Free cached operands and executors."""
        self.pool.release()


def as_backend(machine, thread_grid=None) -> ExecutionBackend:
    """Coerce a machine-like object into an :class:`ExecutionBackend`.

    Objects already carrying both ``timed_run`` and a ``thread_grid``
    pass through untouched (unless a different grid is requested);
    anything with just ``timed_run`` is wrapped in the adapter matching
    its role, falling back to the generic :class:`TimedRunBackend`.
    """
    if (thread_grid is None and hasattr(machine, "timed_run")
            and getattr(machine, "thread_grid", None) is not None):
        return machine
    if not hasattr(machine, "timed_run"):
        raise TypeError(
            f"{type(machine).__name__} has no timed_run; cannot serve as an "
            "execution backend")
    # Role-specific adapters, picked by duck-typed capability rather than
    # isinstance so user subclasses and test doubles route correctly.
    if hasattr(machine, "cost_model"):
        return SimulatorBackend(machine, thread_grid)
    if hasattr(machine, "simulator"):
        return RoutineBackend(machine, thread_grid)
    return TimedRunBackend(machine, thread_grid)


class BackendDispatcher:
    """Routes specs to backends by spec type (one engine, many routines).

    Parameters
    ----------
    default:
        Backend used when no registered type matches (typically the GEMM
        backend).  Lookup walks the spec's MRO so registering a base
        class covers its subclasses.
    """

    def __init__(self, default: ExecutionBackend = None):
        self.default = default
        self._routes: dict = {}
        self._routine_routes: dict = {}

    @classmethod
    def for_backend(cls, backend: ExecutionBackend) -> "BackendDispatcher":
        return cls(default=backend)

    def register(self, spec_type: type, backend: ExecutionBackend) -> "BackendDispatcher":
        """Route ``spec_type`` instances to ``backend``; returns self."""
        if not isinstance(spec_type, type):
            raise TypeError("spec_type must be a class")
        self._routes[spec_type] = backend
        return self

    def register_routine(self, routine: str, backend: ExecutionBackend) -> "BackendDispatcher":
        """Route specs whose ``routine`` attribute is ``routine``.

        Name-keyed registration needs no spec class import, which is
        what lets registry-driven layers (CLI, serving) wire execution
        per routine without touching the spec modules.  Type routes
        (:meth:`register`) take precedence — they are the more specific
        claim.
        """
        if not isinstance(routine, str):
            raise TypeError("routine must be a string name")
        self._routine_routes[routine] = backend
        return self

    def has_routine_route(self, routine: str) -> bool:
        """Whether ``routine`` already has a name-keyed backend."""
        return routine in self._routine_routes

    def backend_for(self, spec) -> ExecutionBackend:
        for klass in type(spec).__mro__:
            if klass in self._routes:
                return self._routes[klass]
        routine = getattr(spec, "routine", None)
        if routine is not None and routine in self._routine_routes:
            return self._routine_routes[routine]
        if self.default is not None:
            return self.default
        raise TypeError(
            f"no backend registered for spec type {type(spec).__name__}")

    def timed_run(self, spec, n_threads: int, repeats: int = 1) -> float:
        return self.backend_for(spec).timed_run(spec, n_threads, repeats=repeats)

    @property
    def backends(self) -> list:
        """All distinct registered backends (default included)."""
        seen = []
        for backend in ([self.default] if self.default is not None else []) \
                + list(self._routes.values()) \
                + list(self._routine_routes.values()):
            if all(backend is not b for b in seen):
                seen.append(backend)
        return seen
