"""repro.engine — the multi-backend batched execution engine.

The runtime path of the reproduction, restructured for serving:

    predictor -> PredictionCache -> GemmService -> BackendDispatcher
                                                        |
                              SimulatorBackend / ParallelExecutionBackend
                                          / RoutineBackend

* :class:`ExecutionBackend` — the one protocol every execution target
  satisfies (``timed_run(spec, n_threads, repeats)`` + ``thread_grid``),
  with adapters for the machine simulator, real ``ParallelGemm`` thread
  teams, and the BLAS routine oracle, so GEMM, GEMV, SYRK and TRSM all
  serve through one dispatcher.
* :class:`PredictionCache` — a bounded, stats-tracking LRU replacing the
  paper's single-shape memo.
* :class:`GemmService` — the request layer: deduplicates a spec stream
  by shape, batch-predicts misses in one vectorised model pass, and
  dispatches each call to its backend.
"""

from repro.engine.backend import (BackendDispatcher, ExecutionBackend,
                                  ParallelExecutionBackend, RoutineBackend,
                                  SimulatorBackend, TimedRunBackend,
                                  as_backend)
from repro.engine.cache import PredictionCache
from repro.engine.service import GemmCallRecord, GemmService

__all__ = [
    "BackendDispatcher",
    "ExecutionBackend",
    "GemmCallRecord",
    "GemmService",
    "ParallelExecutionBackend",
    "PredictionCache",
    "RoutineBackend",
    "SimulatorBackend",
    "TimedRunBackend",
    "as_backend",
]
