"""A real prediction cache for the runtime engine.

The paper's runtime library remembers exactly *one* previous GEMM input
("if the current GEMM matrix dimensions are the same as the previous,
the software will read and apply the predictions ... without
re-evaluation").  That is the right minimal design for a C library
serving one caller, but a serving engine sees interleaved shape streams
from many requests, where a single-entry memo thrashes.

:class:`PredictionCache` generalises the memo to a bounded LRU mapping
``(m, k, n)`` keys to thread choices, with hit/miss/eviction counters so
benchmarks can report cache effectiveness alongside speedup.  A
``maxsize`` of 1 reproduces the paper's memo semantics exactly, which is
what :class:`~repro.core.predictor.ThreadPredictor` defaults to.
"""

from __future__ import annotations

from collections import OrderedDict


def shape_key(shape) -> tuple:
    """Canonical cache key for a shape: ``(m, k, n)`` ints.

    Accepts a dims triple or any spec object with a ``dims`` attribute.
    Predictor and service must agree on this bitwise, so both import it
    from here.
    """
    dims = shape.dims if hasattr(shape, "dims") else shape
    m, k, n = dims
    return (int(m), int(k), int(n))


def routine_key(shape, routine: str = None) -> tuple:
    """Routine-qualified cache key: ``(routine, m, k, n)``.

    The leading routine name is read from the spec's ``routine``
    attribute (bare dims triples default to ``"gemm"``) unless
    ``routine`` overrides it.  This is the key mixed-routine tables —
    refiner statistics, service histories, shared caches — must use: a
    GEMV ``(m, k)`` problem and a GEMM ``(m, k, 1)`` shape have
    identical feature dims but wildly different measured runtimes, and
    only the routine prefix keeps their entries apart.
    """
    if routine is None:
        routine = getattr(shape, "routine", "gemm")
    return (str(routine),) + shape_key(shape)


class PredictionCache:
    """Bounded LRU cache with lifetime statistics.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; least-recently-*used* entries
        are evicted first.  ``maxsize=1`` degenerates to the paper's
        single-shape memo.
    """

    def __init__(self, maxsize: int = 128):
        if int(maxsize) < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- lookup ---------------------------------------------------------
    def get(self, key, default=None):
        """Statistic-counting lookup; refreshes the entry's recency."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def get_many(self, keys) -> dict:
        """Bulk lookup: ``{key: value}`` for the keys present.

        Counts one hit or miss per key and refreshes recency exactly
        like :meth:`get` called in sequence, but in one pass — this is
        the batched probe the vectorised serving path leans on.
        """
        data = self._data
        found = {}
        for key in keys:
            if key in data:
                data.move_to_end(key)
                found[key] = data[key]
                self.hits += 1
            else:
                self.misses += 1
        return found

    def peek(self, key, default=None):
        """Lookup without touching statistics or recency."""
        return self._data.get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list:
        """Keys in recency order (least recently used first)."""
        return list(self._data.keys())

    # -- update ---------------------------------------------------------
    def put(self, key, value) -> None:
        """Insert/refresh an entry, evicting the LRU tail if over size."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def put_many(self, items) -> None:
        """Bulk insert: ``items`` is a ``{key: value}`` mapping or an
        iterable of pairs; eviction runs once after all inserts."""
        data = self._data
        pairs = items.items() if hasattr(items, "items") else items
        for key, value in pairs:
            if key in data:
                data.move_to_end(key)
            data[key] = value
        while len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key=None) -> None:
        """Drop one entry (or all of them); statistics are kept."""
        if key is None:
            self._data.clear()
        else:
            self._data.pop(key, None)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- reporting ------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot for reports (:func:`repro.bench.report.format_table`-ready)."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PredictionCache(size={len(self)}/{self.maxsize}, "
                f"hits={self.hits}, misses={self.misses})")
