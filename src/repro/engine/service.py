"""The request layer: deduplicated, batch-predicted routine serving.

:class:`GemmService` is what the runtime library became once prediction,
caching and execution were pulled apart: it accepts a stream of specs,
groups them by shape, answers cached shapes from the
:class:`~repro.engine.cache.PredictionCache`, pushes all remaining
shapes through the predictor in **one** vectorised pipeline/model pass
(:meth:`~repro.core.predictor.ThreadPredictor.predict_threads_batch`),
dispatches each call to its :class:`~repro.engine.backend.ExecutionBackend`,
and returns per-call :class:`GemmCallRecord` bookkeeping.

:class:`~repro.core.library.AdsalaGemm` is now a thin facade over this
class, so single-call users keep the paper's API while batch users get
amortised prediction cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.backend import BackendDispatcher, ExecutionBackend, as_backend
from repro.engine.cache import shape_key as _shape_key


@dataclass
class GemmCallRecord:
    """Bookkeeping for one dispatched call (GEMM or any routine spec)."""

    spec: object
    n_threads: int
    runtime: float
    memoised: bool

    @property
    def gflops(self) -> float:
        return self.spec.flops / self.runtime / 1e9


class GemmService:
    """Multi-backend execution engine with vectorised thread prediction.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.ThreadPredictor`; its
        cache is the service's prediction cache.
    backend:
        Default :class:`ExecutionBackend` (anything with ``timed_run``
        is coerced via :func:`as_backend`).  Mutually exclusive with
        ``dispatcher``.
    dispatcher:
        A pre-built :class:`BackendDispatcher` for mixed routine
        streams (GEMM + GEMV/SYRK/TRSM).
    repeats:
        Timing-loop repetitions per dispatched call.
    refine:
        Opt-in online refinement of thread choices: ``True`` builds an
        :class:`~repro.core.online.OnlineRefiner` over ``predictor``, or
        pass a pre-configured refiner (it must share this service's
        predictor).  Every dispatched runtime is fed back, so choices
        converge to the locally optimal grid point even where the model
        mispredicts — at the cost of bounded exploration, which makes
        choices measurement-dependent (leave off when bitwise replay
        determinism matters, e.g. under :class:`repro.serve.GemmServer`
        parity checks).
    """

    def __init__(self, predictor, backend=None, dispatcher: BackendDispatcher = None,
                 repeats: int = 1, refine=None):
        if dispatcher is None:
            if backend is None:
                raise ValueError("provide a backend or a dispatcher")
            dispatcher = BackendDispatcher.for_backend(as_backend(backend))
        elif backend is not None:
            raise ValueError("backend and dispatcher are mutually exclusive")
        self.predictor = predictor
        self.dispatcher = dispatcher
        self.repeats = repeats
        self.refiner = None
        if refine:
            from repro.core.online import OnlineRefiner

            self.refiner = refine if isinstance(refine, OnlineRefiner) \
                else OnlineRefiner(predictor)
            if self.refiner.predictor is not predictor:
                raise ValueError(
                    "refine must wrap this service's own predictor")
        self.history: list = []
        self.n_requests = 0
        self.n_batches = 0
        self.n_reloads = 0
        self.bundle_generation = 0
        self.bundle_info: dict = {}
        self._machine_max = None
        self._retired_counts = {"evaluations": 0, "model_passes": 0}
        self._closed = False

    @classmethod
    def from_bundle(cls, bundle, machine, repeats: int = 1,
                    cache_size: int = 256, refine=None) -> "GemmService":
        """Service over installation artefacts and a machine-like object.

        The candidate grid is the installed one clamped to the
        execution machine's capacity, so artefacts trained on a bigger
        node still serve (predicting only feasible team sizes) when
        dispatched to a smaller one.

        The predictor takes the compiled fast path: a bundle that
        carries a persisted plan uses it directly, and a pre-plan
        (legacy) bundle compiles one lazily here — thread choices are
        bitwise identical to the object path either way.
        """
        grid = list(bundle.config.thread_grid)
        max_threads = getattr(machine, "max_threads", None)
        machine_max = max_threads() if callable(max_threads) else None
        if machine_max is not None:
            grid = [t for t in grid if t <= machine_max] or grid
        service = cls(bundle.predictor(cache_size=cache_size,
                                       thread_grid=grid, compiled=True),
                      backend=as_backend(machine, thread_grid=grid),
                      repeats=repeats, refine=refine)
        service._machine_max = machine_max
        service.bundle_info = {"model_name": bundle.config.model_name,
                               "machine": bundle.config.machine}
        return service

    def reload(self, bundle, cache_size: int = None) -> dict:
        """Hot-swap the installation artefacts without restarting.

        Builds a fresh predictor (fresh, empty cache) from ``bundle``
        — grid clamped to the machine exactly as
        :meth:`from_bundle` does — and installs it with a single
        reference assignment, so a concurrently executing
        :meth:`run`/:meth:`run_batch` (which snapshot the predictor on
        entry) finishes on the artefacts it started with and the next
        call uses the new ones.  Prediction counters accumulated by the
        retired predictor stay in :meth:`stats`.  Returns a summary of
        the new deployment.
        """
        self._ensure_open()
        old = self.predictor
        if cache_size is None:
            cache_size = old.cache.maxsize
        grid = list(bundle.config.thread_grid)
        if self._machine_max is not None:
            grid = [t for t in grid if t <= self._machine_max] or grid
        predictor = bundle.predictor(cache_size=cache_size, thread_grid=grid,
                                     compiled=True)
        new_refiner = None
        if self.refiner is not None:
            from repro.core.online import OnlineRefiner

            new_refiner = OnlineRefiner(
                predictor, explore_prob=self.refiner.explore_prob,
                min_trials=self.refiner.min_trials)
        # Everything new is fully built before anything is published, and
        # the predictor is published *first*: a concurrent run() snapshot
        # taken mid-reload can pair the new predictor with the old
        # refiner (whose choices still come from its own old predictor —
        # never the other way round, which would serve the new bundle
        # before the swap).  stats() raced against the counter fold may
        # transiently under-report the retired predictor's counts.
        self.predictor = predictor  # atomic swap: in-flight calls hold old
        if new_refiner is not None:
            self.refiner = new_refiner
        self._retired_counts["evaluations"] += old.n_evaluations
        self._retired_counts["model_passes"] += old.n_model_passes
        self.n_reloads += 1
        self.bundle_generation += 1
        self.bundle_info = {"model_name": bundle.config.model_name,
                            "machine": bundle.config.machine}
        return {"generation": self.bundle_generation, **self.bundle_info}

    # -- prediction ------------------------------------------------------
    @property
    def cache(self):
        return self.predictor.cache

    @property
    def thread_grid(self) -> np.ndarray:
        return self.predictor.thread_grid

    def register_backend(self, spec_type: type, backend) -> "GemmService":
        """Route ``spec_type`` calls to another backend; returns self."""
        self.dispatcher.register(spec_type, as_backend(backend))
        return self

    def predict(self, spec) -> int:
        """Thread choice for one spec (cache-backed, no execution)."""
        self._ensure_open()
        return self.predictor.predict_threads(*_shape_key(spec))

    def predict_batch(self, specs) -> np.ndarray:
        """Thread choices for a spec stream, one model pass for all misses."""
        self._ensure_open()
        return self.predictor.predict_threads_batch(
            [_shape_key(s) for s in specs])

    # -- execution -------------------------------------------------------
    def run(self, spec) -> GemmCallRecord:
        """Predict (or refine), dispatch and record one call."""
        self._ensure_open()
        # Snapshot: a concurrent reload() swaps self.predictor, but this
        # call must finish entirely on the artefacts it started with.
        predictor, refiner = self.predictor, self.refiner
        hits_before = predictor.cache.hits
        key = _shape_key(spec)
        if refiner is not None:
            n_threads = int(refiner.choose_threads(*key))
        else:
            n_threads = predictor.predict_threads(*key)
        record = self._dispatch(spec, n_threads,
                                memoised=predictor.cache.hits > hits_before)
        if refiner is not None:
            refiner.record(*key, record.n_threads, record.runtime)
        self.n_requests += 1
        return record

    def run_batch(self, specs) -> list:
        """Serve a stream of specs, amortising prediction across shapes.

        Duplicate shapes are predicted once; the ``memoised`` flag on a
        record is True when its prediction came from the cache or from
        an earlier occurrence in the same batch.  Records are returned
        in input order.

        With ``refine`` on, the batch still pays one vectorised model
        pass for all uncached shapes (seeding the refiner's priors),
        after which the refiner may substitute a measured-better or
        exploratory neighbour per call.
        """
        self._ensure_open()
        specs = list(specs)
        if not specs:
            return []
        # Snapshot: the whole batch resolves against one predictor even
        # if reload() swaps the service's artefacts mid-dispatch.
        predictor, refiner = self.predictor, self.refiner
        keys = [_shape_key(s) for s in specs]
        fresh = {key for key in dict.fromkeys(keys)
                 if key not in predictor.cache}
        choices = predictor.predict_threads_batch(keys)
        records = []
        seen: set = set()
        for spec, key, n_threads in zip(specs, keys, choices):
            memoised = key not in fresh or key in seen
            seen.add(key)
            if refiner is not None:
                n_threads = refiner.choose_threads(*key)
            record = self._dispatch(spec, int(n_threads), memoised=memoised)
            if refiner is not None:
                refiner.record(*key, record.n_threads, record.runtime)
            records.append(record)
        self.n_requests += len(specs)
        self.n_batches += 1
        return records

    def run_baseline(self, spec, n_threads: int = None,
                     repeats: int = None) -> float:
        """Static-configuration runtime (default: the maximum grid entry)."""
        self._ensure_open()
        if n_threads is None:
            n_threads = int(self.thread_grid.max())
        return self.dispatcher.timed_run(
            spec, n_threads, repeats=self.repeats if repeats is None else repeats)

    def _dispatch(self, spec, n_threads: int, memoised: bool) -> GemmCallRecord:
        runtime = self.dispatcher.timed_run(spec, n_threads,
                                            repeats=self.repeats)
        record = GemmCallRecord(spec=spec, n_threads=n_threads,
                                runtime=runtime, memoised=memoised)
        self.history.append(record)
        return record

    # -- stats -----------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of served calls whose prediction was cached."""
        if not self.history:
            return 0.0
        return sum(r.memoised for r in self.history) / len(self.history)

    def stats(self) -> dict:
        """History- and cache-derived serving statistics.

        ``evaluations``/``model_passes`` stay monotonic across
        hot-reloads: counters of retired predictors are folded in.
        """
        stats = {
            "requests": self.n_requests,
            "batches": self.n_batches,
            "unique_shapes": len({_shape_key(r.spec) for r in self.history}),
            "evaluations": (self.predictor.n_evaluations
                            + self._retired_counts["evaluations"]),
            "model_passes": (self.predictor.n_model_passes
                             + self._retired_counts["model_passes"]),
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            "reloads": self.n_reloads,
            "bundle_generation": self.bundle_generation,
            **{f"cache_{k}": v for k, v in self.cache.stats().items()},
        }
        if self.bundle_info:
            stats["model_name"] = self.bundle_info.get("model_name", "")
        if self.refiner is not None:
            stats["refine_explorations"] = self.refiner.n_explorations
        return stats

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the model (paper: destroy the instance after last call)."""
        self.predictor = None
        self.refiner = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("GemmService instance has been closed")

    def __enter__(self) -> "GemmService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
