"""The request layer: deduplicated, batch-predicted routine serving.

:class:`GemmService` is what the runtime library became once prediction,
caching and execution were pulled apart: it accepts a stream of specs,
groups them by shape, answers cached shapes from the
:class:`~repro.engine.cache.PredictionCache`, pushes all remaining
shapes through the predictor in **one** vectorised pipeline/model pass
(:meth:`~repro.core.predictor.ThreadPredictor.predict_threads_batch`),
dispatches each call to its :class:`~repro.engine.backend.ExecutionBackend`,
and returns per-call :class:`GemmCallRecord` bookkeeping.

:class:`~repro.core.library.AdsalaGemm` is now a thin facade over this
class, so single-call users keep the paper's API while batch users get
amortised prediction cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.backend import BackendDispatcher, ExecutionBackend, as_backend
from repro.engine.cache import shape_key as _shape_key


@dataclass
class GemmCallRecord:
    """Bookkeeping for one dispatched call (GEMM or any routine spec)."""

    spec: object
    n_threads: int
    runtime: float
    memoised: bool

    @property
    def gflops(self) -> float:
        return self.spec.flops / self.runtime / 1e9


class GemmService:
    """Multi-backend execution engine with vectorised thread prediction.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.ThreadPredictor`; its
        cache is the service's prediction cache.
    backend:
        Default :class:`ExecutionBackend` (anything with ``timed_run``
        is coerced via :func:`as_backend`).  Mutually exclusive with
        ``dispatcher``.
    dispatcher:
        A pre-built :class:`BackendDispatcher` for mixed routine
        streams (GEMM + GEMV/SYRK/TRSM).
    repeats:
        Timing-loop repetitions per dispatched call.
    refine:
        Opt-in online refinement of thread choices: ``True`` builds an
        :class:`~repro.core.online.OnlineRefiner` over ``predictor``, or
        pass a pre-configured refiner (it must share this service's
        predictor).  Every dispatched runtime is fed back, so choices
        converge to the locally optimal grid point even where the model
        mispredicts — at the cost of bounded exploration, which makes
        choices measurement-dependent (leave off when bitwise replay
        determinism matters, e.g. under :class:`repro.serve.GemmServer`
        parity checks).
    """

    def __init__(self, predictor, backend=None, dispatcher: BackendDispatcher = None,
                 repeats: int = 1, refine=None):
        if dispatcher is None:
            if backend is None:
                raise ValueError("provide a backend or a dispatcher")
            dispatcher = BackendDispatcher.for_backend(as_backend(backend))
        elif backend is not None:
            raise ValueError("backend and dispatcher are mutually exclusive")
        self.predictor = predictor
        self.dispatcher = dispatcher
        self.repeats = repeats
        self.refiner = None
        if refine:
            from repro.core.online import OnlineRefiner

            self.refiner = refine if isinstance(refine, OnlineRefiner) \
                else OnlineRefiner(predictor)
            if self.refiner.predictor is not predictor:
                raise ValueError(
                    "refine must wrap this service's own predictor")
        self.history: list = []
        self.n_requests = 0
        self.n_batches = 0
        self._closed = False

    @classmethod
    def from_bundle(cls, bundle, machine, repeats: int = 1,
                    cache_size: int = 256, refine=None) -> "GemmService":
        """Service over installation artefacts and a machine-like object.

        The candidate grid is the installed one clamped to the
        execution machine's capacity, so artefacts trained on a bigger
        node still serve (predicting only feasible team sizes) when
        dispatched to a smaller one.
        """
        grid = list(bundle.config.thread_grid)
        max_threads = getattr(machine, "max_threads", None)
        if callable(max_threads):
            grid = [t for t in grid if t <= max_threads()] or grid
        return cls(bundle.predictor(cache_size=cache_size, thread_grid=grid),
                   backend=as_backend(machine, thread_grid=grid),
                   repeats=repeats, refine=refine)

    # -- prediction ------------------------------------------------------
    @property
    def cache(self):
        return self.predictor.cache

    @property
    def thread_grid(self) -> np.ndarray:
        return self.predictor.thread_grid

    def register_backend(self, spec_type: type, backend) -> "GemmService":
        """Route ``spec_type`` calls to another backend; returns self."""
        self.dispatcher.register(spec_type, as_backend(backend))
        return self

    def predict(self, spec) -> int:
        """Thread choice for one spec (cache-backed, no execution)."""
        self._ensure_open()
        return self.predictor.predict_threads(*_shape_key(spec))

    def predict_batch(self, specs) -> np.ndarray:
        """Thread choices for a spec stream, one model pass for all misses."""
        self._ensure_open()
        return self.predictor.predict_threads_batch(
            [_shape_key(s) for s in specs])

    # -- execution -------------------------------------------------------
    def run(self, spec) -> GemmCallRecord:
        """Predict (or refine), dispatch and record one call."""
        self._ensure_open()
        hits_before = self.cache.hits
        key = _shape_key(spec)
        if self.refiner is not None:
            n_threads = int(self.refiner.choose_threads(*key))
        else:
            n_threads = self.predictor.predict_threads(*key)
        record = self._dispatch(spec, n_threads,
                                memoised=self.cache.hits > hits_before)
        if self.refiner is not None:
            self.refiner.record(*key, record.n_threads, record.runtime)
        self.n_requests += 1
        return record

    def run_batch(self, specs) -> list:
        """Serve a stream of specs, amortising prediction across shapes.

        Duplicate shapes are predicted once; the ``memoised`` flag on a
        record is True when its prediction came from the cache or from
        an earlier occurrence in the same batch.  Records are returned
        in input order.

        With ``refine`` on, the batch still pays one vectorised model
        pass for all uncached shapes (seeding the refiner's priors),
        after which the refiner may substitute a measured-better or
        exploratory neighbour per call.
        """
        self._ensure_open()
        specs = list(specs)
        if not specs:
            return []
        keys = [_shape_key(s) for s in specs]
        fresh = {key for key in dict.fromkeys(keys)
                 if key not in self.cache}
        choices = self.predictor.predict_threads_batch(keys)
        records = []
        seen: set = set()
        for spec, key, n_threads in zip(specs, keys, choices):
            memoised = key not in fresh or key in seen
            seen.add(key)
            if self.refiner is not None:
                n_threads = self.refiner.choose_threads(*key)
            record = self._dispatch(spec, int(n_threads), memoised=memoised)
            if self.refiner is not None:
                self.refiner.record(*key, record.n_threads, record.runtime)
            records.append(record)
        self.n_requests += len(specs)
        self.n_batches += 1
        return records

    def run_baseline(self, spec, n_threads: int = None,
                     repeats: int = None) -> float:
        """Static-configuration runtime (default: the maximum grid entry)."""
        self._ensure_open()
        if n_threads is None:
            n_threads = int(self.thread_grid.max())
        return self.dispatcher.timed_run(
            spec, n_threads, repeats=self.repeats if repeats is None else repeats)

    def _dispatch(self, spec, n_threads: int, memoised: bool) -> GemmCallRecord:
        runtime = self.dispatcher.timed_run(spec, n_threads,
                                            repeats=self.repeats)
        record = GemmCallRecord(spec=spec, n_threads=n_threads,
                                runtime=runtime, memoised=memoised)
        self.history.append(record)
        return record

    # -- stats -----------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of served calls whose prediction was cached."""
        if not self.history:
            return 0.0
        return sum(r.memoised for r in self.history) / len(self.history)

    def stats(self) -> dict:
        """History- and cache-derived serving statistics."""
        stats = {
            "requests": self.n_requests,
            "batches": self.n_batches,
            "unique_shapes": len({_shape_key(r.spec) for r in self.history}),
            "evaluations": self.predictor.n_evaluations,
            "model_passes": self.predictor.n_model_passes,
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            **{f"cache_{k}": v for k, v in self.cache.stats().items()},
        }
        if self.refiner is not None:
            stats["refine_explorations"] = self.refiner.n_explorations
        return stats

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the model (paper: destroy the instance after last call)."""
        self.predictor = None
        self.refiner = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("GemmService instance has been closed")

    def __enter__(self) -> "GemmService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
