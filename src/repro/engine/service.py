"""The request layer: deduplicated, batch-predicted routine serving.

:class:`GemmService` is what the runtime library became once prediction,
caching and execution were pulled apart: it accepts a stream of specs,
groups them by shape, answers cached shapes from the
:class:`~repro.engine.cache.PredictionCache`, pushes all remaining
shapes through the predictor in **one** vectorised pipeline/model pass
(:meth:`~repro.core.predictor.ThreadPredictor.predict_threads_batch`),
dispatches each call to its :class:`~repro.engine.backend.ExecutionBackend`,
and returns per-call :class:`GemmCallRecord` bookkeeping.

Since the routine-generic refactor the service is multi-routine: it
holds one :class:`~repro.core.predictor.ThreadPredictor` **per
routine** (:meth:`register_routine`), resolves every incoming spec to
its routine's predictor (falling back to the default for unregistered
routines, the historic single-predictor behaviour), and
:meth:`run_batch` groups a mixed GEMM/GEMV/TRSM/SYRK stream per
routine so each predictor still pays one vectorised pass for its
shapes — choices are bitwise identical to serving each routine through
a dedicated single-routine service.  :meth:`reload` hot-swaps a single
routine's predictor without touching the others.

:class:`~repro.core.library.AdsalaRuntime` (and its GEMM-specific alias
:class:`~repro.core.library.AdsalaGemm`) is a thin facade over this
class, so single-call users keep the paper's API while batch users get
amortised prediction cost.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.routines import routine_of
from repro.engine.backend import BackendDispatcher, ExecutionBackend, as_backend
from repro.engine.cache import routine_key as _routine_key
from repro.engine.cache import shape_key as _shape_key
from repro.obs.metrics import default_registry, next_instance_id


@dataclass
class GemmCallRecord:
    """Bookkeeping for one dispatched call (GEMM or any routine spec)."""

    spec: object
    n_threads: int
    runtime: float
    memoised: bool

    @property
    def gflops(self) -> float:
        return self.spec.flops / self.runtime / 1e9

    @property
    def routine(self) -> str:
        return routine_of(self.spec)


class GemmService:
    """Multi-backend, multi-routine execution engine with vectorised
    thread prediction.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.ThreadPredictor` for the
        service's *default* routine (the predictor's own ``routine``
        attribute, "gemm" historically); its cache is that routine's
        prediction cache.  Further routines join via
        :meth:`register_routine`.
    backend:
        Default :class:`ExecutionBackend` (anything with ``timed_run``
        is coerced via :func:`as_backend`).  Mutually exclusive with
        ``dispatcher``.
    dispatcher:
        A pre-built :class:`BackendDispatcher` for mixed routine
        streams (GEMM + GEMV/SYRK/TRSM).
    repeats:
        Timing-loop repetitions per dispatched call.
    refine:
        Opt-in online refinement of thread choices: ``True`` builds an
        :class:`~repro.core.online.OnlineRefiner` over ``predictor``, or
        pass a pre-configured refiner (it must share this service's
        predictor).  Every dispatched runtime is fed back, so choices
        converge to the locally optimal grid point even where the model
        mispredicts — at the cost of bounded exploration, which makes
        choices measurement-dependent (leave off when bitwise replay
        determinism matters, e.g. under :class:`repro.serve.GemmServer`
        parity checks).  Refiner statistics key on
        ``(routine, m, k, n)``, so mixed-routine feedback never
        cross-contaminates.
    """

    def __init__(self, predictor, backend=None, dispatcher: BackendDispatcher = None,
                 repeats: int = 1, refine=None):
        if dispatcher is None:
            if backend is None:
                raise ValueError("provide a backend or a dispatcher")
            dispatcher = BackendDispatcher.for_backend(as_backend(backend))
        elif backend is not None:
            raise ValueError("backend and dispatcher are mutually exclusive")
        self.routine = getattr(predictor, "routine", "gemm")
        self._predictors = {self.routine: predictor}
        self.dispatcher = dispatcher
        self.repeats = repeats
        self.refiner = None
        if refine:
            from repro.core.online import OnlineRefiner

            self.refiner = refine if isinstance(refine, OnlineRefiner) \
                else OnlineRefiner(predictor)
            if self.refiner.predictor is not predictor:
                raise ValueError(
                    "refine must wrap this service's own predictor")
        self.history: list = []
        self.n_requests: int = 0
        self.n_batches: int = 0
        self.n_reloads: int = 0
        self.bundle_generation: int = 0
        self.bundle_info: Dict[str, str] = {}
        self.routine_info: Dict[str, dict] = {}
        self._machine_max: Optional[int] = None
        self._retired_counts: Dict[str, int] = {
            "evaluations": 0, "model_passes": 0,
            "table_hits": 0, "table_fallbacks": 0, "table_interpolated": 0}
        self._closed = False
        self.instance = next_instance_id("engine")
        # Weakly-held pull collector: exporters see the live counters,
        # the hot path never touches the registry, and a discarded
        # service drops out of snapshots on its own.
        default_registry().register_collector(
            self.metrics, component="engine", instance=self.instance)

    @classmethod
    def from_bundle(cls, bundle, machine, repeats: int = 1,
                    cache_size: int = 256, refine=None,
                    backend=None) -> "GemmService":
        """Service over installation artefacts and a machine-like object.

        The candidate grid is the installed one clamped to the
        execution machine's capacity, so artefacts trained on a bigger
        node still serve (predicting only feasible team sizes) when
        dispatched to a smaller one.

        The predictor takes the compiled fast path: a bundle that
        carries a persisted plan uses it directly, and a pre-plan
        (legacy) bundle compiles one lazily here — thread choices are
        bitwise identical to the object path either way.  The bundle's
        ``config.routine`` tag makes the service's default routine,
        so a GEMV installation serves GEMV traffic directly: on a
        machine simulator, the routine's execution is routed through
        the :class:`~repro.blas.adapter.RoutineSimulator` oracle
        (work-fraction / roofline corrections applied), while GEMM
        traffic keeps the native backend.

        ``backend`` substitutes the default execution backend while the
        *prediction* artefacts (grid clamping included) still derive
        from ``machine`` — the fleet benchmark serves registry bundles
        against a synthetic CPU-bound backend this way.
        """
        max_threads = getattr(machine, "max_threads", None)
        machine_max = max_threads() if callable(max_threads) else None
        grid = cls._clamped_grid(bundle, machine_max)
        execution = as_backend(machine if backend is None else backend,
                               thread_grid=grid)
        service = cls(bundle.predictor(cache_size=cache_size,
                                       thread_grid=grid, compiled=True),
                      backend=execution,
                      repeats=repeats, refine=refine)
        service._wire_routine_backend(service.routine, grid)
        service._machine_max = machine_max
        meta = cls._bundle_meta(bundle)
        service.routine_info[service.routine] = meta
        service.bundle_info = {k: meta[k] for k in ("model_name", "machine")}
        return service

    @classmethod
    def from_registry(cls, registry, machine,
                      machine_name: Optional[str] = None,
                      routines=None, repeats: int = 1, cache_size: int = 256,
                      version="latest", backend=None) -> "GemmService":
        """One mixed-routine service from a model registry's cells.

        Loads the ``(routine, machine_name)`` bundle for every requested
        routine (default: every routine with a published version for
        that machine), installs the first one as the service's default
        and registers the rest — each with its own predictor and, for
        non-GEMM routines, a
        :class:`~repro.engine.backend.RoutineBackend` over a shared
        :class:`~repro.blas.adapter.RoutineSimulator` on ``machine``.
        ``machine`` must therefore be a machine *simulator* when any
        non-GEMM routine is requested — unless ``backend`` overrides
        execution entirely, in which case every routine (GEMM
        included) dispatches to the override and no simulator wiring
        happens.
        """
        from repro.train.registry import ModelRegistry

        registry = registry if isinstance(registry, ModelRegistry) \
            else ModelRegistry(registry)
        machine_name = machine_name or getattr(machine, "name", None)
        if machine_name is None:
            raise ValueError("machine has no name; pass machine_name")
        if routines is None:
            routines = [record.routine for record in registry.entries()
                        if record.machine == machine_name and record.latest]
        routines = list(dict.fromkeys(routines))
        if not routines:
            raise ValueError(
                f"no published routines for machine {machine_name!r} "
                f"in registry {registry.root}")
        bundles = {routine: registry.load(routine, machine_name,
                                          version=version)
                   for routine in routines}
        first = routines[0]
        service = cls.from_bundle(bundles[first], machine, repeats=repeats,
                                  cache_size=cache_size, backend=backend)
        for routine in routines[1:]:
            service.register_routine(routine, bundle=bundles[routine],
                                     cache_size=cache_size)
        return service

    # -- routine registration --------------------------------------------
    @staticmethod
    def _clamped_grid(bundle, machine_max) -> list:
        grid = list(bundle.config.thread_grid)
        if machine_max is not None:
            grid = [t for t in grid if t <= machine_max] or grid
        return grid

    @staticmethod
    def _bundle_meta(bundle) -> dict:
        return {"model_name": bundle.config.model_name,
                "machine": bundle.config.machine,
                "dtype": bundle.config.dtype}

    def _wire_routine_backend(self, routine: str, thread_grid) -> None:
        """Default execution wiring for a non-GEMM routine.

        When the default backend wraps a machine *simulator* and the
        routine has no route yet, its calls go through the
        :class:`~repro.blas.adapter.RoutineSimulator` oracle
        (work-fraction / roofline corrections applied).  Callers can
        always register an explicit backend instead; non-simulator
        machines are left to the default backend's own duck typing.
        """
        if routine == "gemm" or self.dispatcher.has_routine_route(routine):
            return
        machine = getattr(self.dispatcher.default, "machine", None)
        if machine is None or not hasattr(machine, "cost_model"):
            return
        from repro.blas.adapter import RoutineSimulator

        self.dispatcher.register_routine(
            routine, RoutineSimulator(machine).backend(thread_grid))

    def register_routine(self, routine: str, bundle=None, predictor=None,
                         backend=None, cache_size: int = 256) -> "GemmService":
        """Serve ``routine`` specs with their own predictor (and backend).

        Pass either a trained ``bundle`` (a predictor is built from it,
        compiled path, grid clamped to the machine exactly like
        :meth:`from_bundle`) or a ready ``predictor``.  ``backend``
        routes the routine's *execution* as well — equivalent to
        :meth:`register_backend` with the routine's spec type; when
        omitted, a non-GEMM routine on a simulator default backend is
        wired through the routine oracle automatically
        (:meth:`_wire_routine_backend`).  Returns self for chaining.
        """
        self._ensure_open()
        if (bundle is None) == (predictor is None):
            raise ValueError("pass exactly one of bundle or predictor")
        if bundle is not None:
            grid = self._clamped_grid(bundle, self._machine_max)
            predictor = bundle.predictor(cache_size=cache_size,
                                         thread_grid=grid, compiled=True)
            self.routine_info[routine] = self._bundle_meta(bundle)
        self._predictors[routine] = predictor
        if backend is not None:
            self.dispatcher.register_routine(routine, as_backend(backend))
        else:
            self._wire_routine_backend(routine, predictor.thread_grid)
        if self.refiner is not None:
            self.refiner.register_predictor(routine, predictor)
        return self

    @property
    def predictor(self):
        """The default routine's predictor (historic single-routine API)."""
        return self._predictors[self.routine]

    @predictor.setter
    def predictor(self, value) -> None:
        self._predictors[self.routine] = value

    @property
    def predictors(self) -> dict:
        """Read-only view: routine name -> predictor."""
        return dict(self._predictors)

    def predictor_for(self, spec):
        """The predictor serving ``spec``'s routine.

        Unregistered routines fall back to the default predictor — the
        historic behaviour where one GEMM model scored every routine's
        dims triple.
        """
        chosen = self._predictors.get(routine_of(spec, self.routine))
        return chosen if chosen is not None else self._predictors[self.routine]

    def reload(self, bundle, cache_size: Optional[int] = None,
               routine: Optional[str] = None) -> dict:
        """Hot-swap one routine's installation artefacts without restarting.

        ``routine`` defaults to the bundle's own ``config.routine`` tag
        (legacy pre-tag bundles: the service default), so publishing a
        new GEMV model into a mixed service swaps *only* the GEMV
        predictor — every other routine keeps serving its artefacts
        untouched.  The fresh predictor (fresh, empty cache; grid
        clamped to the machine exactly as :meth:`from_bundle` does) is
        installed with a single reference assignment, so a concurrently
        executing :meth:`run`/:meth:`run_batch` (which snapshot their
        predictors on entry) finishes on the artefacts it started with
        and the next call uses the new ones.  Prediction counters
        accumulated by the retired predictor stay in :meth:`stats`.
        Returns a summary of the new deployment.
        """
        self._ensure_open()
        routine = routine or getattr(bundle.config, "routine", None) \
            or self.routine
        old = self._predictors.get(routine)
        if cache_size is None:
            cache_size = old.cache.maxsize if old is not None \
                else self.predictor.cache.maxsize
        grid = self._clamped_grid(bundle, self._machine_max)
        predictor = bundle.predictor(cache_size=cache_size, thread_grid=grid,
                                     compiled=True)
        new_refiner = None
        if self.refiner is not None:
            from repro.core.online import OnlineRefiner

            predictors = dict(self._predictors)
            predictors[routine] = predictor
            default = predictors[self.routine]
            new_refiner = OnlineRefiner(
                default, explore_prob=self.refiner.explore_prob,
                min_trials=self.refiner.min_trials)
            for name, pred in predictors.items():
                new_refiner.register_predictor(name, pred)
            # Only the reloaded routine's measurements were taken under
            # the retired model; every other routine keeps its
            # accumulated refinement statistics.
            new_refiner._shapes = {
                key: state for key, state in self.refiner._shapes.items()
                if key[0] != routine}
        # Everything new is fully built before anything is published, and
        # the predictor is published *first*: a concurrent run() snapshot
        # taken mid-reload can pair the new predictor with the old
        # refiner (whose choices still come from its own old predictor —
        # never the other way round, which would serve the new bundle
        # before the swap).  stats() raced against the counter fold may
        # transiently under-report the retired predictor's counts.
        self._predictors[routine] = predictor  # atomic: in-flight hold old
        if new_refiner is not None:
            self.refiner = new_refiner
        if old is not None:
            self._retired_counts["evaluations"] += old.n_evaluations
            self._retired_counts["model_passes"] += old.n_model_passes
            self._retired_counts["table_hits"] += \
                getattr(old, "n_table_hits", 0)
            self._retired_counts["table_fallbacks"] += \
                getattr(old, "n_table_fallbacks", 0)
            self._retired_counts["table_interpolated"] += \
                getattr(old, "n_table_interpolated", 0)
        else:
            # reload() can install a routine the service never served;
            # give it the same default execution wiring registration
            # would have.
            self._wire_routine_backend(routine, grid)
        self.n_reloads += 1
        self.bundle_generation += 1
        meta = self._bundle_meta(bundle)
        self.routine_info[routine] = meta
        if routine == self.routine:
            self.bundle_info = {k: meta[k]
                                for k in ("model_name", "machine")}
        return {"generation": self.bundle_generation, "routine": routine,
                **self.routine_info[routine]} if routine != self.routine \
            else {"generation": self.bundle_generation, **self.bundle_info}

    # -- prediction ------------------------------------------------------
    @property
    def cache(self):
        return self.predictor.cache

    @property
    def thread_grid(self) -> np.ndarray:
        return self.predictor.thread_grid

    def register_backend(self, spec_type: type, backend) -> "GemmService":
        """Route ``spec_type`` calls to another backend; returns self."""
        self.dispatcher.register(spec_type, as_backend(backend))
        return self

    def predict(self, spec) -> int:
        """Thread choice for one spec (cache-backed, no execution)."""
        self._ensure_open()
        return self.predictor_for(spec).predict_threads(*_shape_key(spec))

    def predict_batch(self, specs) -> np.ndarray:
        """Thread choices for a spec stream, one model pass per routine's
        misses."""
        self._ensure_open()
        specs = list(specs)
        choices = np.empty(len(specs), dtype=np.int64)
        for predictor, indices in self._group_by_predictor(specs).values():
            choices[indices] = predictor.predict_threads_batch(
                [_shape_key(specs[i]) for i in indices])
        return choices

    def _group_by_predictor(self, specs) -> dict:
        """``id(predictor) -> (predictor, [input indices])``, first-seen
        order, against a point-in-time snapshot of the predictor map."""
        predictors = dict(self._predictors)
        default = predictors[self.routine]
        groups: dict = {}
        for i, spec in enumerate(specs):
            predictor = predictors.get(routine_of(spec, self.routine))
            if predictor is None:
                predictor = default
            groups.setdefault(id(predictor), (predictor, []))[1].append(i)
        return groups

    # -- execution -------------------------------------------------------
    def run(self, spec) -> GemmCallRecord:
        """Predict (or refine), dispatch and record one call."""
        self._ensure_open()
        # Snapshot: a concurrent reload() swaps the predictor map entry,
        # but this call must finish entirely on the artefacts it started
        # with.
        predictor, refiner = self.predictor_for(spec), self.refiner
        hits_before = predictor.cache.hits
        if refiner is not None:
            rkey = _routine_key(spec)
            n_threads = int(refiner.choose_threads(*rkey[1:],
                                                   routine=rkey[0]))
        else:
            n_threads = predictor.predict_threads(*_shape_key(spec))
        record = self._dispatch(spec, n_threads,
                                memoised=predictor.cache.hits > hits_before)
        if refiner is not None:
            refiner.record(*rkey[1:], record.n_threads, record.runtime,
                           routine=rkey[0])
        self.n_requests += 1
        return record

    def run_batch(self, specs) -> list:
        """Serve a stream of specs, amortising prediction across shapes.

        Duplicate shapes are predicted once; the ``memoised`` flag on a
        record is True when its prediction came from the cache or from
        an earlier occurrence in the same batch.  Records are returned
        in input order.  A mixed-routine stream is grouped per routine:
        each routine's predictor pays one vectorised model pass for its
        uncached shapes, and every choice is bitwise identical to
        serving that routine's sub-stream through a dedicated
        single-routine service.

        With ``refine`` on, the batch still pays one vectorised model
        pass for all uncached shapes (seeding the refiner's priors),
        after which the refiner may substitute a measured-better or
        exploratory neighbour per call.
        """
        self._ensure_open()
        specs = list(specs)
        if not specs:
            return []
        # Snapshot: the whole batch resolves against one predictor map
        # even if reload() swaps the service's artefacts mid-dispatch.
        refiner = self.refiner
        choices = np.empty(len(specs), dtype=np.int64)
        memoised = [False] * len(specs)
        for predictor, indices in self._group_by_predictor(specs).values():
            keys = [predictor.cache_key(specs[i]) for i in indices]
            fresh = {key for key in dict.fromkeys(keys)
                     if key not in predictor.cache}
            choices[indices] = predictor.predict_threads_batch(
                [key[1:] for key in keys])
            seen: set = set()
            for i, key in zip(indices, keys):
                memoised[i] = key not in fresh or key in seen
                seen.add(key)
        records = []
        for spec, n_threads, memo in zip(specs, choices, memoised):
            if refiner is not None:
                rkey = _routine_key(spec)
                n_threads = refiner.choose_threads(*rkey[1:],
                                                   routine=rkey[0])
            record = self._dispatch(spec, int(n_threads), memoised=memo)
            if refiner is not None:
                refiner.record(*rkey[1:], record.n_threads, record.runtime,
                               routine=rkey[0])
            records.append(record)
        self.n_requests += len(specs)
        self.n_batches += 1
        return records

    def run_baseline(self, spec, n_threads: int = None,
                     repeats: int = None) -> float:
        """Static-configuration runtime (default: the maximum grid entry)."""
        self._ensure_open()
        if n_threads is None:
            n_threads = int(self.predictor_for(spec).thread_grid.max())
        return self.dispatcher.timed_run(
            spec, n_threads, repeats=self.repeats if repeats is None else repeats)

    def _dispatch(self, spec, n_threads: int, memoised: bool) -> GemmCallRecord:
        runtime = self.dispatcher.timed_run(spec, n_threads,
                                            repeats=self.repeats)
        record = GemmCallRecord(spec=spec, n_threads=n_threads,
                                runtime=runtime, memoised=memoised)
        self.history.append(record)
        return record

    # -- stats -----------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Flat counter pull for a metrics-registry collector.

        Cheap by construction — counter sums over the handful of live
        predictors, never a walk of ``history`` (unlike the fuller
        :meth:`stats`), so registry snapshots stay O(1) per service.
        """
        if self._closed:
            return {}
        live = list({id(p): p for p in self._predictors.values()
                     if p is not None}.values())
        cache_hits = cache_misses = 0
        for p in live:
            cache_hits += p.cache.hits
            cache_misses += p.cache.misses
        out = {
            "engine_requests": self.n_requests,
            "engine_batches": self.n_batches,
            "engine_evaluations": (sum(p.n_evaluations for p in live)
                                   + self._retired_counts["evaluations"]),
            "engine_model_passes": (sum(p.n_model_passes for p in live)
                                    + self._retired_counts["model_passes"]),
            "engine_cache_hits": cache_hits,
            "engine_cache_misses": cache_misses,
            "engine_reloads": self.n_reloads,
        }
        tables = self.table_counters()
        if tables["table_hits"] or tables["table_fallbacks"]:
            out["engine_table_hits"] = tables["table_hits"]
            out["engine_table_fallbacks"] = tables["table_fallbacks"]
            if tables["table_interpolated"]:
                out["engine_table_interpolated"] = \
                    tables["table_interpolated"]
        return out

    def table_counters(self) -> dict:
        """Lifetime decision-table counters across every predictor.

        ``table_hits`` are predictions answered straight from a tier-0
        table (no model pass); ``table_fallbacks`` are cache misses
        that probed a table but fell off its lattice and took the
        plan/object path.  Retired (hot-reloaded) predictors' counts
        are folded in, so the values are monotonic — the serving
        telemetry diffs them per micro-batch.
        """
        live = {id(p): p for p in self._predictors.values()
                if p is not None}.values()
        return {
            "table_hits": (sum(getattr(p, "n_table_hits", 0) for p in live)
                           + self._retired_counts["table_hits"]),
            "table_fallbacks": (
                sum(getattr(p, "n_table_fallbacks", 0) for p in live)
                + self._retired_counts["table_fallbacks"]),
            "table_interpolated": (
                sum(getattr(p, "n_table_interpolated", 0) for p in live)
                + self._retired_counts["table_interpolated"]),
        }

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of served calls whose prediction was cached."""
        if not self.history:
            return 0.0
        return sum(r.memoised for r in self.history) / len(self.history)

    def stats(self) -> dict:
        """History- and cache-derived serving statistics.

        ``evaluations``/``model_passes`` stay monotonic across
        hot-reloads: counters of retired predictors are folded in.
        Cache counters aggregate every routine's predictor; the
        ``routines`` entry breaks requests, evaluations and cache
        effectiveness down per routine.
        """
        predictors = dict(self._predictors)
        live = {id(p): p for p in predictors.values()}.values()
        cache_stats = {"size": 0, "maxsize": 0,
                       "hits": 0, "misses": 0, "evictions": 0}
        for p in live:
            for field, value in p.cache.stats().items():
                if field in cache_stats:
                    cache_stats[field] += value
        lookups = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_rate"] = round(
            cache_stats["hits"] / lookups, 4) if lookups else 0.0
        stats = {
            "requests": self.n_requests,
            "batches": self.n_batches,
            "unique_shapes": len({_routine_key(r.spec)
                                  for r in self.history}),
            "evaluations": (sum(p.n_evaluations for p in live)
                            + self._retired_counts["evaluations"]),
            "model_passes": (sum(p.n_model_passes for p in live)
                             + self._retired_counts["model_passes"]),
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            "reloads": self.n_reloads,
            "bundle_generation": self.bundle_generation,
            **{f"cache_{k}": v for k, v in cache_stats.items()},
        }
        if any(getattr(p, "table", None) is not None for p in live) \
                or self._retired_counts["table_hits"] \
                or self._retired_counts["table_fallbacks"]:
            stats.update(self.table_counters())
        if len(predictors) > 1 or self.routine_info:
            requests = Counter(r.routine for r in self.history)
            stats["routines"] = {
                name: {
                    "requests": requests.get(name, 0),
                    "evaluations": predictor.n_evaluations,
                    "model_passes": predictor.n_model_passes,
                    **({"table_hits": predictor.n_table_hits,
                        "table_fallbacks": predictor.n_table_fallbacks,
                        **({"table_interpolated":
                            predictor.n_table_interpolated}
                           if getattr(predictor, "n_table_interpolated", 0)
                           else {})}
                       if getattr(predictor, "table", None) is not None
                       else {}),
                    **{f"cache_{k}": v
                       for k, v in predictor.cache.stats().items()},
                    **self.routine_info.get(name, {}),
                }
                for name, predictor in predictors.items()}
        if self.bundle_info:
            stats["model_name"] = self.bundle_info.get("model_name", "")
        if self.refiner is not None:
            stats["refine_explorations"] = self.refiner.n_explorations
        return stats

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the models (paper: destroy the instance after last call)."""
        self._predictors = {self.routine: None}
        self.refiner = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("GemmService instance has been closed")

    def __enter__(self) -> "GemmService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
