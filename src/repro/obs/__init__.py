"""repro.obs — observability: metrics, tracing, exporters, drift monitors.

The layer ROADMAP items 1 (canary/rollback) and 2 (drift-triggered
retraining) stand on: a process-wide :class:`MetricsRegistry` every
subsystem publishes into, per-request span traces with a bounded
collector, Prometheus/JSONL exporters, and latching threshold monitors.
"""

from repro.obs.metrics import (
    DEFAULT_CAPACITY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    default_registry,
    next_instance_id,
    set_default_registry,
)
from repro.obs.tracing import (
    CHAIN,
    RequestTrace,
    Span,
    SpanCollector,
    new_trace_id,
)
from repro.obs.exporters import (
    read_jsonl,
    render_prometheus,
    write_metrics_jsonl,
    write_prometheus,
    write_snapshot,
)
from repro.obs.monitors import (
    DriftEvent,
    DriftMonitor,
    MonitorSet,
    cache_hit_rate_monitor,
    p99_latency_monitor,
    refiner_drift_monitor,
    table_fallback_monitor,
)

__all__ = [
    "DEFAULT_CAPACITY", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Reservoir", "default_registry", "next_instance_id",
    "set_default_registry",
    "CHAIN", "RequestTrace", "Span", "SpanCollector", "new_trace_id",
    "read_jsonl", "render_prometheus", "write_metrics_jsonl",
    "write_prometheus", "write_snapshot",
    "DriftEvent", "DriftMonitor", "MonitorSet", "cache_hit_rate_monitor",
    "p99_latency_monitor", "refiner_drift_monitor", "table_fallback_monitor",
]
