"""Request tracing: one span chain per served request, ring-buffered.

The serving path answers "how fast on average?" through telemetry; it
could not answer "what happened to *this* request?".  Tracing fills
that gap with the span model every production tracer uses, tuned so
the hot path pays almost nothing:

* a :class:`RequestTrace` is a ``__slots__`` scratchpad of timestamps
  the server and scheduler stamp as the request moves — admission,
  batch formation, execution window, predict-tier resolution.  No
  span objects, no dicts, no string formatting on the hot path;
* the :class:`SpanCollector` ring buffer stores finished traces and
  materialises :class:`Span` objects **lazily** — only when someone
  asks (``tail``, ``chain``, JSONL export).  A trace that is never
  inspected costs a dozen attribute writes and one list append;
* with tracing disabled the server never allocates a trace at all —
  the hot path is a single ``is None`` check.

Span chain per request (all sharing the request's ``trace_id``)::

    request                          admission -> resolution, root
    ├── admission                    instant: queue depth at admit
    ├── queue_wait                   admission -> batch execution start
    ├── batch                        batch formation window (size, shard)
    ├── predict                      tier resolution (cache/table/plan/
    │                                object) + chosen thread count
    └── execute                      backend execution window + runtime

Trace ids are deterministic within a process (a monotonic counter), so
replaying the same trace twice yields comparable chains; callers may
supply their own ids (``TimedRequest.trace_id``) for cross-system
correlation.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Span names of one complete chain, in causal order.
CHAIN = ("request", "admission", "queue_wait", "batch", "predict", "execute")

_trace_seq = itertools.count(1)


def new_trace_id(prefix: str = "t") -> str:
    """Process-unique, deterministic-order trace id."""
    return f"{prefix}{next(_trace_seq):08d}"


@dataclass(frozen=True)
class Span:
    """One materialised span of a request's journey."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    t_start: float
    t_end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "t_start": round(self.t_start, 9),
                "t_end": round(self.t_end, 9),
                "duration_s": round(self.duration_s, 9), **self.attrs}


class RequestTrace:
    """Mutable per-request trace context (the hot-path scratchpad).

    The server stamps admission, the scheduler stamps batch formation
    and execution; :meth:`spans` turns the stamps into the span chain.
    All timestamps are event-loop seconds (``loop.time()``), the same
    clock the latency telemetry uses.
    """

    __slots__ = ("trace_id", "client", "routine", "shard", "queue_depth",
                 "t_submit", "t_batch_form", "t_exec_start", "t_exec_done",
                 "batch_size", "tier", "n_threads", "runtime_s", "status")

    def __init__(self, trace_id: str, client: str, routine: Optional[str],
                 shard: str, queue_depth: int, t_submit: float):
        self.trace_id = trace_id
        self.client = client
        self.routine = routine
        self.shard = shard
        self.queue_depth = queue_depth
        self.t_submit = t_submit
        self.t_batch_form: Optional[float] = None
        self.t_exec_start: Optional[float] = None
        self.t_exec_done: Optional[float] = None
        self.batch_size: int = 0
        self.tier: Optional[str] = None
        self.n_threads: Optional[int] = None
        self.runtime_s: Optional[float] = None
        self.status: str = "ok"

    # -- materialisation (cold path only) --------------------------------
    def spans(self) -> List[Span]:
        """The chain in causal order; complete once execution finished."""
        t0 = self.t_submit
        t_form = self.t_batch_form if self.t_batch_form is not None else t0
        t_exec = self.t_exec_start if self.t_exec_start is not None else t_form
        t_done = self.t_exec_done if self.t_exec_done is not None else t_exec
        root_id = f"{self.trace_id}/0"
        common = {"client": self.client, "shard": self.shard}
        if self.routine is not None:
            common["routine"] = self.routine
        spans = [Span(self.trace_id, root_id, None, "request", t0, t_done,
                      {**common, "status": self.status}),
                 Span(self.trace_id, f"{self.trace_id}/1", root_id,
                      "admission", t0, t0,
                      {"queue_depth": self.queue_depth}),
                 Span(self.trace_id, f"{self.trace_id}/2", root_id,
                      "queue_wait", t0, t_exec, {}),
                 Span(self.trace_id, f"{self.trace_id}/3", root_id,
                      "batch", t_form, t_exec,
                      {"batch_size": self.batch_size, "shard": self.shard}),
                 Span(self.trace_id, f"{self.trace_id}/4", root_id,
                      "predict", t_exec, t_exec,
                      {"tier": self.tier, "n_threads": self.n_threads}),
                 Span(self.trace_id, f"{self.trace_id}/5", root_id,
                      "execute", t_exec, t_done,
                      {"runtime_s": self.runtime_s,
                       "n_threads": self.n_threads})]
        return spans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestTrace({self.trace_id!r}, tier={self.tier!r}, "
                f"status={self.status!r})")


class SpanCollector:
    """Bounded ring buffer of finished request traces.

    ``capacity`` bounds *traces* (each materialises into
    ``len(CHAIN)`` spans); the oldest are dropped first and counted in
    ``n_dropped`` so an exporter can report truncation instead of
    silently presenting a partial history as complete.
    """

    def __init__(self, capacity: int = 4096):
        if int(capacity) < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._traces: List[RequestTrace] = []
        self.n_traces = 0          # lifetime finished traces
        self.n_dropped = 0
        self._lock = threading.Lock()

    # -- hot path --------------------------------------------------------
    def finish(self, trace: RequestTrace) -> None:
        """Record one finished request trace (one append, no spans yet)."""
        with self._lock:
            self.n_traces += 1
            self._traces.append(trace)
            if len(self._traces) > self.capacity:
                overflow = len(self._traces) - self.capacity
                del self._traces[:overflow]
                self.n_dropped += overflow

    # -- inspection (cold path) ------------------------------------------
    def traces(self) -> List[RequestTrace]:
        with self._lock:
            return list(self._traces)

    def trace_ids(self) -> List[str]:
        return [t.trace_id for t in self.traces()]

    def spans(self) -> List[Span]:
        """Every retained span, oldest trace first, causal order within."""
        return [span for trace in self.traces() for span in trace.spans()]

    def chain(self, trace_id: str) -> List[Span]:
        """The span chain of one trace (empty when evicted/unknown)."""
        for trace in self.traces():
            if trace.trace_id == trace_id:
                return trace.spans()
        return []

    def tail(self, n: int) -> List[Span]:
        """The spans of the ``n`` most recent traces."""
        recent = self.traces()[-max(int(n), 0):]
        return [span for trace in recent for span in trace.spans()]

    def complete(self, trace: RequestTrace) -> bool:
        """Whether a trace carries every stamp of a full chain."""
        return (trace.t_batch_form is not None
                and trace.t_exec_start is not None
                and trace.t_exec_done is not None
                and trace.tier is not None
                and trace.status == "ok")

    def stats(self) -> dict:
        traces = self.traces()
        return {"traces": self.n_traces,
                "retained": len(traces),
                "dropped": self.n_dropped,
                "complete": sum(self.complete(t) for t in traces),
                "capacity": self.capacity}

    # -- export ----------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """Write one span per line; returns the number of spans written."""
        spans = self.spans()
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        return len(spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanCollector({len(self)}/{self.capacity} traces, "
                f"{self.n_dropped} dropped)")
