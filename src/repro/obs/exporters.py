"""Exporters: turn a registry + span collector into inspectable artefacts.

Two machine-readable formats, one directory convention:

* **Prometheus text** (:func:`render_prometheus`) — the de-facto pull
  format; a scrape endpoint or a file-glob sidecar can serve it as-is.
  Instrument names are sanitised to the Prometheus grammar, labels are
  escaped, histograms render as ``_count`` / ``_sum`` plus
  ``quantile``-labelled gauges (reservoir-estimated, so quantiles are
  marked with the standard summary convention);
* **JSONL snapshots** (:func:`write_metrics_jsonl`) — one metric per
  line, the format ``diff_bench``-style tooling and the fv3net-like
  diagnostics gates consume.

:func:`write_snapshot` bundles both plus span JSONL and a raw
``stats.json`` into one directory — the artefact set CI uploads and
``repro obs`` reads back.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import SpanCollector

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))


def _prom_name(name: str, prefix: str) -> str:
    name = _NAME_OK.sub("_", str(name))
    return f"{prefix}_{name}" if prefix else name


def _prom_labels(labels: dict, extra: dict = None) -> str:
    merged = {**(labels or {}), **(extra or {})}
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        key = _NAME_OK.sub("_", str(key))
        value = str(value).replace("\\", r"\\").replace('"', r'\"')
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render instruments + collector pulls as Prometheus text format."""
    lines = []
    seen_types = set()

    def header(name: str, kind: str):
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for inst in registry.instruments():
        name = _prom_name(inst.name, prefix)
        if isinstance(inst, Histogram):
            # Reservoir histograms export with the summary convention:
            # exact count/sum, estimated quantiles.
            header(name, "summary")
            summary = inst.reservoir.summary()
            for q, q_label in _QUANTILES:
                key = f"p{q_label[2:]}" if q != 0.5 else "p50"
                if key in summary:
                    labels = _prom_labels(inst.labels,
                                          {"quantile": q_label})
                    lines.append(f"{name}{labels} "
                                 f"{_prom_value(summary[key])}")
            labels = _prom_labels(inst.labels)
            lines.append(f"{name}_count{labels} {summary['count']}")
            lines.append(f"{name}_sum{labels} {_prom_value(summary['sum'])}")
        else:
            header(name, inst.kind)
            labels = _prom_labels(inst.labels)
            lines.append(f"{name}{labels} {_prom_value(inst.value)}")

    for row in registry.collect():
        name = _prom_name(row["name"], prefix)
        header(name, "gauge")
        labels = _prom_labels(row["labels"])
        lines.append(f"{name}{labels} {_prom_value(row['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path,
                     prefix: str = "repro") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(registry, prefix=prefix))
    return path


def write_metrics_jsonl(registry: MetricsRegistry, path,
                        ts: float = None) -> int:
    """One metric per line (instruments then collector pulls).

    Returns the number of lines written.  ``ts`` stamps every line so
    successive snapshots concatenate into a time series.
    """
    ts = time.time() if ts is None else float(ts)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = [i.describe() for i in registry.instruments()]
    rows += registry.collect()
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps({"ts": round(ts, 3), **row},
                                sort_keys=True, default=str) + "\n")
    return len(rows)


def write_snapshot(registry: MetricsRegistry, out_dir, *,
                   collector: Optional[SpanCollector] = None,
                   stats: dict = None, prefix: str = "repro") -> dict:
    """Write the full artefact set into ``out_dir``.

    ============== =====================================================
    file           contents
    ============== =====================================================
    metrics.prom   Prometheus text rendering of the registry
    metrics.jsonl  one metric per line (instruments + collector pulls)
    spans.jsonl    one span per line (when a collector is given)
    stats.json     the raw ``stats()`` dict (when given) + events
    ============== =====================================================

    Returns ``{file role: path}`` for the files actually written.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = {}
    written["prometheus"] = str(write_prometheus(
        registry, out_dir / "metrics.prom", prefix=prefix))
    write_metrics_jsonl(registry, out_dir / "metrics.jsonl")
    written["metrics"] = str(out_dir / "metrics.jsonl")
    if collector is not None:
        collector.export_jsonl(out_dir / "spans.jsonl")
        written["spans"] = str(out_dir / "spans.jsonl")
    if stats is not None:
        payload = {"stats": stats, "events": registry.events(),
                   "trace": collector.stats() if collector else None}
        (out_dir / "stats.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str))
        written["stats"] = str(out_dir / "stats.json")
    return written


def read_jsonl(path) -> list:
    """Read one-object-per-line files (spans.jsonl / metrics.jsonl)."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
