"""The unified metrics registry: counters, gauges, bounded histograms.

Before this module every subsystem kept its own ad-hoc dicts of
counters (``ServeTelemetry``, ``GemmService.stats()``,
``PredictionCache.stats()``) and its own *unbounded* sample lists — a
long-lived server grew memory without limit and there was no single
place an exporter could read.  :class:`MetricsRegistry` is that place:

* **instruments** — :class:`Counter` (monotonic), :class:`Gauge`
  (last-write-wins) and :class:`Histogram` (a bounded
  :class:`Reservoir` plus *exact* count/sum/min/max), each identified
  by ``(name, labels)`` so one registry serves many routines, shards
  and clients without collisions;
* **collectors** — pull-based callbacks registered with
  :meth:`MetricsRegistry.register_collector`.  Components that already
  maintain their own counters (the serve telemetry, the engine service)
  register a zero-hot-path-cost collector instead of double-counting;
  the registry holds them via *weak references*, so a garbage-collected
  server drops out of the snapshot automatically — no unregister
  bookkeeping, no cross-test leaks;
* **events** — a bounded audit ring (:meth:`MetricsRegistry.event`) for
  discrete occurrences that are not time series: registry publishes,
  hot reloads, drift-monitor firings.

A process-wide instance is available via :func:`default_registry`; the
serving and training layers publish into it unless handed an explicit
registry.  Everything here is import-light (numpy only) so any layer
may depend on it without cycles.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Default bounded-sample capacity.  Below this many observations a
#: Reservoir is *exact* (bitwise identical to the unbounded list it
#: replaces); past it, reservoir sampling keeps a uniform subsample.
DEFAULT_CAPACITY = 4096

_ids = itertools.count(1)


def _label_key(labels: Dict[str, str]) -> Tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Reservoir:
    """Bounded sample store: exact until ``capacity``, Algorithm R after.

    Drop-in replacement for the unbounded ``list`` samples the serve
    telemetry used to keep: supports ``append``/``extend``, iteration,
    indexing and ``len`` (of the *retained* sample), while ``count``,
    ``total``, ``minimum`` and ``maximum`` stay exact over every value
    ever observed.  The replacement RNG is seeded, so two processes
    replaying the same stream retain the same subsample.
    """

    __slots__ = ("capacity", "count", "total", "minimum", "maximum",
                 "_data", "_rng")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, seed: int = 0):
        if int(capacity) < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.count = 0          # total observed, not just retained
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._data: List[float] = []
        self._rng = random.Random(seed)

    # -- recording -------------------------------------------------------
    def append(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._data) < self.capacity:
            self._data.append(value)
            return
        # Algorithm R: retained sample stays uniform over all observed.
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._data[j] = value

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    # -- sequence protocol (what latency_summary / tests consume) --------
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        return self._data[index]

    def __iter__(self):
        return iter(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    @property
    def saturated(self) -> bool:
        """Whether observations have exceeded the retained capacity."""
        return self.count > self.capacity

    def percentile(self, q) -> float:
        if not self._data:
            raise ValueError("empty reservoir")
        return float(np.percentile(np.asarray(self._data, dtype=np.float64),
                                   q))

    def summary(self) -> dict:
        """Exact count/sum/min/max plus reservoir-estimated percentiles."""
        out = {"count": self.count, "sum": round(self.total, 9),
               "min": self.minimum, "max": self.maximum}
        if self._data:
            s = np.asarray(self._data, dtype=np.float64)
            out.update({"mean": float(self.total / self.count),
                        "p50": float(np.percentile(s, 50)),
                        "p95": float(np.percentile(s, 95)),
                        "p99": float(np.percentile(s, 99))})
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Reservoir({len(self._data)}/{self.capacity} retained, "
                f"{self.count} observed)")


class _Instrument:
    """Shared identity: ``(name, labels)`` plus the owning registry."""

    kind = "instrument"

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = str(name)
        self.labels = dict(labels)

    def describe(self) -> dict:
        return {"name": self.name, "type": self.kind, "labels": self.labels}


class Counter(_Instrument):
    """Monotonically increasing value (requests, hits, publishes)."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (use a Gauge)")
        self.value += amount

    def describe(self) -> dict:
        return {**super().describe(), "value": self.value}


class Gauge(_Instrument):
    """Last-written value (queue depth, stage duration, drift statistic)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def describe(self) -> dict:
        return {**super().describe(), "value": self.value}


class Histogram(_Instrument):
    """Bounded distribution: exact aggregates, reservoir percentiles."""

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 capacity: int = DEFAULT_CAPACITY):
        super().__init__(name, labels)
        self.reservoir = Reservoir(capacity)

    def observe(self, value: float) -> None:
        self.reservoir.append(value)

    @property
    def count(self) -> int:
        return self.reservoir.count

    def describe(self) -> dict:
        return {**super().describe(), **self.reservoir.summary()}


class MetricsRegistry:
    """Process-wide (or scoped) home for instruments, collectors, events.

    Parameters
    ----------
    events_capacity:
        Bound on the audit-event ring; the oldest events are dropped
        first (``n_events`` stays exact).
    """

    def __init__(self, events_capacity: int = 1024):
        self._instruments: Dict[Tuple, _Instrument] = {}
        self._collectors: List[Tuple] = []   # (weak_fn, labels)
        self._events: List[dict] = []
        self._events_capacity = int(events_capacity)
        self.n_events = 0
        self._lock = threading.Lock()

    # -- instruments -----------------------------------------------------
    def _get(self, factory, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, labels, **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the counter identified by ``(name, labels)``."""
        instrument = self._get(Counter, name, labels)
        if not isinstance(instrument, Counter):
            raise TypeError(f"{name!r} is a {instrument.kind}, not a counter")
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        instrument = self._get(Gauge, name, labels)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{name!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(self, name: str, capacity: int = DEFAULT_CAPACITY,
                  **labels) -> Histogram:
        instrument = self._get(Histogram, name, labels, capacity=capacity)
        if not isinstance(instrument, Histogram):
            raise TypeError(
                f"{name!r} is a {instrument.kind}, not a histogram")
        return instrument

    def instruments(self) -> list:
        with self._lock:
            return list(self._instruments.values())

    # -- aggregation -----------------------------------------------------
    def total(self, name: str, **labels) -> float:
        """Sum an instrument across every label set carrying ``name``.

        ``labels`` filters: only instruments whose labels include every
        given key/value pair contribute.  Histograms contribute their
        observation count.  This is the fleet-level rollup: per-worker
        counters stay labelled (``worker="worker-3"``) and exporters or
        dashboards read one number here.
        """
        out = 0.0
        for instrument in self.instruments():
            if instrument.name != name:
                continue
            if any(str(instrument.labels.get(str(k))) != str(v)
                   for k, v in labels.items()):
                continue
            out += (instrument.count if isinstance(instrument, Histogram)
                    else instrument.value)
        return out

    def by_label(self, name: str, label: str) -> dict:
        """Per-label-value breakdown of an instrument, summed otherwise.

        ``by_label("fleet_served", "worker")`` returns
        ``{"worker-0": 812.0, "worker-1": 790.0, ...}``; instruments
        without the label are skipped.  The labelled twin of
        :meth:`total`.
        """
        out: Dict[str, float] = {}
        label = str(label)
        for instrument in self.instruments():
            if instrument.name != name or label not in instrument.labels:
                continue
            value = (instrument.count if isinstance(instrument, Histogram)
                     else instrument.value)
            key = str(instrument.labels[label])
            out[key] = out.get(key, 0.0) + value
        return out

    # -- collectors ------------------------------------------------------
    def register_collector(self, fn: Callable[[], Dict[str, float]],
                           **labels) -> None:
        """Register a pull callback returning ``{metric name: value}``.

        Bound methods are held through :class:`weakref.WeakMethod`, so
        the registry never keeps a served component alive: once the
        owning object is collected the entry silently disappears from
        snapshots.  Plain callables (lambdas, free functions) are held
        strongly — an inline closure has no owner whose lifetime could
        scope it, and weakly referencing one would drop it on the next
        garbage collection.  Collection happens only at snapshot/export
        time — registering a collector adds **zero** cost to any hot
        path.
        """
        try:
            ref = weakref.WeakMethod(fn) if hasattr(fn, "__self__") \
                else (lambda strong=fn: strong)
        except TypeError:  # unweakrefable method owner — hold strongly
            ref = (lambda strong=fn: strong)
        with self._lock:
            self._collectors.append((ref, dict(labels)))

    def collect(self) -> List[dict]:
        """Run every live collector; prune the dead ones."""
        with self._lock:
            collectors = list(self._collectors)
        rows, dead = [], []
        for ref, labels in collectors:
            fn = ref()
            if fn is None:
                dead.append((ref, labels))
                continue
            try:
                values = fn()
            except ReferenceError:  # owner died mid-call
                dead.append((ref, labels))
                continue
            for name, value in (values or {}).items():
                rows.append({"name": name, "type": "gauge",
                             "labels": labels, "value": value})
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors
                                    if c not in dead]
        return rows

    # -- events ----------------------------------------------------------
    def event(self, name: str, ts: float = None, **attrs) -> dict:
        """Record one audit event in the bounded ring; returns it."""
        entry = {"event": str(name),
                 "ts": time.time() if ts is None else float(ts), **attrs}
        with self._lock:
            self.n_events += 1
            self._events.append(entry)
            if len(self._events) > self._events_capacity:
                del self._events[:len(self._events) - self._events_capacity]
        return entry

    def events(self, name: str = None) -> List[dict]:
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [e for e in events if e["event"] == name]
        return events

    # -- snapshot --------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time view: instruments + collector pulls + events."""
        return {
            "metrics": ([i.describe() for i in self.instruments()]
                        + self.collect()),
            "events": self.events(),
            "n_events": self.n_events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry({len(self._instruments)} instruments, "
                f"{len(self._collectors)} collectors, "
                f"{len(self._events)} events)")


_default: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every layer publishes into by default."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = MetricsRegistry()
    return _default


def set_default_registry(registry: Optional[MetricsRegistry]) -> None:
    """Swap (or with ``None``, reset) the process-wide default registry.

    Tests use this to observe a pristine registry; serving code should
    normally accept an explicit registry parameter instead.
    """
    global _default
    with _default_lock:
        _default = registry


def next_instance_id(prefix: str) -> str:
    """Short process-unique component label (``srv-3``, ``svc-17``)."""
    return f"{prefix}-{next(_ids)}"
