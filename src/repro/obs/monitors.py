"""Threshold drift monitors: the hook rollback/retrain loops subscribe to.

The ROADMAP's fleet items (canary-then-promote with automatic rollback;
closed-loop retraining on drift) both reduce to the same primitive:
*watch a statistic, fire a callback once when it crosses a threshold*.
:class:`DriftMonitor` is that primitive and :class:`MonitorSet` is the
collection a server evaluates after every executed batch.

Design points:

* **cheap extraction** — a monitor's ``extract(source)`` reads O(1)
  counters (table fallbacks, cache hits) or a bounded reservoir; the
  per-batch evaluation cost is a few comparisons.  ``every`` rate-limits
  genuinely heavier extractors (percentiles) to every N-th evaluation;
* **latching** — a monitor fires *exactly once* per arming.  Traffic
  that stays beyond the threshold does not re-fire every batch (the
  alert would be worthless noise); :meth:`DriftMonitor.reset` re-arms
  after the operator (or the future rollback loop) has acted;
* **minimum evidence** — ``min_count`` observations are required before
  a rate is trusted, so the first off-lattice request of a warm-up does
  not page anyone.

Fired events are delivered to per-monitor and per-set callbacks and
recorded as ``drift`` audit events in a metrics registry, which is how
exports and the CLI surface them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, default_registry


@dataclass(frozen=True)
class DriftEvent:
    """One threshold crossing."""

    monitor: str
    value: float
    threshold: float
    direction: str              # "above" or "below"
    count: int                  # observations backing the value

    def as_dict(self) -> dict:
        return {"monitor": self.monitor, "value": round(self.value, 6),
                "threshold": self.threshold, "direction": self.direction,
                "count": self.count}


class DriftMonitor:
    """Watch one statistic; latch and fire on the first crossing.

    Parameters
    ----------
    name:
        Event label ("table_fallback_rate", ...).
    extract:
        ``extract(source) -> (value, count) | None``.  ``source`` is
        whatever the caller evaluates against (a
        :class:`~repro.serve.server.GemmServer` for the built-ins).
        Return ``None`` when the statistic does not apply yet.
    above / below:
        Fire when ``value > above`` (resp. ``value < below``).  Exactly
        one must be set.
    min_count:
        Observations required before the value is trusted.
    every:
        Evaluate only every N-th call (rate-limits costly extractors).
    callback:
        Invoked with the :class:`DriftEvent` when the monitor fires.
    """

    def __init__(self, name: str,
                 extract: Callable[[object], Optional[tuple]], *,
                 above: float = None, below: float = None,
                 min_count: int = 1, every: int = 1,
                 callback: Callable[[DriftEvent], None] = None):
        if (above is None) == (below is None):
            raise ValueError("set exactly one of above/below")
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.name = str(name)
        self.extract = extract
        self.above = above
        self.below = below
        self.min_count = int(min_count)
        self.every = int(every)
        self.callback = callback
        self.fired: Optional[DriftEvent] = None
        self.last_value: Optional[float] = None
        self._evaluations = 0

    @property
    def threshold(self) -> float:
        return self.above if self.above is not None else self.below

    @property
    def direction(self) -> str:
        return "above" if self.above is not None else "below"

    def reset(self) -> None:
        """Re-arm after a firing has been handled."""
        self.fired = None

    def evaluate(self, source) -> Optional[DriftEvent]:
        """One observation; returns the event on the firing call only."""
        self._evaluations += 1
        if self.fired is not None or (self._evaluations - 1) % self.every:
            return None
        extracted = self.extract(source)
        if extracted is None:
            return None
        value, count = extracted
        self.last_value = float(value)
        if count < self.min_count:
            return None
        crossed = (value > self.above) if self.above is not None \
            else (value < self.below)
        if not crossed:
            return None
        event = DriftEvent(monitor=self.name, value=float(value),
                           threshold=float(self.threshold),
                           direction=self.direction, count=int(count))
        self.fired = event           # latch before callbacks: fire once
        if self.callback is not None:
            self.callback(event)
        return event


class MonitorSet:
    """The monitors one server evaluates after every executed batch."""

    def __init__(self, monitors: List[DriftMonitor] = (), *,
                 on_fire: Callable[[DriftEvent], None] = None,
                 registry: MetricsRegistry = None):
        self.monitors = list(monitors)
        self.on_fire = on_fire
        self.registry = registry
        self.events: List[DriftEvent] = []

    def add(self, monitor: DriftMonitor) -> "MonitorSet":
        self.monitors.append(monitor)
        return self

    def evaluate(self, source) -> List[DriftEvent]:
        """Evaluate every monitor; deliver + record any firings."""
        fired = []
        for monitor in self.monitors:
            event = monitor.evaluate(source)
            if event is None:
                continue
            fired.append(event)
            self.events.append(event)
            registry = self.registry if self.registry is not None \
                else default_registry()
            registry.event("drift", **event.as_dict())
            if self.on_fire is not None:
                self.on_fire(event)
        return fired

    def reset(self) -> None:
        for monitor in self.monitors:
            monitor.reset()

    def stats(self) -> dict:
        return {"monitors": {m.name: {
            "threshold": m.threshold, "direction": m.direction,
            "last_value": m.last_value,
            "fired": m.fired.as_dict() if m.fired else None}
            for m in self.monitors},
            "events": [e.as_dict() for e in self.events]}

    def __len__(self) -> int:
        return len(self.monitors)


# -- built-in extractors (evaluate against a GemmServer) -----------------
def table_fallback_monitor(max_rate: float, min_lookups: int = 20,
                           callback=None) -> DriftMonitor:
    """Fire when the tier-0 fallback rate exceeds ``max_rate``.

    The fallback counter is *the* signal that traffic has left the
    compiled lattice (the decision table keeps answering only shapes it
    was built for) — exactly what should trigger lattice refinement or
    retraining on captured traffic.
    """

    def extract(server):
        telemetry = server.telemetry
        lookups = telemetry.table_hits + telemetry.table_fallbacks
        if lookups == 0:
            return None
        return telemetry.table_fallbacks / lookups, lookups

    return DriftMonitor("table_fallback_rate", extract, above=float(max_rate),
                        min_count=min_lookups, callback=callback)


def cache_hit_rate_monitor(min_rate: float, min_lookups: int = 20,
                           callback=None) -> DriftMonitor:
    """Fire when the prediction-cache hit rate drops below ``min_rate``."""

    def extract(server):
        hits = misses = 0
        for service in server.shards.values():
            predictors = getattr(service, "predictors", None)
            if not predictors:
                continue
            for cache in {id(p.cache): p.cache
                          for p in predictors.values()
                          if p is not None}.values():
                hits += cache.hits
                misses += cache.misses
        lookups = hits + misses
        if lookups == 0:
            return None
        return hits / lookups, lookups

    return DriftMonitor("cache_hit_rate", extract, below=float(min_rate),
                        min_count=min_lookups, callback=callback)


def p99_latency_monitor(baseline_p99_s: float, factor: float = 2.0,
                        min_samples: int = 20, every: int = 8,
                        callback=None) -> DriftMonitor:
    """Fire when served p99 exceeds ``factor`` x the recorded baseline.

    This is the regression gate the canary-then-promote loop needs: the
    baseline p99 comes from the previous bundle's benchmark artefact
    (``BENCH_serve.json``), and a firing is the rollback trigger.
    """
    if baseline_p99_s <= 0:
        raise ValueError("baseline_p99_s must be positive")

    def extract(server):
        latencies = server.telemetry.latencies
        if len(latencies) == 0:
            return None
        p99 = float(np.percentile(np.asarray(latencies, dtype=np.float64),
                                  99))
        return p99 / baseline_p99_s, latencies.count

    return DriftMonitor("p99_vs_baseline", extract, above=float(factor),
                        min_count=min_samples, every=every, callback=callback)


def refiner_drift_monitor(max_fraction: float, min_shapes: int = 5,
                          callback=None) -> DriftMonitor:
    """Fire when the online refiner disagrees with the model too often.

    Reads :meth:`repro.core.online.OnlineRefiner.drift_statistic` across
    every refining shard: the fraction of measured shapes whose
    locally-optimal choice differs from the model's prior.  A high
    fraction means the deployed model no longer matches the machine —
    the retrain trigger of ROADMAP item 2.
    """

    def extract(server):
        worst = None
        shapes = 0
        for service in server.shards.values():
            refiner = getattr(service, "refiner", None)
            if refiner is None:
                continue
            stat = refiner.drift_statistic()
            shapes += stat["shapes"]
            fraction = stat["drift_fraction"]
            if worst is None or fraction > worst:
                worst = fraction
        if worst is None or shapes == 0:
            return None
        return worst, shapes

    return DriftMonitor("refiner_drift", extract, above=float(max_fraction),
                        min_count=min_shapes, callback=callback)
