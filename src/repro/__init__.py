"""repro — reproduction of "A Machine Learning Approach Towards Runtime
Optimisation of Matrix Multiplication" (Xia et al., IPDPS 2023).

ADSALA selects the optimal number of threads for a multi-threaded GEMM
at runtime using a regression model trained at installation time.

Quickstart::

    from repro import quick_install, AdsalaGemm, GemmSpec

    bundle, simulator = quick_install("gadi", n_shapes=120)
    with AdsalaGemm(bundle, simulator) as gemm:
        record = gemm.gemm(m=64, k=2048, n=64)
        print(record.n_threads, record.runtime)

Subpackages
-----------
``repro.gemm``
    BLAS-style GEMM substrate: kernels, packing, partitioning, a real
    threaded executor.
``repro.machine``
    Simulated two-socket HPC nodes (Setonix / Gadi presets) with a
    white-box cost model for multi-threaded GEMM wall time.
``repro.ml``
    From-scratch numpy implementations of all candidate regression
    models and the surrounding model-selection machinery.
``repro.preprocessing``
    Yeo-Johnson, standardisation, LOF outlier removal, correlation
    pruning.
``repro.sampling``
    Scrambled-Halton sampling of the GEMM shape domain.
``repro.core``
    The ADSALA workflow itself: feature engineering, data gathering,
    installation-time training/model selection, the runtime library.
``repro.engine``
    The multi-backend execution engine: the ``ExecutionBackend``
    protocol and its adapters, the LRU ``PredictionCache``, and the
    batch-predicting ``GemmService`` request layer.
``repro.compile``
    Compiled inference plans: fitted pipeline + model lowered into
    fused array kernels (fused preprocessing transform, packed tree
    ensembles, affine models) with bitwise-identical predictions.
``repro.serve``
    The async serving subsystem: ``GemmServer`` with dynamic
    micro-batching, admission control (backpressure + overload
    rejection + fair share), multi-tenant shard routing and
    zero-downtime bundle hot-reload.
``repro.train``
    The staged training pipeline: resumable content-addressed stages,
    parallel hyper-parameter tuning (bitwise-identical to serial), the
    versioned ``ModelRegistry`` and the routine x machine
    ``TrainingMatrix``.
``repro.bench``
    Harness utilities for regenerating the paper's tables and figures.
"""

from repro.compile import CompiledPlan, compile_plan
from repro.core.config import AdsalaConfig
from repro.core.library import AdsalaGemm, AdsalaRuntime
from repro.core.routines import build_spec, get_routine, routine_names
from repro.core.training import InstallationWorkflow, TrainedBundle
from repro.engine import GemmService, PredictionCache
from repro.gemm.interface import GemmSpec
from repro.machine.presets import by_name as machine_by_name
from repro.machine.simulator import MachineSimulator
from repro.serve import GemmServer, ServerOverloaded
from repro.train import ModelRegistry, TrainingMatrix, TrainingPipeline

__version__ = "1.5.0"

__all__ = [
    "AdsalaConfig",
    "AdsalaGemm",
    "AdsalaRuntime",
    "CompiledPlan",
    "compile_plan",
    "GemmServer",
    "GemmService",
    "InstallationWorkflow",
    "ModelRegistry",
    "PredictionCache",
    "ServerOverloaded",
    "TrainedBundle",
    "TrainingMatrix",
    "TrainingPipeline",
    "GemmSpec",
    "MachineSimulator",
    "build_spec",
    "get_routine",
    "machine_by_name",
    "quick_install",
    "routine_names",
    "__version__",
]


def quick_install(machine: str = "gadi", n_shapes: int = 120,
                  memory_cap_mb: int = 100, seed: int = 0, **workflow_kwargs):
    """One-call ADSALA installation on a simulated platform.

    Returns ``(bundle, simulator)``: the trained installation artefacts
    and the machine they were trained for.  Keyword arguments are passed
    through to :class:`repro.core.training.InstallationWorkflow`.
    """
    simulator = MachineSimulator(machine_by_name(machine), seed=seed)
    workflow = InstallationWorkflow(
        simulator, memory_cap_bytes=memory_cap_mb * 1024 * 1024,
        n_shapes=n_shapes, seed=seed, **workflow_kwargs)
    return workflow.run(), simulator
