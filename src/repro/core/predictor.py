"""Runtime thread-count prediction (paper Fig. 3 / Section IV-A).

For a GEMM shape the predictor builds the Table II features for *every*
candidate thread count, pushes the batch through the fitted
preprocessing pipeline and the regression model, and returns the thread
count with the smallest predicted runtime — "the regression ML model
outputs the runtime of GEMM rather than the number of threads".

The paper's memoisation is implemented too: "the software is designed to
remember the last GEMM input and ML predictions; if the current GEMM
matrix dimensions are the same as the previous, the software will read
and apply the predictions ... without re-evaluation."
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.features import FeatureBuilder


class ThreadPredictor:
    """Fitted model + pipeline + thread grid = runtime thread oracle.

    Parameters
    ----------
    feature_builder / pipeline / model:
        Installation artefacts.  ``pipeline`` may be None (ablations).
    thread_grid:
        Candidate thread counts, ascending.
    """

    def __init__(self, feature_builder: FeatureBuilder, pipeline, model,
                 thread_grid):
        self.feature_builder = feature_builder
        self.pipeline = pipeline
        self.model = model
        self.thread_grid = np.asarray(sorted(set(int(t) for t in thread_grid)),
                                      dtype=np.int64)
        if self.thread_grid.size == 0:
            raise ValueError("thread_grid must be non-empty")
        if (self.thread_grid < 1).any():
            raise ValueError("thread counts must be >= 1")
        self._memo_key = None
        self._memo_value = None
        self.n_evaluations = 0
        self.n_memo_hits = 0

    # ------------------------------------------------------------------
    def predicted_runtimes(self, m: int, k: int, n: int) -> np.ndarray:
        """Model scores per candidate thread count (transformed label units)."""
        X = self.feature_builder.build_for_grid(m, k, n, self.thread_grid)
        if self.pipeline is not None:
            X = self.pipeline.transform(X)
        return np.asarray(self.model.predict(X), dtype=np.float64)

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """Optimal thread count for the shape, with last-call memoisation.

        Any monotone label transform leaves the argmin unchanged, so the
        raw model output is compared directly.
        """
        key = (int(m), int(k), int(n))
        if key == self._memo_key:
            self.n_memo_hits += 1
            return self._memo_value
        scores = self.predicted_runtimes(m, k, n)
        self.n_evaluations += 1
        choice = int(self.thread_grid[int(np.argmin(scores))])
        self._memo_key = key
        self._memo_value = choice
        return choice

    def invalidate_memo(self) -> None:
        self._memo_key = None
        self._memo_value = None

    # ------------------------------------------------------------------
    def measure_eval_time(self, shapes=None, repeats: int = 20) -> float:
        """Average wall-clock seconds of one full prediction.

        The paper measures each tuned model's evaluation time by
        averaging multiple runs on the target machine (Section IV-D);
        this is the genuine Python cost on *this* machine, which is what
        the speedup estimate ``s = t_orig / (t_ADSALA + t_eval)`` needs.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        shapes = shapes or [(512, 512, 512)]
        # Warm-up pass (amortised allocations, code paths).
        for m, k, n in shapes:
            self.predicted_runtimes(m, k, n)
        t0 = time.perf_counter()
        for _ in range(repeats):
            for m, k, n in shapes:
                self.predicted_runtimes(m, k, n)
        elapsed = time.perf_counter() - t0
        return elapsed / (repeats * len(shapes))
