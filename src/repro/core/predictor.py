"""Runtime thread-count prediction (paper Fig. 3 / Section IV-A).

For a GEMM shape the predictor builds the Table II features for *every*
candidate thread count, pushes the batch through the fitted
preprocessing pipeline and the regression model, and returns the thread
count with the smallest predicted runtime — "the regression ML model
outputs the runtime of GEMM rather than the number of threads".

Two serving-oriented generalisations sit on top of the paper's design:

* the single-shape memo ("the software is designed to remember the last
  GEMM input and ML predictions") is now a pluggable
  :class:`~repro.engine.cache.PredictionCache`; the default
  ``cache_size=1`` reproduces the paper exactly, while the engine's
  :class:`~repro.engine.service.GemmService` installs a larger LRU;
* :meth:`predict_threads_batch` answers many shapes with **one**
  pipeline/model pass over a ``(n_shapes * |grid|)``-row feature
  matrix, which amortises the per-call Python overhead that dominates
  single-shape prediction;
* a :class:`~repro.compile.plan.CompiledPlan` (built at bundle save
  time, or via :meth:`ThreadPredictor.compile`) replaces the object
  pipeline/model walk with fused array kernels — bitwise-identical
  scores, so thread choices cannot change, only their cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.features import FeatureBuilder
from repro.engine.cache import PredictionCache, shape_key


class ThreadPredictor:
    """Fitted model + pipeline + thread grid = runtime thread oracle.

    Parameters
    ----------
    feature_builder / pipeline / model:
        Installation artefacts.  ``pipeline`` may be None (ablations).
    thread_grid:
        Candidate thread counts, ascending.
    cache:
        A :class:`PredictionCache` to serve repeat shapes from; built
        from ``cache_size`` when omitted.
    cache_size:
        Size of the default cache.  1 (the default) matches the paper's
        last-call memo semantics.
    plan:
        An optional :class:`~repro.compile.plan.CompiledPlan` for the
        same artefacts; when present, evaluation routes through its
        fused kernels (falling back per half where the plan records a
        fallback).  :meth:`compile` builds one in place.
    routine:
        The routine these artefacts were trained for ("gemm", "gemv",
        ...).  Cache entries are keyed ``(routine, m, k, n)`` so two
        predictors sharing one :class:`PredictionCache` — or any
        mixed-routine table built on :meth:`cache_key` — can never
        serve a GEMV shape from a GEMM entry.
    """

    def __init__(self, feature_builder: FeatureBuilder, pipeline, model,
                 thread_grid, cache: PredictionCache = None,
                 cache_size: int = 1, plan=None, routine: str = "gemm"):
        self.feature_builder = feature_builder
        self.pipeline = pipeline
        self.model = model
        self.plan = plan
        self.routine = str(routine)
        self.thread_grid = np.asarray(sorted(set(int(t) for t in thread_grid)),
                                      dtype=np.int64)
        if self.thread_grid.size == 0:
            raise ValueError("thread_grid must be non-empty")
        if (self.thread_grid < 1).any():
            raise ValueError("thread counts must be >= 1")
        self.cache = cache if cache is not None else PredictionCache(cache_size)
        self.n_evaluations = 0
        self.n_batch_evaluations = 0
        self.n_model_passes = 0

    @property
    def n_memo_hits(self) -> int:
        """Lifetime predictions answered from the cache."""
        return self.cache.hits

    @property
    def compiled(self) -> bool:
        """Whether evaluation routes through a compiled plan."""
        return self.plan is not None

    def compile(self) -> "ThreadPredictor":
        """Lower this predictor's own artefacts into a plan; returns self."""
        from repro.compile import compile_plan

        self.plan = compile_plan(self.pipeline, self.model)
        return self

    def _evaluate(self, X: np.ndarray) -> np.ndarray:
        """One pipeline+model pass, through the plan when one is set.

        The feature builder's output is float64 and finite by
        construction, so the fused path skips re-validation; lowered
        halves are bitwise identical to the objects they replace.
        """
        plan = self.plan
        if plan is None:
            if self.pipeline is not None:
                X = self.pipeline.transform(X)
            return np.asarray(self.model.predict(X), dtype=np.float64)
        if plan.transform is not None:
            Z = plan.transform.apply(X, check_input=False)
        elif plan.transform_fallback and self.pipeline is not None:
            Z = self.pipeline.transform(X)
        else:
            Z = X
        if plan.model is not None:
            return np.asarray(plan.model.predict(Z), dtype=np.float64)
        return np.asarray(self.model.predict(Z), dtype=np.float64)

    # ------------------------------------------------------------------
    def predicted_runtimes(self, m: int, k: int, n: int) -> np.ndarray:
        """Model scores per candidate thread count (transformed label units)."""
        X = self.feature_builder.build_for_grid(m, k, n, self.thread_grid)
        return self._evaluate(X)

    def predicted_runtimes_batch(self, shapes) -> np.ndarray:
        """Scores for many shapes in one pass, shaped ``(n_shapes, |grid|)``.

        Row ``i`` is exactly what :meth:`predicted_runtimes` returns for
        ``shapes[i]``: every pipeline stage and every registered model
        transforms row-wise, so batching cannot change any score.
        """
        X = self.feature_builder.build_for_batch(shapes, self.thread_grid)
        scores = self._evaluate(X)
        return scores.reshape(-1, self.thread_grid.size)

    # ------------------------------------------------------------------
    _key = staticmethod(shape_key)

    def cache_key(self, shape) -> tuple:
        """The routine-qualified key a shape caches under:
        ``(routine, m, k, n)``."""
        return (self.routine,) + shape_key(shape)

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """Optimal thread count for the shape, cache-backed.

        Any monotone label transform leaves the argmin unchanged, so the
        raw model output is compared directly.
        """
        key = (self.routine, int(m), int(k), int(n))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        scores = self.predicted_runtimes(m, k, n)
        self.n_evaluations += 1
        self.n_model_passes += 1
        choice = int(self.thread_grid[int(np.argmin(scores))])
        self.cache.put(key, choice)
        return choice

    def predict_threads_batch(self, shapes) -> np.ndarray:
        """Thread choices for a stream of shapes, one model pass for misses.

        ``shapes`` is a sequence of ``(m, k, n)`` triples (or objects
        with a ``dims`` attribute).  Unique uncached shapes are pushed
        through the pipeline/model in a single vectorised evaluation;
        duplicate and cached shapes cost a dictionary lookup.  Choices
        come back as an int64 array aligned with the input order and are
        bitwise-identical to calling :meth:`predict_threads` per shape.
        """
        keys = [self.cache_key(s) for s in shapes]
        resolved = {}
        misses = []
        for key in dict.fromkeys(keys):  # unique keys, first-seen order
            cached = self.cache.get(key)
            if cached is None:
                misses.append(key)
            else:
                resolved[key] = cached
        if misses:
            scores = self.predicted_runtimes_batch([k[1:] for k in misses])
            self.n_evaluations += len(misses)
            self.n_batch_evaluations += 1
            self.n_model_passes += 1
            for key, row in zip(misses, np.argmin(scores, axis=1)):
                choice = int(self.thread_grid[int(row)])
                self.cache.put(key, choice)
                resolved[key] = choice
        return np.asarray([resolved[key] for key in keys], dtype=np.int64)

    def invalidate_memo(self) -> None:
        """Drop every cached prediction (e.g. after the machine changes)."""
        self.cache.invalidate()

    # ------------------------------------------------------------------
    def measure_eval_time(self, shapes=None, repeats: int = 20,
                          batch_size: int = 1) -> float:
        """Average wall-clock seconds of one full prediction.

        The paper measures each tuned model's evaluation time by
        averaging multiple runs on the target machine (Section IV-D);
        this is the genuine Python cost on *this* machine, which is what
        the speedup estimate ``s = t_orig / (t_ADSALA + t_eval)`` needs.
        With ``batch_size > 1`` the cost is measured through the
        vectorised path and reported per shape (amortised).
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        shapes = list(shapes or [(512, 512, 512)])
        if batch_size > 1:
            # Tile distinct shapes to the batch size (cache is bypassed:
            # this measures evaluation, not lookup).
            batch = [(m + i, k, n) for i, (m, k, n)
                     in enumerate(shapes * (batch_size // len(shapes) + 1))]
            batch = batch[:batch_size]
            self.predicted_runtimes_batch(batch)  # warm-up
            t0 = time.perf_counter()
            for _ in range(repeats):
                self.predicted_runtimes_batch(batch)
            elapsed = time.perf_counter() - t0
            return elapsed / (repeats * batch_size)
        # Warm-up pass (amortised allocations, code paths).
        for m, k, n in shapes:
            self.predicted_runtimes(m, k, n)
        t0 = time.perf_counter()
        for _ in range(repeats):
            for m, k, n in shapes:
                self.predicted_runtimes(m, k, n)
        elapsed = time.perf_counter() - t0
        return elapsed / (repeats * len(shapes))
