"""Runtime thread-count prediction (paper Fig. 3 / Section IV-A).

For a GEMM shape the predictor builds the Table II features for *every*
candidate thread count, pushes the batch through the fitted
preprocessing pipeline and the regression model, and returns the thread
count with the smallest predicted runtime — "the regression ML model
outputs the runtime of GEMM rather than the number of threads".

Two serving-oriented generalisations sit on top of the paper's design:

* the single-shape memo ("the software is designed to remember the last
  GEMM input and ML predictions") is now a pluggable
  :class:`~repro.engine.cache.PredictionCache`; the default
  ``cache_size=1`` reproduces the paper exactly, while the engine's
  :class:`~repro.engine.service.GemmService` installs a larger LRU;
* :meth:`predict_threads_batch` answers many shapes with **one**
  pipeline/model pass over a ``(n_shapes * |grid|)``-row feature
  matrix, which amortises the per-call Python overhead that dominates
  single-shape prediction;
* a :class:`~repro.compile.plan.CompiledPlan` (built at bundle save
  time, or via :meth:`ThreadPredictor.compile`) replaces the object
  pipeline/model walk with fused array kernels — bitwise-identical
  scores, so thread choices cannot change, only their cost.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.core.features import FeatureBuilder
from repro.engine.cache import PredictionCache, shape_key

#: Default size of the per-predictor fallback-shape reservoir.
RESERVOIR_CAPACITY = 256


class ShapeReservoir:
    """Bounded uniform sample of observed shapes (Vitter's Algorithm R).

    The serving path records every table fallback here; the reservoir
    keeps a uniform random sample of *at most* ``capacity`` of them, in
    O(capacity) memory no matter how long the server runs.  The RNG is
    seeded, so the same miss stream always yields the same reservoir —
    lattice refinement driven from it is reproducible.
    """

    __slots__ = ("capacity", "seen", "_items", "_rng")

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seen = 0
        self._items = []
        self._rng = random.Random(seed)

    def add(self, shape) -> None:
        """Offer one ``(m, k, n)`` triple to the sample."""
        item = tuple(int(v) for v in shape)
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = self._rng.randrange(self.seen)
        if j < self.capacity:
            self._items[j] = item

    def shapes(self) -> list:
        """The current sample, as a list of ``(m, k, n)`` tuples."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class ThreadPredictor:
    """Fitted model + pipeline + thread grid = runtime thread oracle.

    Parameters
    ----------
    feature_builder / pipeline / model:
        Installation artefacts.  ``pipeline`` may be None (ablations).
    thread_grid:
        Candidate thread counts, ascending.
    cache:
        A :class:`PredictionCache` to serve repeat shapes from; built
        from ``cache_size`` when omitted.
    cache_size:
        Size of the default cache.  1 (the default) matches the paper's
        last-call memo semantics.
    plan:
        An optional :class:`~repro.compile.plan.CompiledPlan` for the
        same artefacts; when present, evaluation routes through its
        fused kernels (falling back per half where the plan records a
        fallback).  :meth:`compile` builds one in place.
    table:
        An optional :class:`~repro.compile.table.DecisionTable` built
        from the same artefacts — tier 0 of the prediction hierarchy.
        Cache misses probe the table first (no model pass at all);
        shapes off its lattice fall through to the plan/object path
        and are counted in ``n_table_fallbacks``.  The table must have
        been compiled for this routine **and** this exact thread grid —
        packed indices against any other grid would select infeasible
        thread counts, so a mismatch raises immediately.
    routine:
        The routine these artefacts were trained for ("gemm", "gemv",
        ...).  Cache entries are keyed ``(routine, m, k, n)`` so two
        predictors sharing one :class:`PredictionCache` — or any
        mixed-routine table built on :meth:`cache_key` — can never
        serve a GEMV shape from a GEMM entry.
    """

    def __init__(self, feature_builder: FeatureBuilder, pipeline, model,
                 thread_grid, cache: PredictionCache = None,
                 cache_size: int = 1, plan=None, table=None,
                 routine: str = "gemm"):
        self.feature_builder = feature_builder
        self.pipeline = pipeline
        self.model = model
        self.plan = plan
        self.routine = str(routine)
        self.thread_grid = np.asarray(sorted(set(int(t) for t in thread_grid)),
                                      dtype=np.int64)
        if self.thread_grid.size == 0:
            raise ValueError("thread_grid must be non-empty")
        if (self.thread_grid < 1).any():
            raise ValueError("thread counts must be >= 1")
        if table is not None:
            if table.routine != self.routine:
                raise ValueError(
                    f"decision table was compiled for routine "
                    f"{table.routine!r}, predictor serves {self.routine!r}")
            if not np.array_equal(table.thread_grid, self.thread_grid):
                raise ValueError(
                    f"decision table was compiled for thread grid "
                    f"{table.thread_grid.tolist()}, predictor uses "
                    f"{self.thread_grid.tolist()} — recompile the table "
                    f"for this grid")
        self.table = table
        self.cache = cache if cache is not None else PredictionCache(cache_size)
        self.n_evaluations = 0
        self.n_batch_evaluations = 0
        self.n_model_passes = 0
        self.n_table_hits = 0
        self.n_table_fallbacks = 0
        # Interpolated answers are a sub-count of n_table_hits: lookups
        # the table resolved *between* lattice points (plateau/nearest).
        self.n_table_interpolated = 0
        # Every table fallback deposits its shape here; the registry's
        # refine_table retrofit densifies the lattice where they cluster.
        self.fallback_shapes = ShapeReservoir()

    @property
    def n_memo_hits(self) -> int:
        """Lifetime predictions answered from the cache."""
        return self.cache.hits

    @property
    def compiled(self) -> bool:
        """Whether evaluation routes through a compiled plan."""
        return self.plan is not None

    @property
    def tabled(self) -> bool:
        """Whether a decision table fronts the model as tier 0."""
        return self.table is not None

    def compile(self) -> "ThreadPredictor":
        """Lower this predictor's own artefacts into a plan; returns self."""
        from repro.compile import compile_plan

        self.plan = compile_plan(self.pipeline, self.model)
        return self

    def _evaluate(self, X: np.ndarray) -> np.ndarray:
        """One pipeline+model pass, through the plan when one is set.

        The feature builder's output is float64 and finite by
        construction, so the fused path skips re-validation; lowered
        halves are bitwise identical to the objects they replace.
        """
        plan = self.plan
        if plan is None:
            if self.pipeline is not None:
                X = self.pipeline.transform(X)
            return np.asarray(self.model.predict(X), dtype=np.float64)
        if plan.transform is not None:
            Z = plan.transform.apply(X, check_input=False)
        elif plan.transform_fallback and self.pipeline is not None:
            Z = self.pipeline.transform(X)
        else:
            Z = X
        if plan.model is not None:
            return np.asarray(plan.model.predict(Z), dtype=np.float64)
        return np.asarray(self.model.predict(Z), dtype=np.float64)

    # ------------------------------------------------------------------
    def predicted_runtimes(self, m: int, k: int, n: int) -> np.ndarray:
        """Model scores per candidate thread count (transformed label units)."""
        X = self.feature_builder.build_for_grid(m, k, n, self.thread_grid)
        return self._evaluate(X)

    def predicted_runtimes_batch(self, shapes) -> np.ndarray:
        """Scores for many shapes in one pass, shaped ``(n_shapes, |grid|)``.

        Row ``i`` is exactly what :meth:`predicted_runtimes` returns for
        ``shapes[i]``: every pipeline stage and every registered model
        transforms row-wise, so batching cannot change any score.
        """
        X = self.feature_builder.build_for_batch(shapes, self.thread_grid)
        scores = self._evaluate(X)
        return scores.reshape(-1, self.thread_grid.size)

    # ------------------------------------------------------------------
    _key = staticmethod(shape_key)

    def cache_key(self, shape) -> tuple:
        """The routine-qualified key a shape caches under:
        ``(routine, m, k, n)``."""
        return (self.routine,) + shape_key(shape)

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """Optimal thread count for the shape, cache- and table-backed.

        Tier 0 after a cache miss is the decision table (no model
        pass); only off-lattice shapes reach the pipeline/model.  Any
        monotone label transform leaves the argmin unchanged, so the
        raw model output is compared directly.
        """
        key = (self.routine, int(m), int(k), int(n))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        if self.table is not None:
            choice, interpolated = self.table.lookup_ex(m, k, n)
            if choice is not None:
                self.n_table_hits += 1
                self.n_table_interpolated += int(interpolated)
                self.cache.put(key, choice)
                return choice
            self.n_table_fallbacks += 1
            self.fallback_shapes.add(key[1:])
        scores = self.predicted_runtimes(m, k, n)
        self.n_evaluations += 1
        self.n_model_passes += 1
        choice = int(self.thread_grid[int(np.argmin(scores))])
        self.cache.put(key, choice)
        return choice

    def predict_threads_batch(self, shapes) -> np.ndarray:
        """Thread choices for a stream of shapes, one model pass for misses.

        ``shapes`` is a sequence of ``(m, k, n)`` triples (or objects
        with a ``dims`` attribute).  Unique keys probe the cache in one
        :meth:`~repro.engine.cache.PredictionCache.get_many` pass; the
        remaining shapes resolve through the decision table in a single
        fancy-indexing lookup, and only the off-lattice leftovers are
        pushed through the pipeline/model in one vectorised evaluation.
        Choices come back as an int64 array aligned with the input
        order and are bitwise-identical to calling
        :meth:`predict_threads` per shape.
        """
        keys = [self.cache_key(s) for s in shapes]
        unique = list(dict.fromkeys(keys))  # unique keys, first-seen order
        resolved = self.cache.get_many(unique)
        misses = [key for key in unique if key not in resolved]
        if misses and self.table is not None:
            choices, hit, interpolated = self.table.lookup_batch_ex(
                [k[1:] for k in misses])
            self.n_table_hits += int(hit.sum())
            self.n_table_interpolated += int(interpolated.sum())
            self.n_table_fallbacks += len(misses) - int(hit.sum())
            served = {key: int(choice)
                      for key, choice, ok in zip(misses, choices, hit) if ok}
            self.cache.put_many(served)
            resolved.update(served)
            for key, ok in zip(misses, hit):
                if not ok:
                    self.fallback_shapes.add(key[1:])
            misses = [key for key in misses if key not in served]
        if misses:
            scores = self.predicted_runtimes_batch([k[1:] for k in misses])
            self.n_evaluations += len(misses)
            self.n_batch_evaluations += 1
            self.n_model_passes += 1
            served = {}
            for key, row in zip(misses, np.argmin(scores, axis=1)):
                served[key] = int(self.thread_grid[int(row)])
            self.cache.put_many(served)
            resolved.update(served)
        return np.asarray([resolved[key] for key in keys], dtype=np.int64)

    def invalidate_memo(self) -> None:
        """Drop every cached prediction (e.g. after the machine changes)."""
        self.cache.invalidate()

    # ------------------------------------------------------------------
    def measure_eval_time(self, shapes=None, repeats: int = 20,
                          batch_size: int = 1) -> float:
        """Average wall-clock seconds of one full prediction.

        The paper measures each tuned model's evaluation time by
        averaging multiple runs on the target machine (Section IV-D);
        this is the genuine Python cost on *this* machine, which is what
        the speedup estimate ``s = t_orig / (t_ADSALA + t_eval)`` needs.
        With ``batch_size > 1`` the cost is measured through the
        vectorised path and reported per shape (amortised).
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        shapes = list(shapes or [(512, 512, 512)])
        if batch_size > 1:
            # Tile distinct shapes to the batch size (cache is bypassed:
            # this measures evaluation, not lookup).
            batch = [(m + i, k, n) for i, (m, k, n)
                     in enumerate(shapes * (batch_size // len(shapes) + 1))]
            batch = batch[:batch_size]
            self.predicted_runtimes_batch(batch)  # warm-up
            t0 = time.perf_counter()
            for _ in range(repeats):
                self.predicted_runtimes_batch(batch)
            elapsed = time.perf_counter() - t0
            return elapsed / (repeats * batch_size)
        # Warm-up pass (amortised allocations, code paths).
        for m, k, n in shapes:
            self.predicted_runtimes(m, k, n)
        t0 = time.perf_counter()
        for _ in range(repeats):
            for m, k, n in shapes:
                self.predicted_runtimes(m, k, n)
        elapsed = time.perf_counter() - t0
        return elapsed / (repeats * len(shapes))
