"""Online refinement of thread choices at runtime.

The paper contrasts its offline-trained approach with the *online*
thread auto-tuning of Luan et al. [28] and notes the two are
complementary: the ML model gives a strong prior instantly, and runtime
measurements can correct it where it errs.  :class:`OnlineRefiner`
implements that hybrid:

- every shape starts from the model's prediction;
- with probability ``explore_prob`` (and always for the first
  ``min_trials`` calls of a shape) a *neighbouring* thread count on the
  grid is tried instead;
- measured runtimes accumulate per (shape, thread count); once a
  neighbour has proven reliably faster, it becomes the shape's choice.

Exploration only perturbs to adjacent grid entries, so the cost of a bad
probe is bounded, and a shape's steady-state choice converges to the
locally optimal grid point even when the model was wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _ShapeState:
    """Per-shape measurement history."""

    model_choice: int
    calls: int = 0
    # thread count -> (sum of runtimes, count)
    stats: dict = field(default_factory=dict)

    def record(self, threads: int, runtime: float) -> None:
        total, count = self.stats.get(threads, (0.0, 0))
        self.stats[threads] = (total + runtime, count + 1)
        self.calls += 1

    def mean(self, threads: int) -> float:
        total, count = self.stats.get(threads, (0.0, 0))
        return total / count if count else np.inf

    def count(self, threads: int) -> int:
        return self.stats.get(threads, (0.0, 0))[1]


class OnlineRefiner:
    """Epsilon-greedy local refinement on top of a ThreadPredictor.

    Measurement statistics key on ``(routine, m, k, n)``: a GEMV
    ``(m, k)`` problem and a GEMM ``(m, k, 1)`` shape share a feature
    triple but not a runtime distribution, so mixed-routine feedback
    must never pool.  The historic GEMM-only API (``routine`` omitted)
    is unchanged.

    Parameters
    ----------
    predictor:
        The trained :class:`~repro.core.predictor.ThreadPredictor` for
        the default routine.  Further routines' predictors join via
        :meth:`register_predictor` so each routine's prior comes from
        its own model.
    explore_prob:
        Probability of probing a neighbouring grid entry once the
        minimum trials are done.
    min_trials:
        Measurements required for a thread count before it can be
        trusted as the steady-state choice.
    seed:
        RNG seed for exploration decisions.
    """

    def __init__(self, predictor, explore_prob: float = 0.1,
                 min_trials: int = 2, seed: int = 0):
        if not 0.0 <= explore_prob < 1.0:
            raise ValueError("explore_prob must be in [0, 1)")
        if min_trials < 1:
            raise ValueError("min_trials must be >= 1")
        self.predictor = predictor
        self.routine = getattr(predictor, "routine", "gemm")
        self.predictors = {self.routine: predictor}
        self.grid = np.asarray(predictor.thread_grid)
        self.explore_prob = float(explore_prob)
        self.min_trials = int(min_trials)
        self._rng = np.random.default_rng(seed)
        self._shapes = {}
        self.n_explorations = 0

    # ------------------------------------------------------------------
    def register_predictor(self, routine: str, predictor) -> "OnlineRefiner":
        """Serve ``routine``'s priors from its own predictor.

        Replacing a routine's predictor (hot-reload) drops that
        routine's accumulated measurements — they were taken under the
        retired model's choices — and leaves every other routine's
        statistics untouched.  Returns self.
        """
        if self.predictors.get(routine) is not predictor:
            self._shapes = {key: state for key, state in self._shapes.items()
                            if key[0] != routine}
        self.predictors[routine] = predictor
        return self

    def _predictor_for(self, routine: str):
        chosen = self.predictors.get(routine)
        return chosen if chosen is not None else self.predictor

    def _state_for(self, m: int, k: int, n: int,
                   routine: str = None) -> _ShapeState:
        routine = routine or self.routine
        key = (routine, int(m), int(k), int(n))
        if key not in self._shapes:
            self._shapes[key] = _ShapeState(
                model_choice=self._predictor_for(routine)
                .predict_threads(m, k, n))
        return self._shapes[key]

    def _neighbours(self, threads: int, routine: str = None) -> list:
        grid = np.asarray(self._predictor_for(routine or self.routine)
                          .thread_grid)
        idx = int(np.argmin(np.abs(grid - threads)))
        return [int(grid[j]) for j in (idx - 1, idx + 1)
                if 0 <= j < grid.size]

    def _best_known(self, state: _ShapeState) -> int:
        """Best sufficiently-measured thread count, else the model's."""
        candidates = [(t, state.mean(t)) for t in state.stats
                      if state.count(t) >= self.min_trials]
        if not candidates:
            return state.model_choice
        return min(candidates, key=lambda tc: tc[1])[0]

    def choose_threads(self, m: int, k: int, n: int,
                       routine: str = None) -> int:
        """The thread count to use for the next call of this shape."""
        state = self._state_for(m, k, n, routine=routine)
        base = self._best_known(state)
        # Prioritise establishing the baseline measurements.
        if state.count(base) < self.min_trials:
            return base
        under_explored = [t for t in self._neighbours(base, routine=routine)
                          if state.count(t) < self.min_trials]
        if under_explored and self._rng.random() < max(self.explore_prob, 0.5):
            self.n_explorations += 1
            return under_explored[0]
        if self._rng.random() < self.explore_prob:
            neighbours = self._neighbours(base, routine=routine)
            if neighbours:
                self.n_explorations += 1
                return int(self._rng.choice(neighbours))
        return base

    def record(self, m: int, k: int, n: int, threads: int, runtime: float,
               routine: str = None) -> None:
        """Feed back a measured runtime for the executed call."""
        if runtime <= 0:
            raise ValueError("runtime must be positive")
        self._state_for(m, k, n, routine=routine).record(int(threads),
                                                         float(runtime))

    def run(self, spec, machine, repeats: int = 1):
        """Choose, execute on ``machine`` and record in one step."""
        routine = getattr(spec, "routine", None)
        m, k, n = spec.dims
        threads = self.choose_threads(m, k, n, routine=routine)
        runtime = machine.timed_run(spec, threads, repeats=repeats)
        self.record(m, k, n, threads, runtime, routine=routine)
        return threads, runtime

    def steady_choice(self, m: int, k: int, n: int,
                      routine: str = None) -> int:
        """Current exploitation choice (no exploration)."""
        return self._best_known(self._state_for(m, k, n, routine=routine))

    def drift_statistic(self) -> dict:
        """How far measurement has moved choices away from the model.

        A shape has *drifted* when its measured-best thread count (a
        candidate with at least ``min_trials`` observations,
        :meth:`_best_known`) differs from the model's prior choice; a
        shape without sufficient evidence counts as undrifted.  The
        ``drift_fraction`` over all tracked shapes is the retrain
        trigger ROADMAP item 2 names: a deployed model whose priors are
        systematically overturned by local measurement no longer fits
        the machine.
        """
        shapes = len(self._shapes)
        drifted = sum(self._best_known(state) != state.model_choice
                      for state in self._shapes.values())
        return {"shapes": shapes, "drifted": drifted,
                "drift_fraction": drifted / shapes if shapes else 0.0}
