"""Online refinement of thread choices at runtime.

The paper contrasts its offline-trained approach with the *online*
thread auto-tuning of Luan et al. [28] and notes the two are
complementary: the ML model gives a strong prior instantly, and runtime
measurements can correct it where it errs.  :class:`OnlineRefiner`
implements that hybrid:

- every shape starts from the model's prediction;
- with probability ``explore_prob`` (and always for the first
  ``min_trials`` calls of a shape) a *neighbouring* thread count on the
  grid is tried instead;
- measured runtimes accumulate per (shape, thread count); once a
  neighbour has proven reliably faster, it becomes the shape's choice.

Exploration only perturbs to adjacent grid entries, so the cost of a bad
probe is bounded, and a shape's steady-state choice converges to the
locally optimal grid point even when the model was wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _ShapeState:
    """Per-shape measurement history."""

    model_choice: int
    calls: int = 0
    # thread count -> (sum of runtimes, count)
    stats: dict = field(default_factory=dict)

    def record(self, threads: int, runtime: float) -> None:
        total, count = self.stats.get(threads, (0.0, 0))
        self.stats[threads] = (total + runtime, count + 1)
        self.calls += 1

    def mean(self, threads: int) -> float:
        total, count = self.stats.get(threads, (0.0, 0))
        return total / count if count else np.inf

    def count(self, threads: int) -> int:
        return self.stats.get(threads, (0.0, 0))[1]


class OnlineRefiner:
    """Epsilon-greedy local refinement on top of a ThreadPredictor.

    Parameters
    ----------
    predictor:
        The trained :class:`~repro.core.predictor.ThreadPredictor`.
    explore_prob:
        Probability of probing a neighbouring grid entry once the
        minimum trials are done.
    min_trials:
        Measurements required for a thread count before it can be
        trusted as the steady-state choice.
    seed:
        RNG seed for exploration decisions.
    """

    def __init__(self, predictor, explore_prob: float = 0.1,
                 min_trials: int = 2, seed: int = 0):
        if not 0.0 <= explore_prob < 1.0:
            raise ValueError("explore_prob must be in [0, 1)")
        if min_trials < 1:
            raise ValueError("min_trials must be >= 1")
        self.predictor = predictor
        self.grid = np.asarray(predictor.thread_grid)
        self.explore_prob = float(explore_prob)
        self.min_trials = int(min_trials)
        self._rng = np.random.default_rng(seed)
        self._shapes = {}
        self.n_explorations = 0

    # ------------------------------------------------------------------
    def _state_for(self, m: int, k: int, n: int) -> _ShapeState:
        key = (int(m), int(k), int(n))
        if key not in self._shapes:
            self._shapes[key] = _ShapeState(
                model_choice=self.predictor.predict_threads(m, k, n))
        return self._shapes[key]

    def _neighbours(self, threads: int) -> list:
        idx = int(np.argmin(np.abs(self.grid - threads)))
        return [int(self.grid[j]) for j in (idx - 1, idx + 1)
                if 0 <= j < self.grid.size]

    def _best_known(self, state: _ShapeState) -> int:
        """Best sufficiently-measured thread count, else the model's."""
        candidates = [(t, state.mean(t)) for t in state.stats
                      if state.count(t) >= self.min_trials]
        if not candidates:
            return state.model_choice
        return min(candidates, key=lambda tc: tc[1])[0]

    def choose_threads(self, m: int, k: int, n: int) -> int:
        """The thread count to use for the next call of this shape."""
        state = self._state_for(m, k, n)
        base = self._best_known(state)
        # Prioritise establishing the baseline measurements.
        if state.count(base) < self.min_trials:
            return base
        under_explored = [t for t in self._neighbours(base)
                          if state.count(t) < self.min_trials]
        if under_explored and self._rng.random() < max(self.explore_prob, 0.5):
            self.n_explorations += 1
            return under_explored[0]
        if self._rng.random() < self.explore_prob:
            neighbours = self._neighbours(base)
            if neighbours:
                self.n_explorations += 1
                return int(self._rng.choice(neighbours))
        return base

    def record(self, m: int, k: int, n: int, threads: int, runtime: float) -> None:
        """Feed back a measured runtime for the executed call."""
        if runtime <= 0:
            raise ValueError("runtime must be positive")
        self._state_for(m, k, n).record(int(threads), float(runtime))

    def run(self, spec, machine, repeats: int = 1):
        """Choose, execute on ``machine`` and record in one step."""
        threads = self.choose_threads(spec.m, spec.k, spec.n)
        runtime = machine.timed_run(spec, threads, repeats=repeats)
        self.record(spec.m, spec.k, spec.n, threads, runtime)
        return threads, runtime

    def steady_choice(self, m: int, k: int, n: int) -> int:
        """Current exploitation choice (no exploration)."""
        return self._best_known(self._state_for(m, k, n))
