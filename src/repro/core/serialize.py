"""Persistence of the installation artefacts.

A trained bundle is the pair the paper's Fig. 2 outputs: the config
(JSON, human-readable) plus the fitted preprocessing pipeline and model
(pickle — the models are plain numpy-holding Python objects, and pickle
is the appropriate tool for same-trust-domain persistence, exactly as
scikit-learn recommends for its own estimators).

Since the model registry arrived, every bundle directory also carries a
``MANIFEST.json`` recording the serialization **schema version** and a
**SHA-256 checksum per artefact file**, so a corrupted, truncated or
tampered pickle fails loudly at load time (:class:`BundleIntegrityError`
with a clear message, never a bare pickle traceback) and a bundle
written by an incompatible future schema is refused
(:class:`BundleSchemaError`).  Pre-manifest directories — everything
installed before the registry existed — still load through the legacy
path unchanged.

Schema 2 adds an optional third artefact, ``adsala_plan.pkl``: the
bundle's :class:`~repro.compile.plan.CompiledPlan` (fused transform +
packed model arrays), built at save time and checksummed like the other
files.  Schema-1 (pre-plan) bundles still load — they simply carry no
plan and the serving layers compile one lazily.

Schema 3 adds a fourth optional artefact, ``adsala_table.pkl``: the
bundle's :class:`~repro.compile.table.DecisionTable` (the plan
pre-evaluated over the campaign's shape lattice).  Tables are strictly
opt-in — :func:`save_bundle` persists one only when the bundle already
carries it (built via ``TrainedBundle.compile_table`` or the registry's
``compile_table`` retrofit); schema-1 and schema-2 bundles load and
serve exactly as before, just without the tier-0 lookup.  A table's
manifest entry is its ``describe()`` summary, which for
traffic-refined tables (the registry's ``refine_table`` retrofit)
carries the refinement provenance: ``source="refined"``, the
``generation`` counter and the version the lattice was densified from.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

from repro.core.config import AdsalaConfig

CONFIG_FILENAME = "adsala_config.json"
MODEL_FILENAME = "adsala_model.pkl"
PLAN_FILENAME = "adsala_plan.pkl"
TABLE_FILENAME = "adsala_table.pkl"
MANIFEST_FILENAME = "MANIFEST.json"

#: Bump on any incompatible change to the artefact layout or pickle
#: payload structure.  Loaders accept :data:`SUPPORTED_SCHEMAS` and
#: refuse anything else (notably future majors).
SCHEMA_VERSION = 3

#: Schemas this build can read: 1 (config + model), 2 (adds the
#: optional compiled-plan artefact) and 3 (adds the optional
#: decision-table artefact).
SUPPORTED_SCHEMAS = (1, 2, 3)


class BundleError(RuntimeError):
    """Base class for artefact persistence failures."""


class BundleSchemaError(BundleError):
    """The bundle was written by an incompatible serialization schema."""


class BundleIntegrityError(BundleError):
    """A bundle artefact is corrupt, truncated or does not match its
    recorded checksum."""


def _sha256_file(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _combine_digests(file_digests: dict) -> str:
    """Bundle identity from the per-file SHA-256 digests.

    Iterates filenames in sorted order, which for pre-plan bundles is
    exactly the historic (config, model) order — schema-1 checksums are
    unchanged.
    """
    digest = hashlib.sha256()
    for name in sorted(file_digests):
        digest.update(name.encode("utf-8"))
        digest.update(bytes.fromhex(file_digests[name]))
    return digest.hexdigest()


def _artifact_names(directory) -> list:
    """The artefact files a bundle directory carries (plan and table
    are optional)."""
    names = [CONFIG_FILENAME, MODEL_FILENAME]
    for optional in (PLAN_FILENAME, TABLE_FILENAME):
        if os.path.exists(os.path.join(directory, optional)):
            names.append(optional)
    return names


def bundle_checksum(directory) -> str:
    """Combined SHA-256 over the artefact files present.

    Content-derived only (config JSON bytes + pickle bytes), so two
    installations that produced identical artefacts have identical
    checksums wherever and whenever they were written.  This is the
    identity the model registry stores and the resume tests compare.
    """
    return _combine_digests(
        {name: _sha256_file(os.path.join(directory, name))
         for name in _artifact_names(directory)})


def save_bundle(bundle, directory, extra_manifest: dict = None) -> dict:
    """Write ``bundle`` (a :class:`~repro.core.training.TrainedBundle`).

    Creates ``adsala_config.json``, ``adsala_model.pkl``, the compiled
    plan ``adsala_plan.pkl`` (when the artefacts lower to one — plan
    compilation is pure array packing, cheap and deterministic), the
    decision table ``adsala_table.pkl`` (only when the bundle already
    carries one: table compilation re-evaluates the whole lattice, so
    it never happens implicitly here) and ``MANIFEST.json`` in
    ``directory`` (created if missing) and returns the manifest dict.
    ``extra_manifest`` entries (registry metadata: routine, machine,
    version...) are merged into the manifest.
    """
    os.makedirs(directory, exist_ok=True)
    bundle.config.save(os.path.join(directory, CONFIG_FILENAME))
    with open(os.path.join(directory, MODEL_FILENAME), "wb") as fh:
        pickle.dump({"pipeline": bundle.pipeline, "model": bundle.model,
                     "report": bundle.report}, fh)
    plan = bundle.compile() if hasattr(bundle, "compile") else None
    plan_path = os.path.join(directory, PLAN_FILENAME)
    plan_meta = None
    if plan is not None and plan.lowers_anything:
        with open(plan_path, "wb") as fh:
            pickle.dump({"plan": plan}, fh)
        plan_meta = plan.describe()
    elif os.path.exists(plan_path):  # stale plan from an earlier save
        os.remove(plan_path)
    table = getattr(bundle, "table", None)
    table_path = os.path.join(directory, TABLE_FILENAME)
    table_meta = None
    if table is not None:
        with open(table_path, "wb") as fh:
            pickle.dump({"table": table}, fh)
        table_meta = table.describe()
    elif os.path.exists(table_path):  # stale table from an earlier save
        os.remove(table_path)
    files = {name: _sha256_file(os.path.join(directory, name))
             for name in _artifact_names(directory)}
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "files": files,
        "checksum": _combine_digests(files),
        "model_name": bundle.config.model_name,
        "machine": bundle.config.machine,
    }
    if plan_meta is not None:
        manifest["plan"] = plan_meta
    if table_meta is not None:
        manifest["table"] = table_meta
    if extra_manifest:
        manifest.update(extra_manifest)
    manifest_path = os.path.join(directory, MANIFEST_FILENAME)
    tmp_path = manifest_path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    os.replace(tmp_path, manifest_path)  # atomic: never a torn manifest
    return manifest


def load_manifest(directory) -> dict:
    """The bundle's manifest, or ``None`` for a pre-registry bundle."""
    path = os.path.join(directory, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            return json.load(fh)
    except (ValueError, OSError) as exc:
        raise BundleIntegrityError(
            f"unreadable bundle manifest {path}: {exc}") from exc


def verify_bundle(directory, ignore=()) -> dict:
    """Validate schema version and artefact checksums; returns the manifest.

    Legacy directories (no manifest) pass with ``None`` — backward
    compatibility for bundles written before the registry existed.
    ``ignore`` names artefact files to skip (used when a rebuildable
    artefact — the compiled plan — is about to be rewritten anyway).
    """
    manifest = load_manifest(directory)
    if manifest is None:
        return None
    schema = manifest.get("schema_version")
    if schema not in SUPPORTED_SCHEMAS:
        raise BundleSchemaError(
            f"bundle at {directory} uses serialization schema {schema!r}; "
            f"this build reads schemas {SUPPORTED_SCHEMAS} — re-install or "
            f"re-publish the model with a matching version")
    for name, expected in manifest.get("files", {}).items():
        if name in ignore:
            continue
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise BundleIntegrityError(
                f"bundle artefact missing: {path} (recorded in manifest)")
        actual = _sha256_file(path)
        if actual != expected:
            raise BundleIntegrityError(
                f"bundle artefact {path} is corrupt: SHA-256 {actual[:12]}… "
                f"does not match the manifest's {expected[:12]}… — the file "
                f"was modified or truncated after installation")
    return manifest


def _load_optional_pickle(directory, filename, key, rebuild_hint):
    """Load an optional checksummed artefact (plan or table).

    Refuses a file the manifest does not cover — an unmanifested
    artefact would be unpickled with no checksum protecting it; never
    execute an unverified pickle.  Unpickling failures wrap in
    :class:`BundleIntegrityError` with the recovery command.
    """
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        return None
    manifest = load_manifest(directory)
    if manifest is not None and filename not in manifest.get("files", {}):
        raise BundleIntegrityError(
            f"bundle artefact {path} is not recorded in the bundle "
            f"manifest — the file was added after installation; remove "
            f"it, or re-run {rebuild_hint!r} to build a verified one")
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)[key]
    except Exception as exc:
        raise BundleIntegrityError(
            f"cannot unpickle bundle artefact {path}: {exc!r} — the "
            f"file is corrupt or was written by an incompatible build; "
            f"re-run {rebuild_hint!r} to rebuild it") from exc


def load_bundle(directory, verify: bool = True, load_plan: bool = True,
                load_table: bool = True):
    """Load a bundle saved by :func:`save_bundle`.

    With a manifest present the artefacts are checksum-verified first
    (``verify=False`` skips that, for tooling that only inspects);
    without one, the legacy load path applies.  Unpickling failures are
    wrapped in :class:`BundleIntegrityError` either way.  Compiled plan
    and decision-table artefacts, when present, are loaded onto the
    bundle; older bundles come back with ``plan``/``table`` ``None``
    (the plan compiles lazily, the table stays absent until a
    ``compile_table`` retrofit).  ``load_plan=False`` /
    ``load_table=False`` skip (and do not verify) the corresponding
    artefact — the recovery paths ``models --compile`` and
    ``models --compile-table`` use these to rebuild a corrupt or
    deleted artefact while still verifying the config and model.
    """
    from repro.core.training import TrainedBundle

    config_path = os.path.join(directory, CONFIG_FILENAME)
    model_path = os.path.join(directory, MODEL_FILENAME)
    for path in (config_path, model_path):
        if not os.path.exists(path):
            raise FileNotFoundError(f"missing installation artefact: {path}")
    if verify:
        ignore = ()
        if not load_plan:
            ignore += (PLAN_FILENAME,)
        if not load_table:
            ignore += (TABLE_FILENAME,)
        verify_bundle(directory, ignore=ignore)
    config = AdsalaConfig.load(config_path)
    try:
        with open(model_path, "rb") as fh:
            payload = pickle.load(fh)
        pipeline, model = payload["pipeline"], payload["model"]
    except BundleError:
        raise
    except Exception as exc:
        raise BundleIntegrityError(
            f"cannot unpickle bundle artefact {model_path}: {exc!r} — the "
            f"file is corrupt or was written by an incompatible build") \
            from exc
    plan = None
    if load_plan:
        plan = _load_optional_pickle(directory, PLAN_FILENAME, "plan",
                                     "models --compile")
    table = None
    if load_table:
        table = _load_optional_pickle(directory, TABLE_FILENAME, "table",
                                      "models --compile-table")
    return TrainedBundle(config=config, pipeline=pipeline,
                         model=model, report=payload.get("report"),
                         plan=plan, table=table)
