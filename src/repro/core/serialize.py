"""Persistence of the installation artefacts.

A trained bundle is the pair the paper's Fig. 2 outputs: the config
(JSON, human-readable) plus the fitted preprocessing pipeline and model
(pickle — the models are plain numpy-holding Python objects, and pickle
is the appropriate tool for same-trust-domain persistence, exactly as
scikit-learn recommends for its own estimators).
"""

from __future__ import annotations

import os
import pickle

from repro.core.config import AdsalaConfig

CONFIG_FILENAME = "adsala_config.json"
MODEL_FILENAME = "adsala_model.pkl"


def save_bundle(bundle, directory) -> None:
    """Write ``bundle`` (a :class:`~repro.core.training.TrainedBundle`).

    Creates ``adsala_config.json`` and ``adsala_model.pkl`` in
    ``directory`` (created if missing).
    """
    os.makedirs(directory, exist_ok=True)
    bundle.config.save(os.path.join(directory, CONFIG_FILENAME))
    with open(os.path.join(directory, MODEL_FILENAME), "wb") as fh:
        pickle.dump({"pipeline": bundle.pipeline, "model": bundle.model,
                     "report": bundle.report}, fh)


def load_bundle(directory):
    """Load a bundle saved by :func:`save_bundle`."""
    from repro.core.training import TrainedBundle

    config_path = os.path.join(directory, CONFIG_FILENAME)
    model_path = os.path.join(directory, MODEL_FILENAME)
    for path in (config_path, model_path):
        if not os.path.exists(path):
            raise FileNotFoundError(f"missing installation artefact: {path}")
    config = AdsalaConfig.load(config_path)
    with open(model_path, "rb") as fh:
        payload = pickle.load(fh)
    return TrainedBundle(config=config, pipeline=payload["pipeline"],
                         model=payload["model"], report=payload.get("report"))
