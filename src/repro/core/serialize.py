"""Persistence of the installation artefacts.

A trained bundle is the pair the paper's Fig. 2 outputs: the config
(JSON, human-readable) plus the fitted preprocessing pipeline and model
(pickle — the models are plain numpy-holding Python objects, and pickle
is the appropriate tool for same-trust-domain persistence, exactly as
scikit-learn recommends for its own estimators).

Since the model registry arrived, every bundle directory also carries a
``MANIFEST.json`` recording the serialization **schema version** and a
**SHA-256 checksum per artefact file**, so a corrupted, truncated or
tampered pickle fails loudly at load time (:class:`BundleIntegrityError`
with a clear message, never a bare pickle traceback) and a bundle
written by an incompatible future schema is refused
(:class:`BundleSchemaError`).  Pre-manifest directories — everything
installed before the registry existed — still load through the legacy
path unchanged.

Schema 2 adds an optional third artefact, ``adsala_plan.pkl``: the
bundle's :class:`~repro.compile.plan.CompiledPlan` (fused transform +
packed model arrays), built at save time and checksummed like the other
files.  Schema-1 (pre-plan) bundles still load — they simply carry no
plan and the serving layers compile one lazily.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

from repro.core.config import AdsalaConfig

CONFIG_FILENAME = "adsala_config.json"
MODEL_FILENAME = "adsala_model.pkl"
PLAN_FILENAME = "adsala_plan.pkl"
MANIFEST_FILENAME = "MANIFEST.json"

#: Bump on any incompatible change to the artefact layout or pickle
#: payload structure.  Loaders accept :data:`SUPPORTED_SCHEMAS` and
#: refuse anything else (notably future majors).
SCHEMA_VERSION = 2

#: Schemas this build can read: 1 (config + model) and 2 (adds the
#: optional compiled-plan artefact).
SUPPORTED_SCHEMAS = (1, 2)


class BundleError(RuntimeError):
    """Base class for artefact persistence failures."""


class BundleSchemaError(BundleError):
    """The bundle was written by an incompatible serialization schema."""


class BundleIntegrityError(BundleError):
    """A bundle artefact is corrupt, truncated or does not match its
    recorded checksum."""


def _sha256_file(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _combine_digests(file_digests: dict) -> str:
    """Bundle identity from the per-file SHA-256 digests.

    Iterates filenames in sorted order, which for pre-plan bundles is
    exactly the historic (config, model) order — schema-1 checksums are
    unchanged.
    """
    digest = hashlib.sha256()
    for name in sorted(file_digests):
        digest.update(name.encode("utf-8"))
        digest.update(bytes.fromhex(file_digests[name]))
    return digest.hexdigest()


def _artifact_names(directory) -> list:
    """The artefact files a bundle directory carries (plan is optional)."""
    names = [CONFIG_FILENAME, MODEL_FILENAME]
    if os.path.exists(os.path.join(directory, PLAN_FILENAME)):
        names.append(PLAN_FILENAME)
    return names


def bundle_checksum(directory) -> str:
    """Combined SHA-256 over the artefact files present.

    Content-derived only (config JSON bytes + pickle bytes), so two
    installations that produced identical artefacts have identical
    checksums wherever and whenever they were written.  This is the
    identity the model registry stores and the resume tests compare.
    """
    return _combine_digests(
        {name: _sha256_file(os.path.join(directory, name))
         for name in _artifact_names(directory)})


def save_bundle(bundle, directory, extra_manifest: dict = None) -> dict:
    """Write ``bundle`` (a :class:`~repro.core.training.TrainedBundle`).

    Creates ``adsala_config.json``, ``adsala_model.pkl``, the compiled
    plan ``adsala_plan.pkl`` (when the artefacts lower to one — plan
    compilation is pure array packing, cheap and deterministic) and
    ``MANIFEST.json`` in ``directory`` (created if missing) and returns
    the manifest dict.  ``extra_manifest`` entries (registry metadata:
    routine, machine, version...) are merged into the manifest.
    """
    os.makedirs(directory, exist_ok=True)
    bundle.config.save(os.path.join(directory, CONFIG_FILENAME))
    with open(os.path.join(directory, MODEL_FILENAME), "wb") as fh:
        pickle.dump({"pipeline": bundle.pipeline, "model": bundle.model,
                     "report": bundle.report}, fh)
    plan = bundle.compile() if hasattr(bundle, "compile") else None
    plan_path = os.path.join(directory, PLAN_FILENAME)
    plan_meta = None
    if plan is not None and plan.lowers_anything:
        with open(plan_path, "wb") as fh:
            pickle.dump({"plan": plan}, fh)
        plan_meta = plan.describe()
    elif os.path.exists(plan_path):  # stale plan from an earlier save
        os.remove(plan_path)
    files = {name: _sha256_file(os.path.join(directory, name))
             for name in _artifact_names(directory)}
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "files": files,
        "checksum": _combine_digests(files),
        "model_name": bundle.config.model_name,
        "machine": bundle.config.machine,
    }
    if plan_meta is not None:
        manifest["plan"] = plan_meta
    if extra_manifest:
        manifest.update(extra_manifest)
    manifest_path = os.path.join(directory, MANIFEST_FILENAME)
    tmp_path = manifest_path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    os.replace(tmp_path, manifest_path)  # atomic: never a torn manifest
    return manifest


def load_manifest(directory) -> dict:
    """The bundle's manifest, or ``None`` for a pre-registry bundle."""
    path = os.path.join(directory, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            return json.load(fh)
    except (ValueError, OSError) as exc:
        raise BundleIntegrityError(
            f"unreadable bundle manifest {path}: {exc}") from exc


def verify_bundle(directory, ignore=()) -> dict:
    """Validate schema version and artefact checksums; returns the manifest.

    Legacy directories (no manifest) pass with ``None`` — backward
    compatibility for bundles written before the registry existed.
    ``ignore`` names artefact files to skip (used when a rebuildable
    artefact — the compiled plan — is about to be rewritten anyway).
    """
    manifest = load_manifest(directory)
    if manifest is None:
        return None
    schema = manifest.get("schema_version")
    if schema not in SUPPORTED_SCHEMAS:
        raise BundleSchemaError(
            f"bundle at {directory} uses serialization schema {schema!r}; "
            f"this build reads schemas {SUPPORTED_SCHEMAS} — re-install or "
            f"re-publish the model with a matching version")
    for name, expected in manifest.get("files", {}).items():
        if name in ignore:
            continue
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise BundleIntegrityError(
                f"bundle artefact missing: {path} (recorded in manifest)")
        actual = _sha256_file(path)
        if actual != expected:
            raise BundleIntegrityError(
                f"bundle artefact {path} is corrupt: SHA-256 {actual[:12]}… "
                f"does not match the manifest's {expected[:12]}… — the file "
                f"was modified or truncated after installation")
    return manifest


def load_bundle(directory, verify: bool = True, load_plan: bool = True):
    """Load a bundle saved by :func:`save_bundle`.

    With a manifest present the artefacts are checksum-verified first
    (``verify=False`` skips that, for tooling that only inspects);
    without one, the legacy load path applies.  Unpickling failures are
    wrapped in :class:`BundleIntegrityError` either way.  A compiled
    plan artefact, when present, is loaded onto the bundle; pre-plan
    bundles come back with ``plan=None`` and compile lazily.
    ``load_plan=False`` skips (and does not verify) the plan artefact —
    the recovery path ``models --compile`` uses to rebuild a corrupt or
    deleted plan while still verifying the config and model.
    """
    from repro.core.training import TrainedBundle

    config_path = os.path.join(directory, CONFIG_FILENAME)
    model_path = os.path.join(directory, MODEL_FILENAME)
    for path in (config_path, model_path):
        if not os.path.exists(path):
            raise FileNotFoundError(f"missing installation artefact: {path}")
    if verify:
        verify_bundle(directory,
                      ignore=() if load_plan else (PLAN_FILENAME,))
    config = AdsalaConfig.load(config_path)
    try:
        with open(model_path, "rb") as fh:
            payload = pickle.load(fh)
        pipeline, model = payload["pipeline"], payload["model"]
    except BundleError:
        raise
    except Exception as exc:
        raise BundleIntegrityError(
            f"cannot unpickle bundle artefact {model_path}: {exc!r} — the "
            f"file is corrupt or was written by an incompatible build") \
            from exc
    plan = None
    plan_path = os.path.join(directory, PLAN_FILENAME)
    if load_plan and os.path.exists(plan_path):
        manifest = load_manifest(directory)
        if manifest is not None \
                and PLAN_FILENAME not in manifest.get("files", {}):
            # An unmanifested plan would be unpickled with no checksum
            # covering it — never execute an unverified pickle.
            raise BundleIntegrityError(
                f"compiled plan {plan_path} is not recorded in the bundle "
                f"manifest — the file was added after installation; remove "
                f"it, or re-run 'models compile' to build a verified plan")
        try:
            with open(plan_path, "rb") as fh:
                plan = pickle.load(fh)["plan"]
        except Exception as exc:
            raise BundleIntegrityError(
                f"cannot unpickle compiled plan {plan_path}: {exc!r} — the "
                f"file is corrupt or was written by an incompatible build; "
                f"re-run 'models compile' to rebuild it") from exc
    return TrainedBundle(config=config, pipeline=pipeline,
                         model=model, report=payload.get("report"),
                         plan=plan)
