"""Feature engineering: the paper's Table II.

Two groups of features derived from the GEMM dimensions and the thread
count:

Group 1 (serial-runtime terms)
    ``m, k, n, n_threads, m*k, m*n, k*n, m*k*n, m*k + k*n + m*n``
Group 2 (parallel-runtime terms, everything divided by n_threads)
    ``m/p, k/p, n/p, m*k/p, m*n/p, k*n/p, m*k*n/p, (m*k+k*n+m*n)/p``

The paper generated many candidate combinations and kept these after
correlation pruning; the pruning itself happens later in the pipeline
(:mod:`repro.preprocessing.correlation`), so the builder emits the full
table and records names so pruned models stay interpretable.
"""

from __future__ import annotations

import numpy as np

FEATURE_NAMES_GROUP1 = (
    "m", "k", "n", "n_threads",
    "m*k", "m*n", "k*n", "m*k*n", "m*k+k*n+m*n",
)
FEATURE_NAMES_GROUP2 = (
    "m/p", "k/p", "n/p",
    "m*k/p", "m*n/p", "k*n/p", "m*k*n/p", "(m*k+k*n+m*n)/p",
)


class FeatureBuilder:
    """Builds the Table II feature matrix from ``(m, k, n, p)`` arrays.

    Parameters
    ----------
    groups:
        Which feature groups to emit: "both" (paper default), "group1",
        "group2", or "raw" (just ``m, k, n, p`` — the ablation baseline).
    """

    def __init__(self, groups: str = "both"):
        if groups not in ("both", "group1", "group2", "raw"):
            raise ValueError(f"unknown feature group selection {groups!r}")
        self.groups = groups

    @property
    def names(self) -> tuple:
        if self.groups == "raw":
            return ("m", "k", "n", "n_threads")
        if self.groups == "group1":
            return FEATURE_NAMES_GROUP1
        if self.groups == "group2":
            return FEATURE_NAMES_GROUP2
        return FEATURE_NAMES_GROUP1 + FEATURE_NAMES_GROUP2

    @property
    def n_features(self) -> int:
        return len(self.names)

    def build(self, m, k, n, p) -> np.ndarray:
        """Feature matrix of shape ``(len(m), n_features)``.

        Inputs broadcast against each other, so a single shape with a
        vector of candidate thread counts works directly (the runtime
        predictor's hot path).
        """
        m, k, n, p = np.broadcast_arrays(
            np.asarray(m, dtype=np.float64), np.asarray(k, dtype=np.float64),
            np.asarray(n, dtype=np.float64), np.asarray(p, dtype=np.float64))
        if (m < 1).any() or (k < 1).any() or (n < 1).any():
            raise ValueError("GEMM dimensions must be >= 1")
        if (p < 1).any():
            raise ValueError("thread counts must be >= 1")

        mk, mn, kn = m * k, m * n, k * n
        mkn = mk * n
        total = mk + kn + mn
        if self.groups == "raw":
            cols = [m, k, n, p]
        elif self.groups == "group1":
            cols = [m, k, n, p, mk, mn, kn, mkn, total]
        elif self.groups == "group2":
            cols = [m / p, k / p, n / p, mk / p, mn / p, kn / p, mkn / p, total / p]
        else:
            cols = [m, k, n, p, mk, mn, kn, mkn, total,
                    m / p, k / p, n / p, mk / p, mn / p, kn / p, mkn / p, total / p]
        return np.column_stack([c.ravel() for c in cols])

    def build_for_grid(self, m: int, k: int, n: int, thread_grid) -> np.ndarray:
        """Features for one shape across every candidate thread count."""
        p = np.asarray(list(thread_grid), dtype=np.float64)
        if p.size == 0:
            raise ValueError("thread_grid must be non-empty")
        return self.build(np.full(p.size, m), np.full(p.size, k),
                          np.full(p.size, n), p)

    def build_for_batch(self, shapes, thread_grid) -> np.ndarray:
        """Features for many shapes across the grid in one matrix.

        Rows are shape-major: the first ``|grid|`` rows belong to
        ``shapes[0]`` in grid order (identical to ``build_for_grid``),
        the next ``|grid|`` to ``shapes[1]``, and so on — the vectorised
        prediction path reshapes the model output to
        ``(len(shapes), |grid|)`` on this contract.
        """
        p = np.asarray(list(thread_grid), dtype=np.float64)
        if p.size == 0:
            raise ValueError("thread_grid must be non-empty")
        dims = np.asarray(list(shapes), dtype=np.float64)
        if dims.ndim != 2 or dims.shape[1] != 3:
            raise ValueError("shapes must be a sequence of (m, k, n) triples")
        if dims.shape[0] == 0:
            raise ValueError("shapes must be non-empty")
        m = np.repeat(dims[:, 0], p.size)
        k = np.repeat(dims[:, 1], p.size)
        n = np.repeat(dims[:, 2], p.size)
        return self.build(m, k, n, np.tile(p, dims.shape[0]))

    def config(self) -> dict:
        return {"groups": self.groups}

    @classmethod
    def from_config(cls, cfg: dict) -> "FeatureBuilder":
        return cls(groups=cfg.get("groups", "both"))
