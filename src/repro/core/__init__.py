"""ADSALA core: ML-guided runtime thread selection for GEMM.

The paper's contribution, assembled from the substrate packages:

- :mod:`repro.core.features` — the Table II feature engineering.
- :mod:`repro.core.dataset` — timing-dataset container.
- :mod:`repro.core.gather` — installation-time data gathering campaigns.
- :mod:`repro.core.training` — the installation workflow of Fig. 2
  (preprocess, tune, fit, measure, select).
- :mod:`repro.core.selection` — speedup-based model selection
  (``s = t_original / (t_ADSALA + t_eval)``, Section IV-D).
- :mod:`repro.core.predictor` — runtime thread-count prediction with
  last-call memoisation (Fig. 3).
- :mod:`repro.core.config` / :mod:`repro.core.serialize` — the two
  installation artefacts (config file + trained model).
- :mod:`repro.core.library` — the routine-generic ``AdsalaRuntime``
  class users link against (``AdsalaGemm`` is its GEMM alias).
- :mod:`repro.core.routines` — the central routine registry making
  GEMM, GEMV, TRSM and SYRK first-class citizens of every layer.
"""

from repro.core.features import (FEATURE_NAMES_GROUP1, FEATURE_NAMES_GROUP2,
                                 FeatureBuilder)
from repro.core.dataset import TimingDataset, TimingRecord
from repro.core.gather import DataGatherer
from repro.core.training import InstallationWorkflow, TrainedBundle
from repro.core.selection import ModelSelectionReport, SpeedupEstimate, estimate_speedup
from repro.core.predictor import ThreadPredictor
from repro.core.config import AdsalaConfig
from repro.core.serialize import load_bundle, save_bundle
from repro.core.library import AdsalaGemm, AdsalaRuntime
from repro.core.diagnostics import ChoiceDiagnostics, diagnose_choices
from repro.core.online import OnlineRefiner
from repro.core.routines import (REGISTRY, RoutineInfo, RoutineSpec,
                                 build_spec, get_routine, register_routine,
                                 routine_names, routine_of)

__all__ = [
    "FEATURE_NAMES_GROUP1", "FEATURE_NAMES_GROUP2", "FeatureBuilder",
    "TimingDataset", "TimingRecord",
    "DataGatherer",
    "InstallationWorkflow", "TrainedBundle",
    "ModelSelectionReport", "SpeedupEstimate", "estimate_speedup",
    "ThreadPredictor",
    "AdsalaConfig",
    "save_bundle", "load_bundle",
    "AdsalaGemm", "AdsalaRuntime",
    "ChoiceDiagnostics", "diagnose_choices",
    "OnlineRefiner",
    "REGISTRY", "RoutineInfo", "RoutineSpec",
    "build_spec", "get_routine", "register_routine",
    "routine_names", "routine_of",
]
