"""ADSALA configuration artefact.

The installation workflow (paper Fig. 2) emits two files: a config file
describing the data preprocessing / machine / thread grid, and the
trained model.  :class:`AdsalaConfig` is the first of those, JSON
round-trippable so the runtime library can be pointed at a directory and
reconstruct the exact installation state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class AdsalaConfig:
    """Everything the runtime library needs besides the model weights.

    Attributes
    ----------
    machine:
        Preset name of the node the installation ran on.
    routine:
        The BLAS routine the timings were collected for ("gemm",
        "gemv", "syrk", "trsm" — a name from
        :mod:`repro.core.routines`).  Serving layers use this tag to
        route each bundle's predictor to the right traffic; configs
        written before the tag existed load as "gemm".
    dtype:
        GEMM precision the timings were collected for.
    thread_grid:
        Candidate thread counts evaluated at runtime.
    feature_groups:
        Feature-builder selection ("both" reproduces Table II).
    label_transform:
        Transform applied to runtimes before regression ("log",
        "sqrt" or "identity").  Monotone, so the runtime argmin over
        thread counts is unchanged; "log" equalises the loss across the
        microsecond-to-second runtime range and is the library default
        (see DESIGN.md for the deviation note).
    model_name:
        The selected candidate (Tables III/IV row name).
    model_params:
        Tuned hyper-parameters of the selected model.
    memory_cap_bytes / n_shapes / seed:
        Data-gathering provenance.
    preprocessing:
        Pipeline settings (correlation threshold, LOF settings, ...).
    hyperthreading / affinity:
        Execution environment of the campaign.
    """

    machine: str
    routine: str = "gemm"
    dtype: str = "float32"
    thread_grid: list = field(default_factory=list)
    feature_groups: str = "both"
    label_transform: str = "log"
    model_name: str = ""
    model_params: dict = field(default_factory=dict)
    memory_cap_bytes: int = 0
    n_shapes: int = 0
    seed: int = 0
    preprocessing: dict = field(default_factory=dict)
    hyperthreading: bool = True
    affinity: str = "cores"

    def __post_init__(self):
        if self.label_transform not in ("log", "sqrt", "identity"):
            raise ValueError(f"unknown label_transform {self.label_transform!r}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"unknown dtype {self.dtype!r}")
        self.thread_grid = [int(t) for t in self.thread_grid]
        if self.thread_grid and min(self.thread_grid) < 1:
            raise ValueError("thread_grid entries must be >= 1")

    # -- label transform helpers ----------------------------------------
    def transform_label(self, runtime):
        import numpy as np

        runtime = np.asarray(runtime, dtype=float)
        if self.label_transform == "log":
            return np.log(runtime)
        if self.label_transform == "sqrt":
            return np.sqrt(runtime)
        return runtime

    def inverse_label(self, value):
        import numpy as np

        value = np.asarray(value, dtype=float)
        if self.label_transform == "log":
            return np.exp(value)
        if self.label_transform == "sqrt":
            return value ** 2
        return value

    # -- persistence -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AdsalaConfig":
        return cls(**json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "AdsalaConfig":
        with open(path) as fh:
            return cls.from_json(fh.read())
