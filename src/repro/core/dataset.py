"""Timing dataset container.

One record per (GEMM shape, thread count) pair with the reduced runtime
of the repetition loop.  The container is column-oriented numpy so
feature building, filtering by memory bucket, and optimal-thread
queries (for the paper's histograms/heatmaps) are all vectorised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.gemm.counts import gemm_memory_bytes
from repro.gemm.interface import GemmSpec


@dataclass(frozen=True)
class TimingRecord:
    """One timing measurement.

    ``routine`` tags which BLAS routine the measurement timed; the
    ``(m, k, n)`` triple is always stored in the GEMM feature
    convention (a GEMV problem appears as ``(m, n, 1)``), so feature
    building never branches on the routine.
    """

    m: int
    k: int
    n: int
    n_threads: int
    runtime: float
    routine: str = "gemm"

    @property
    def spec(self):
        """The routine problem this record timed (registry-built)."""
        if self.routine == "gemm":
            return GemmSpec(self.m, self.k, self.n)
        from repro.core.routines import get_routine

        return get_routine(self.routine).from_feature_dims(
            (self.m, self.k, self.n))


class TimingDataset:
    """Column-oriented collection of timing records.

    Attributes (all numpy arrays of equal length):
    ``m, k, n, threads, runtime``.  ``routine`` tags the whole
    campaign — timing datasets are homogeneous per routine by
    construction (one installation gathers one routine), so the tag is
    a column-free scalar.
    """

    def __init__(self, m, k, n, threads, runtime, dtype: str = "float32",
                 routine: str = "gemm"):
        self.m = np.asarray(m, dtype=np.int64)
        self.k = np.asarray(k, dtype=np.int64)
        self.n = np.asarray(n, dtype=np.int64)
        self.threads = np.asarray(threads, dtype=np.int64)
        self.runtime = np.asarray(runtime, dtype=np.float64)
        self.dtype = dtype
        self.routine = str(routine)
        lengths = {a.shape[0] for a in (self.m, self.k, self.n, self.threads, self.runtime)}
        if len(lengths) != 1:
            raise ValueError(f"column length mismatch: {lengths}")
        if (self.runtime <= 0).any():
            raise ValueError("runtimes must be positive")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.m.shape[0]

    @classmethod
    def from_records(cls, records, dtype: str = "float32") -> "TimingDataset":
        records = list(records)
        if not records:
            raise ValueError("no records")
        routines = {getattr(r, "routine", "gemm") for r in records}
        if len(routines) != 1:
            raise ValueError(
                f"mixed-routine timing records {sorted(routines)}: one "
                f"dataset holds one routine's campaign")
        return cls(
            m=[r.m for r in records], k=[r.k for r in records],
            n=[r.n for r in records], threads=[r.n_threads for r in records],
            runtime=[r.runtime for r in records], dtype=dtype,
            routine=routines.pop())

    def records(self):
        return [TimingRecord(int(self.m[i]), int(self.k[i]), int(self.n[i]),
                             int(self.threads[i]), float(self.runtime[i]),
                             routine=self.routine)
                for i in range(len(self))]

    # -- derived columns -------------------------------------------------
    @property
    def memory_bytes(self) -> np.ndarray:
        itemsize = 4 if self.dtype == "float32" else 8
        return itemsize * (self.m * self.k + self.k * self.n + self.m * self.n)

    @property
    def memory_mb(self) -> np.ndarray:
        return self.memory_bytes / (1024.0 * 1024.0)

    def shape_keys(self) -> np.ndarray:
        """Structured (m, k, n) key array for group-by operations."""
        return np.rec.fromarrays([self.m, self.k, self.n], names="m,k,n")

    # -- filters ---------------------------------------------------------
    def select(self, mask) -> "TimingDataset":
        mask = np.asarray(mask, dtype=bool)
        return TimingDataset(self.m[mask], self.k[mask], self.n[mask],
                             self.threads[mask], self.runtime[mask],
                             self.dtype, routine=self.routine)

    def within_memory(self, cap_bytes: int) -> "TimingDataset":
        return self.select(self.memory_bytes <= cap_bytes)

    def min_dim_below(self, limit: int) -> "TimingDataset":
        """Shapes with at least one dimension below ``limit`` (Fig. 8)."""
        min_dim = np.minimum(np.minimum(self.m, self.k), self.n)
        return self.select(min_dim < limit)

    # -- per-shape aggregation --------------------------------------------
    def unique_shapes(self):
        """Sorted unique (m, k, n) triples present in the dataset."""
        keys = np.stack([self.m, self.k, self.n], axis=1)
        return np.unique(keys, axis=0)

    def optimal_threads(self):
        """Per unique shape, the thread count with the lowest runtime.

        Returns ``(shapes, best_threads, best_runtime, max_thread_runtime)``
        where ``max_thread_runtime`` is the measured runtime at the
        largest thread count present for that shape (the paper's
        "traditional GEMM" baseline).
        """
        shapes = self.unique_shapes()
        best_t = np.empty(shapes.shape[0], dtype=np.int64)
        best_rt = np.empty(shapes.shape[0])
        max_rt = np.empty(shapes.shape[0])
        for i, (m, k, n) in enumerate(shapes):
            mask = (self.m == m) & (self.k == k) & (self.n == n)
            threads = self.threads[mask]
            runtime = self.runtime[mask]
            j = int(np.argmin(runtime))
            best_t[i] = threads[j]
            best_rt[i] = runtime[j]
            max_rt[i] = runtime[np.argmax(threads)]
        return shapes, best_t, best_rt, max_rt

    # -- persistence -------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "dtype": self.dtype,
            "routine": self.routine,
            "m": self.m.tolist(), "k": self.k.tolist(), "n": self.n.tolist(),
            "threads": self.threads.tolist(), "runtime": self.runtime.tolist(),
        })

    @classmethod
    def from_json(cls, text: str) -> "TimingDataset":
        payload = json.loads(text)
        return cls(payload["m"], payload["k"], payload["n"],
                   payload["threads"], payload["runtime"],
                   dtype=payload.get("dtype", "float32"),
                   routine=payload.get("routine", "gemm"))

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "TimingDataset":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def merge(self, other: "TimingDataset") -> "TimingDataset":
        if other.dtype != self.dtype:
            raise ValueError("cannot merge datasets of different dtypes")
        if getattr(other, "routine", "gemm") != self.routine:
            raise ValueError(
                f"cannot merge a {other.routine!r} campaign into a "
                f"{self.routine!r} one: per-routine models train on "
                f"per-routine timings")
        return TimingDataset(
            np.concatenate([self.m, other.m]),
            np.concatenate([self.k, other.k]),
            np.concatenate([self.n, other.n]),
            np.concatenate([self.threads, other.threads]),
            np.concatenate([self.runtime, other.runtime]),
            self.dtype, routine=self.routine)
