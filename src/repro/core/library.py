"""The ADSALA runtime library (paper Fig. 3).

:class:`AdsalaGemm` is the class a user program instantiates: it loads
the config file and trained model produced at installation, then every
GEMM call predicts the optimal thread count on-the-fly and dispatches to
the underlying GEMM implementation with that team size.

Since the engine refactor this class is a thin backward-compatible
facade over :class:`repro.engine.service.GemmService`: prediction goes
through the engine's :class:`~repro.engine.cache.PredictionCache`
(a real LRU rather than the paper's single-shape memo), execution goes
through an :class:`~repro.engine.backend.ExecutionBackend`, and batch
callers can reach the vectorised prediction path via :meth:`run_batch`.
Repeated calls with the same dimensions reuse cached predictions, and
the instance is a context manager so "the class instance holding the ML
model can be safely destroyed to free the memory space".
"""

from __future__ import annotations

from repro.core.serialize import load_bundle
from repro.engine.backend import as_backend
from repro.engine.service import GemmCallRecord, GemmService
from repro.gemm.interface import GemmSpec
from repro.machine.simulator import MachineSimulator

__all__ = ["AdsalaGemm", "GemmCallRecord"]


class AdsalaGemm:
    """ML-thread-selected GEMM front end.

    Parameters
    ----------
    bundle:
        A :class:`~repro.core.training.TrainedBundle` (or use
        :meth:`from_directory` to load saved artefacts).
    machine:
        Execution backend.  A :class:`MachineSimulator` executes
        simulated GEMMs; any object with a compatible
        ``timed_run(spec, n_threads, repeats)`` also works (e.g.
        :class:`repro.engine.backend.ParallelExecutionBackend` for real
        execution), and a full
        :class:`~repro.engine.backend.BackendDispatcher` can be reached
        through :attr:`service`.
    repeats:
        Timing-loop repetitions per dispatched call.
    cache_size:
        LRU prediction-cache entries (pass 1 for the paper's literal
        last-call memo).
    """

    def __init__(self, bundle, machine: MachineSimulator, repeats: int = 1,
                 cache_size: int = 64):
        self.bundle = bundle
        self.machine = machine
        self.repeats = repeats
        self.service = GemmService(
            bundle.predictor(cache_size=cache_size, compiled=True),
            backend=as_backend(machine, thread_grid=bundle.config.thread_grid),
            repeats=repeats)
        self._closed = False

    @classmethod
    def from_directory(cls, directory, machine, repeats: int = 1,
                       cache_size: int = 64) -> "AdsalaGemm":
        """Load the installation artefacts saved by ``save_bundle``."""
        return cls(load_bundle(directory), machine, repeats=repeats,
                   cache_size=cache_size)

    # ------------------------------------------------------------------
    @property
    def _predictor(self):
        return self.service.predictor

    @property
    def history(self) -> list:
        return self.service.history

    @property
    def thread_grid(self):
        return self.service.thread_grid

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """The model's thread choice for a shape (no execution)."""
        self._ensure_open()
        return self.service.predict((m, k, n))

    def run(self, spec: GemmSpec) -> GemmCallRecord:
        """Predict the thread count and execute the GEMM."""
        self._ensure_open()
        return self.service.run(spec)

    def run_batch(self, specs) -> list:
        """Serve a stream of specs through the engine's batched path.

        Prediction cost is amortised: unique uncached shapes share one
        vectorised model evaluation.  Returns records in input order.
        """
        self._ensure_open()
        return self.service.run_batch(specs)

    def gemm(self, m: int, k: int, n: int, dtype: str = "float32") -> GemmCallRecord:
        """Convenience wrapper building the spec inline."""
        return self.run(GemmSpec(m=m, k=k, n=n, dtype=dtype))

    def run_baseline(self, spec: GemmSpec, n_threads: int = None) -> float:
        """Traditional GEMM runtime (default: the maximum thread count)."""
        self._ensure_open()
        return self.service.run_baseline(spec, n_threads=n_threads)

    def speedup_over_baseline(self, spec: GemmSpec) -> float:
        """Measured ``t_baseline / t_adsala`` for one shape."""
        record = self.run(spec)
        baseline = self.run_baseline(spec)
        return baseline / record.runtime

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the model (paper: destroy the instance after last call)."""
        self.service.close()
        self.bundle = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("AdsalaGemm instance has been closed")

    def __enter__(self) -> "AdsalaGemm":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats -----------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of calls answered from a cached prediction."""
        return self.service.memo_hit_rate

    @property
    def cache_stats(self) -> dict:
        """Engine serving statistics (cache hits/misses/evictions, ...)."""
        return self.service.stats()
