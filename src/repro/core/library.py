"""The ADSALA runtime library (paper Fig. 3).

:class:`AdsalaGemm` is the class a user program instantiates: it loads
the config file and trained model produced at installation, then every
GEMM call predicts the optimal thread count on-the-fly and dispatches to
the underlying GEMM implementation with that team size.  Repeated calls
with the same dimensions reuse the memoised prediction, and the instance
is a context manager so "the class instance holding the ML model can be
safely destroyed to free the memory space".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.predictor import ThreadPredictor
from repro.core.serialize import load_bundle
from repro.gemm.interface import GemmSpec
from repro.machine.simulator import MachineSimulator


@dataclass
class GemmCallRecord:
    """Bookkeeping for one dispatched GEMM call."""

    spec: GemmSpec
    n_threads: int
    runtime: float
    memoised: bool

    @property
    def gflops(self) -> float:
        return self.spec.flops / self.runtime / 1e9


class AdsalaGemm:
    """ML-thread-selected GEMM front end.

    Parameters
    ----------
    bundle:
        A :class:`~repro.core.training.TrainedBundle` (or use
        :meth:`from_directory` to load saved artefacts).
    machine:
        Execution backend.  A :class:`MachineSimulator` executes
        simulated GEMMs; any object with a compatible
        ``timed_run(spec, n_threads, repeats)`` also works (e.g. a
        wrapper over :class:`repro.gemm.parallel.ParallelGemm` for real
        execution).
    repeats:
        Timing-loop repetitions per dispatched call.
    """

    def __init__(self, bundle, machine: MachineSimulator, repeats: int = 1):
        self.bundle = bundle
        self.machine = machine
        self.repeats = repeats
        self._predictor: ThreadPredictor = bundle.predictor()
        self.history: list = []
        self._closed = False

    @classmethod
    def from_directory(cls, directory, machine, repeats: int = 1) -> "AdsalaGemm":
        """Load the installation artefacts saved by ``save_bundle``."""
        return cls(load_bundle(directory), machine, repeats=repeats)

    # ------------------------------------------------------------------
    @property
    def thread_grid(self):
        return self._predictor.thread_grid

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """The model's thread choice for a shape (no execution)."""
        self._ensure_open()
        return self._predictor.predict_threads(m, k, n)

    def run(self, spec: GemmSpec) -> GemmCallRecord:
        """Predict the thread count and execute the GEMM."""
        self._ensure_open()
        hits_before = self._predictor.n_memo_hits
        n_threads = self._predictor.predict_threads(spec.m, spec.k, spec.n)
        runtime = self.machine.timed_run(spec, n_threads, repeats=self.repeats)
        record = GemmCallRecord(spec=spec, n_threads=n_threads, runtime=runtime,
                                memoised=self._predictor.n_memo_hits > hits_before)
        self.history.append(record)
        return record

    def gemm(self, m: int, k: int, n: int, dtype: str = "float32") -> GemmCallRecord:
        """Convenience wrapper building the spec inline."""
        return self.run(GemmSpec(m=m, k=k, n=n, dtype=dtype))

    def run_baseline(self, spec: GemmSpec, n_threads: int = None) -> float:
        """Traditional GEMM runtime (default: the maximum thread count)."""
        self._ensure_open()
        if n_threads is None:
            n_threads = int(self.thread_grid.max())
        return self.machine.timed_run(spec, n_threads, repeats=self.repeats)

    def speedup_over_baseline(self, spec: GemmSpec) -> float:
        """Measured ``t_baseline / t_adsala`` for one shape."""
        record = self.run(spec)
        baseline = self.run_baseline(spec)
        return baseline / record.runtime

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the model (paper: destroy the instance after last call)."""
        self._predictor = None
        self.bundle = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("AdsalaGemm instance has been closed")

    def __enter__(self) -> "AdsalaGemm":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats -----------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of calls answered from the memoised prediction."""
        if not self.history:
            return 0.0
        return sum(r.memoised for r in self.history) / len(self.history)
