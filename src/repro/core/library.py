"""The ADSALA runtime library (paper Fig. 3), routine-generic.

:class:`AdsalaRuntime` is the class a user program instantiates: it
loads the config file and trained model(s) produced at installation,
then every BLAS call — GEMM, GEMV, TRSM or SYRK — predicts the optimal
thread count on-the-fly and dispatches to the underlying implementation
with that team size.  The runtime is keyed by *routine*, not welded to
GEMM: the bundle's ``config.routine`` tag picks its default routine,
:meth:`register_routine` adds further per-routine models, and
:meth:`from_registry` assembles a mixed-routine runtime from a model
registry in one call.

:class:`AdsalaGemm` remains as the GEMM-specific thin alias with the
paper-era convenience API (``predict_threads(m, k, n)``, ``gemm(...)``)
— existing callers are untouched.

Both are facades over :class:`repro.engine.service.GemmService`:
prediction goes through the engine's
:class:`~repro.engine.cache.PredictionCache` (a real LRU rather than
the paper's single-shape memo, keyed ``(routine, m, k, n)``), execution
goes through an :class:`~repro.engine.backend.ExecutionBackend` per
routine, and batch callers reach the vectorised prediction path via
:meth:`run_batch`.  Repeated calls with the same dimensions reuse
cached predictions, and the instance is a context manager so "the class
instance holding the ML model can be safely destroyed to free the
memory space".
"""

from __future__ import annotations

from repro.core.routines import routine_of
from repro.core.serialize import load_bundle
from repro.engine.backend import as_backend
from repro.engine.service import GemmCallRecord, GemmService
from repro.gemm.interface import GemmSpec
from repro.machine.simulator import MachineSimulator

__all__ = ["AdsalaRuntime", "AdsalaGemm", "GemmCallRecord"]


class AdsalaRuntime:
    """Routine-generic ML-thread-selected BLAS front end.

    Parameters
    ----------
    bundle:
        A :class:`~repro.core.training.TrainedBundle` (or use
        :meth:`from_directory` to load saved artefacts).  Its
        ``config.routine`` tag decides which routine this bundle
        serves — a GEMV installation makes a GEMV runtime.
    machine:
        Execution backend.  A :class:`MachineSimulator` executes
        simulated calls (non-GEMM routines are served through the
        :class:`~repro.blas.adapter.RoutineSimulator` oracle
        automatically); any object with a compatible
        ``timed_run(spec, n_threads, repeats)`` also works (e.g.
        :class:`repro.engine.backend.ParallelExecutionBackend` for real
        GEMM execution), and a full
        :class:`~repro.engine.backend.BackendDispatcher` can be reached
        through :attr:`service`.
    repeats:
        Timing-loop repetitions per dispatched call.
    cache_size:
        LRU prediction-cache entries (pass 1 for the paper's literal
        last-call memo).
    """

    def __init__(self, bundle, machine, repeats: int = 1,
                 cache_size: int = 64):
        self.bundle = bundle
        self.machine = machine
        self.repeats = repeats
        routine = getattr(bundle.config, "routine", "gemm")
        grid = bundle.config.thread_grid
        self.service = GemmService(
            bundle.predictor(cache_size=cache_size, compiled=True),
            backend=as_backend(machine, thread_grid=grid),
            repeats=repeats)
        # On a simulator, a non-GEMM bundle's routine executes through
        # the RoutineSimulator oracle; other traffic keeps the native
        # backend.
        self.service._wire_routine_backend(routine, grid)
        self._cache_size = cache_size
        self._closed = False

    @classmethod
    def from_directory(cls, directory, machine, repeats: int = 1,
                       cache_size: int = 64) -> "AdsalaRuntime":
        """Load the installation artefacts saved by ``save_bundle``."""
        return cls(load_bundle(directory), machine, repeats=repeats,
                   cache_size=cache_size)

    @classmethod
    def from_registry(cls, registry, machine, machine_name: str = None,
                      routines=None, repeats: int = 1,
                      cache_size: int = 256) -> "AdsalaRuntime":
        """A mixed-routine runtime straight from a model registry.

        Every requested routine (default: all published for the
        machine) gets its own predictor and execution adapter inside
        one service; the returned runtime answers any registered
        routine's specs.
        """
        runtime = cls.__new__(cls)
        runtime.machine = machine
        runtime.repeats = repeats
        runtime.service = GemmService.from_registry(
            registry, machine, machine_name=machine_name, routines=routines,
            repeats=repeats, cache_size=cache_size)
        runtime.bundle = None
        runtime._cache_size = cache_size
        runtime._closed = False
        return runtime

    # ------------------------------------------------------------------
    def register_routine(self, bundle, routine: str = None,
                         backend=None) -> "AdsalaRuntime":
        """Serve another routine's traffic with its own trained bundle.

        ``routine`` defaults to the bundle's ``config.routine`` tag;
        ``backend`` defaults to the routine oracle over this runtime's
        machine (simulators) or the runtime's default backend.
        Returns self for chaining.
        """
        self._ensure_open()
        routine = routine or getattr(bundle.config, "routine", "gemm")
        self.service.register_routine(routine, bundle=bundle,
                                      backend=backend,
                                      cache_size=self._cache_size)
        return self

    @property
    def routines(self) -> tuple:
        """Routine names this runtime serves with a dedicated model."""
        return tuple(self.service.predictors)

    # ------------------------------------------------------------------
    @property
    def _predictor(self):
        return self.service.predictor

    @property
    def history(self) -> list:
        return self.service.history

    @property
    def thread_grid(self):
        return self.service.thread_grid

    def predict(self, spec) -> int:
        """The model's thread choice for a routine spec (no execution)."""
        self._ensure_open()
        return self.service.predict(spec)

    def run(self, spec) -> GemmCallRecord:
        """Predict the thread count and execute the routine call."""
        self._ensure_open()
        return self.service.run(spec)

    def run_batch(self, specs) -> list:
        """Serve a stream of specs through the engine's batched path.

        Prediction cost is amortised per routine: unique uncached
        shapes share one vectorised model evaluation per routine.
        Returns records in input order.
        """
        self._ensure_open()
        return self.service.run_batch(specs)

    def run_baseline(self, spec, n_threads: int = None) -> float:
        """Traditional routine runtime (default: the maximum thread count)."""
        self._ensure_open()
        return self.service.run_baseline(spec, n_threads=n_threads)

    def speedup_over_baseline(self, spec) -> float:
        """Measured ``t_baseline / t_adsala`` for one problem."""
        record = self.run(spec)
        baseline = self.run_baseline(spec)
        return baseline / record.runtime

    def routine_of(self, spec) -> str:
        """Which routine's model would answer this spec."""
        return routine_of(spec)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the models (paper: destroy the instance after last call)."""
        self.service.close()
        self.bundle = None
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} instance has been closed")

    def __enter__(self) -> "AdsalaRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats -----------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of calls answered from a cached prediction."""
        return self.service.memo_hit_rate

    @property
    def cache_stats(self) -> dict:
        """Engine serving statistics (cache hits/misses/evictions, ...)."""
        return self.service.stats()


class AdsalaGemm(AdsalaRuntime):
    """GEMM front end — the paper's original API, kept verbatim.

    A thin alias over :class:`AdsalaRuntime` whose convenience methods
    speak ``(m, k, n)`` triples; everything else (engine service,
    caching, batching, lifecycle) is inherited.
    """

    def __init__(self, bundle, machine: MachineSimulator, repeats: int = 1,
                 cache_size: int = 64):
        super().__init__(bundle, machine, repeats=repeats,
                         cache_size=cache_size)

    def predict_threads(self, m: int, k: int, n: int) -> int:
        """The model's thread choice for a shape (no execution)."""
        self._ensure_open()
        return self.service.predict((m, k, n))

    def gemm(self, m: int, k: int, n: int, dtype: str = "float32") -> GemmCallRecord:
        """Convenience wrapper building the spec inline."""
        return self.run(GemmSpec(m=m, k=k, n=n, dtype=dtype))

    def run_baseline(self, spec: GemmSpec, n_threads: int = None) -> float:
        """Traditional GEMM runtime (default: the maximum thread count)."""
        return super().run_baseline(spec, n_threads=n_threads)
