"""Post-installation diagnostics: how good are the thread choices?

Beyond the paper's aggregate speedup tables, a deployed ADSALA wants to
know *where* its model errs.  This module compares the predictor's
choices against the oracle (exhaustive measurement) on a shape sample
and reports:

- **regret** per shape: ``t(chosen) / t(best)`` (1.0 = perfect choice);
- **top-1 accuracy** and accuracy-within-one-grid-step;
- a breakdown by memory bucket, which localises the regimes where the
  model needs more data (actionable for targeted re-campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ChoiceDiagnostics:
    """Aggregated thread-choice quality over a shape sample."""

    n_shapes: int
    top1_accuracy: float
    within_one_step: float
    mean_regret: float
    median_regret: float
    p95_regret: float
    by_bucket: tuple = field(default=())

    def as_dict(self) -> dict:
        return {
            "n_shapes": self.n_shapes,
            "top1_accuracy": round(self.top1_accuracy, 3),
            "within_one_step": round(self.within_one_step, 3),
            "mean_regret": round(self.mean_regret, 3),
            "median_regret": round(self.median_regret, 3),
            "p95_regret": round(self.p95_regret, 3),
        }


@dataclass(frozen=True)
class BucketDiagnostics:
    """Per-memory-bucket slice of the diagnostics."""

    lo_mb: float
    hi_mb: float
    n: int
    mean_regret: float
    top1_accuracy: float


def diagnose_choices(predictor, machine, shapes, thread_grid=None,
                     bucket_edges_mb=(0, 10, 100, 500)) -> ChoiceDiagnostics:
    """Compare predictor choices against the noise-free oracle.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.ThreadPredictor`.
    machine:
        Anything exposing ``true_time(spec, p)`` (the simulator) — the
        oracle uses noise-free times so regret reflects model error, not
        measurement luck.
    shapes:
        Iterable of :class:`~repro.gemm.interface.GemmSpec`.
    """
    grid = np.asarray(sorted(thread_grid) if thread_grid is not None
                      else predictor.thread_grid)
    if grid.size == 0:
        raise ValueError("empty thread grid")

    regrets, correct, near, mems = [], [], [], []
    for spec in shapes:
        chosen = predictor.predict_threads(spec.m, spec.k, spec.n)
        times = np.array([machine.true_time(spec, int(p)) for p in grid])
        best_idx = int(np.argmin(times))
        chosen_idx = int(np.argmin(np.abs(grid - chosen)))
        regrets.append(times[chosen_idx] / times[best_idx])
        correct.append(chosen_idx == best_idx)
        near.append(abs(chosen_idx - best_idx) <= 1)
        mems.append(spec.memory_mb)
    regrets = np.asarray(regrets)
    correct = np.asarray(correct)
    mems = np.asarray(mems)

    buckets = []
    for lo, hi in zip(bucket_edges_mb[:-1], bucket_edges_mb[1:]):
        mask = (mems > lo) & (mems <= hi)
        if mask.any():
            buckets.append(BucketDiagnostics(
                lo_mb=lo, hi_mb=hi, n=int(mask.sum()),
                mean_regret=float(regrets[mask].mean()),
                top1_accuracy=float(correct[mask].mean())))

    return ChoiceDiagnostics(
        n_shapes=len(regrets),
        top1_accuracy=float(np.mean(correct)),
        within_one_step=float(np.mean(near)),
        mean_regret=float(regrets.mean()),
        median_regret=float(np.median(regrets)),
        p95_regret=float(np.percentile(regrets, 95)),
        by_bucket=tuple(buckets),
    )
