"""The installation workflow (paper Fig. 2).

End-to-end: gather timings on the target machine, engineer features,
preprocess (Yeo-Johnson -> standardise -> LOF outlier removal ->
correlation pruning), tune every candidate model with cross-validation,
measure each tuned model's evaluation time, estimate speedups on a
held-out test set, and select the model with the best estimated mean
speedup.  The output is a :class:`TrainedBundle` — the config file plus
production-ready model of the paper's diagram.

:class:`InstallationWorkflow` is the public facade; :meth:`run`
delegates to the staged, resumable, parallelisable
:class:`~repro.train.pipeline.TrainingPipeline` (gather, split,
preprocess, per-candidate tuning and selection as discrete
content-addressed stages), so callers keep the paper-era one-shot API
while the CLI and the training matrix reuse the stage machinery for
``--jobs``/``--resume`` and multi-cell installs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import AdsalaConfig
from repro.core.dataset import TimingDataset
from repro.core.features import FeatureBuilder
from repro.core.gather import DataGatherer
from repro.core.predictor import ThreadPredictor
from repro.gemm.partition import choose_thread_grid
from repro.ml.model_selection import stratify_bins
from repro.preprocessing.correlation import CorrelationPruner
from repro.preprocessing.lof import LocalOutlierFactor
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.standard import StandardScaler
from repro.preprocessing.yeo_johnson import YeoJohnsonTransformer


@dataclass
class TrainedBundle:
    """The two installation artefacts plus the bake-off report.

    ``plan`` carries the bundle's compiled inference plan when one was
    built (at save time, by :meth:`compile`, or loaded from the
    ``adsala_plan.pkl`` artifact); pre-plan bundles leave it ``None``
    and compile lazily when a serving layer asks for the fast path.
    ``table`` carries the bundle's decision table — the plan
    pre-evaluated over the campaign's shape lattice — when one was
    built (:meth:`compile_table`, or loaded from ``adsala_table.pkl``).
    Unlike the plan, tables are **opt-in**: compilation re-probes the
    sampling domain, so it runs when asked, never implicitly at save.
    """

    config: AdsalaConfig
    pipeline: Pipeline
    model: object
    report: ModelSelectionReport = None
    plan: object = None
    table: object = None

    def compile(self, force: bool = False):
        """Build (and cache) the compiled plan for these artefacts."""
        if force or self.plan is None:
            from repro.compile import compile_plan

            self.plan = compile_plan(self.pipeline, self.model)
        return self.plan

    def compile_table(self, resolution: int = 16, snap: str = "exact",
                      axes=None, n_probe: int = 512, force: bool = False):
        """Build (and cache) the bundle's decision table.

        The lattice derives from the training campaign recorded in the
        config unless ``axes`` pins it explicitly; evaluation goes
        through the compiled plan and the result is validated bitwise
        against it on every lattice point before being attached.
        """
        if force or self.table is None:
            from repro.compile import compile_table

            self.table = compile_table(
                self.predictor(compiled=True, table=False),
                config=self.config, axes=axes, snap=snap,
                resolution=resolution, n_probe=n_probe)
        return self.table

    def predictor(self, cache_size: int = 1, thread_grid=None,
                  compiled: bool = None, table: bool = None) \
            -> ThreadPredictor:
        """Runtime predictor over the artefacts.

        ``cache_size=1`` (default) keeps the paper's last-call memo;
        the engine's service layer passes a larger LRU capacity.
        ``thread_grid`` restricts the candidate grid (e.g. to the
        execution machine's feasible thread counts); the installed
        grid is used when omitted.  ``compiled`` selects the plan path:
        ``True`` compiles lazily if needed, ``False`` forces the object
        path, and ``None`` (default) uses a plan only if one is already
        attached — predictions are bitwise identical either way.
        ``table`` works the same for the tier-0 decision table, with
        one extra rule: a table is only usable with the exact grid it
        was compiled for, so under the default ``None`` an attached
        table is silently dropped when ``thread_grid`` narrows the grid
        (e.g. clamped to a smaller machine), while ``table=True`` on an
        incompatible grid raises.
        """
        if compiled is True:
            plan = self.compile()
        elif compiled is False:
            plan = None
        else:
            plan = self.plan
        grid = (self.config.thread_grid if thread_grid is None
                else thread_grid)
        if table is True:
            tbl = self.compile_table()
        elif table is False:
            tbl = None
        else:
            tbl = self.table
            if tbl is not None and not np.array_equal(
                    tbl.thread_grid,
                    np.asarray(sorted(set(int(t) for t in grid)),
                               dtype=np.int64)):
                tbl = None  # grid narrowed: table indices no longer apply
        return ThreadPredictor(
            feature_builder=FeatureBuilder(self.config.feature_groups),
            pipeline=self.pipeline,
            model=self.model,
            thread_grid=grid,
            cache_size=cache_size,
            plan=plan,
            table=tbl,
            # getattr: bundles pickled before the routine tag existed.
            routine=getattr(self.config, "routine", "gemm"),
        )


class InstallationWorkflow:
    """Configurable end-to-end ADSALA installation.

    Parameters mirror the paper's methodology; the defaults are scaled
    for simulator-speed experimentation and every stage can be toggled
    for the ablation benchmarks.

    Parameters
    ----------
    simulator:
        The target machine.
    memory_cap_bytes:
        Sampling domain bound (paper: 100 MB / 500 MB).
    n_shapes:
        GEMM shapes in the campaign (paper: 1763).
    thread_grid:
        Candidate thread counts (default: derived from the machine).
    budget:
        Candidate-registry budget ("fast" or "full").
    label_transform:
        "log" (default; loss is scale-free across the us..s runtime
        range), "sqrt", or "identity" (the paper's literal setup).
    use_yeo_johnson / use_lof:
        Toggle preprocessing stages (ablations).
    tune_iters / cv_folds / tune_subsample:
        Hyper-parameter search effort; tuning runs on at most
        ``tune_subsample`` rows, then the best config refits on all.
    test_fraction:
        Held-out *shape* fraction (split at shape granularity so every
        (shape, thread) row of a test shape stays unseen).
    eval_time_scale:
        Multiplier applied to the measured Python model-evaluation time
        before it enters the speedup estimate.  The paper's runtime
        library evaluates its models from compiled C++ (Section III-C),
        roughly 40x faster than our interpreted predict path; the
        paper-reproduction benchmarks pass 0.025 to model that deployment
        while unit tests keep the honest default of 1.0.
    eval_time_s:
        Fixed evaluation time (seconds) used *instead of* measuring it
        (``eval_time_scale`` is then ignored).  Measurement is honest
        but wall-clock-noisy; pin it when bitwise-reproducible bundles
        are required (matrix cells, resume-checksum tests).
    n_jobs / executor:
        Tuning fan-out across (configuration, fold) work items:
        worker count and ``"thread"`` or ``"process"``.  Selection is
        bitwise independent of both.
    """

    def __init__(self, simulator, memory_cap_bytes: int, n_shapes: int = 300,
                 thread_grid=None, budget: str = "fast",
                 label_transform: str = "log", feature_groups: str = "both",
                 use_yeo_johnson: bool = True, use_lof: bool = True,
                 corr_threshold: float = 0.8, lof_neighbors: int = 20,
                 lof_contamination: float = 0.02, test_fraction: float = 0.3,
                 tune_iters: int = 3, cv_folds: int = 3,
                 tune_subsample: int = 4000, repeats: int = 10,
                 candidates=None, seed: int = 0, eval_time_scale: float = 1.0,
                 dtype: str = "float32", eval_time_s: float = None,
                 n_jobs: int = 1, executor: str = "thread"):
        self.simulator = simulator
        self.memory_cap_bytes = int(memory_cap_bytes)
        self.n_shapes = int(n_shapes)
        self.thread_grid = (list(thread_grid) if thread_grid is not None
                            else choose_thread_grid(simulator.max_threads()))
        self.budget = budget
        self.label_transform = label_transform
        self.feature_groups = feature_groups
        self.use_yeo_johnson = use_yeo_johnson
        self.use_lof = use_lof
        self.corr_threshold = corr_threshold
        self.lof_neighbors = lof_neighbors
        self.lof_contamination = lof_contamination
        self.test_fraction = test_fraction
        self.tune_iters = tune_iters
        self.cv_folds = cv_folds
        self.tune_subsample = tune_subsample
        self.repeats = repeats
        self.candidates = candidates
        self.seed = int(seed)
        if str(dtype) not in ("float32", "float64"):
            raise ValueError(f"unsupported dtype {dtype!r}")
        self.dtype = str(dtype)
        if eval_time_scale <= 0:
            raise ValueError("eval_time_scale must be positive")
        self.eval_time_scale = float(eval_time_scale)
        if eval_time_s is not None and eval_time_s <= 0:
            raise ValueError("eval_time_s must be positive (or None)")
        self.eval_time_s = eval_time_s
        if int(n_jobs) < 1:
            raise ValueError("n_jobs must be >= 1")
        self.n_jobs = int(n_jobs)
        self.executor = executor
        self.feature_builder = FeatureBuilder(feature_groups)
        self.timings_ = {}

    # ------------------------------------------------------------------
    def gather(self) -> TimingDataset:
        """Stage 1: the timing campaign."""
        t0 = time.perf_counter()
        gatherer = DataGatherer(self.simulator, thread_grid=self.thread_grid,
                                repeats=self.repeats)
        data = gatherer.gather(self.n_shapes, self.memory_cap_bytes,
                               seed=self.seed, dtype=self.dtype)
        self.timings_["gather_s"] = time.perf_counter() - t0
        return data

    def gather_config(self) -> dict:
        """Everything that determines :meth:`gather`'s output.

        The pipeline's gather stage keys its cached artifact on this;
        subclasses that gather differently (non-GEMM routines) must
        extend it so their campaigns never collide in the stage cache.
        """
        return {
            "machine": self.simulator.name,
            "thread_grid": list(self.thread_grid),
            "n_shapes": self.n_shapes,
            "memory_cap_bytes": self.memory_cap_bytes,
            "repeats": self.repeats,
            "seed": self.seed,
            "dtype": self.dtype,
        }

    def split_shapes(self, data: TimingDataset):
        """Stage 2: stratified 70/30 split at shape granularity."""
        shapes = data.unique_shapes()
        itemsize = 4.0 if self.dtype == "float32" else 8.0
        mem = np.log(itemsize * (shapes[:, 0] * shapes[:, 1]
                            + shapes[:, 1] * shapes[:, 2]
                            + shapes[:, 0] * shapes[:, 2]))
        bins = stratify_bins(mem, n_bins=min(8, max(2, shapes.shape[0] // 8)))
        rng = np.random.default_rng(self.seed)
        test_shape_idx = []
        for b in np.unique(bins):
            members = np.nonzero(bins == b)[0]
            members = rng.permutation(members)
            n_test = max(1, int(round(members.size * self.test_fraction)))
            if members.size >= 2:
                n_test = min(n_test, members.size - 1)
            test_shape_idx.extend(members[:n_test].tolist())
        test_set = {tuple(shapes[i]) for i in test_shape_idx}
        keys = list(zip(data.m.tolist(), data.k.tolist(), data.n.tolist()))
        is_test = np.array([key in test_set for key in keys])
        return data.select(~is_test), data.select(is_test)

    def preprocess(self, train: TimingDataset):
        """Stage 3: fit the preprocessing on training rows.

        Returns ``(pipeline, X_train, y_train)`` where the pipeline
        replays transform-only stages at inference time and the training
        rows have had LOF outliers removed.
        """
        X = self.feature_builder.build(train.m, train.k, train.n, train.threads)
        stages = []
        if self.use_yeo_johnson:
            yj = YeoJohnsonTransformer()
            X = yj.fit_transform(X)
            stages.append(("yeo_johnson", yj))
        scaler = StandardScaler()
        X = scaler.fit_transform(X)
        stages.append(("scaler", scaler))

        y = np.asarray(self._config_stub().transform_label(train.runtime))
        if self.use_lof:
            lof = LocalOutlierFactor(n_neighbors=self.lof_neighbors,
                                     contamination=self.lof_contamination)
            X, y = lof.filter(X, y)
        pruner = CorrelationPruner(threshold=self.corr_threshold)
        X = pruner.fit_transform(X)
        stages.append(("corr_prune", pruner))
        return Pipeline.from_fitted(stages), X, y

    #: The routine this workflow's campaign times; subclasses that
    #: gather for other routines override it so the config artefact (and
    #: through it the predictor's cache keys and the serving router) is
    #: tagged correctly.
    routine = "gemm"

    def _config_stub(self) -> AdsalaConfig:
        return AdsalaConfig(
            machine=self.simulator.name,
            routine=self.routine,
            dtype=self.dtype,
            thread_grid=self.thread_grid,
            feature_groups=self.feature_groups,
            label_transform=self.label_transform,
            memory_cap_bytes=self.memory_cap_bytes,
            n_shapes=self.n_shapes,
            seed=self.seed,
            preprocessing={
                "use_yeo_johnson": self.use_yeo_johnson,
                "use_lof": self.use_lof,
                "corr_threshold": self.corr_threshold,
                "lof_neighbors": self.lof_neighbors,
                "lof_contamination": self.lof_contamination,
            },
            hyperthreading=self.simulator.hyperthreading,
            affinity=self.simulator.affinity.value,
        )

    # ------------------------------------------------------------------
    def run(self, data: TimingDataset = None, cache=None) -> TrainedBundle:
        """Run the full installation; returns the selected bundle.

        A facade over :class:`~repro.train.pipeline.TrainingPipeline`:
        the stages execute exactly the computation documented above,
        fanned across ``n_jobs`` workers, and ``cache`` (a directory
        path or :class:`~repro.train.stages.StageCache`) makes the run
        resumable — an interrupted installation re-executes only the
        stages that never finished.
        """
        from repro.train.pipeline import TrainingPipeline

        pipeline = TrainingPipeline(self, cache=cache, n_jobs=self.n_jobs,
                                    executor=self.executor)
        bundle = pipeline.run(data)
        self.last_pipeline_ = pipeline
        return bundle
