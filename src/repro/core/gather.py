"""Installation-time data gathering (paper Fig. 2, left box).

For every sampled GEMM shape and every candidate thread count, the
gatherer runs the repetition-loop timing protocol on the machine
(simulator) and records the reduced runtime.  Following the paper's
protocol, experiments at different thread counts are independent (the
simulator has no cross-call state to perturb, but the structure is kept
so a real-backend gatherer behaves correctly), and the campaign can be
sharded across "nodes" (paper: 15 nodes on Gadi) purely as an
embarrassingly-parallel split of the shape list.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import TimingDataset, TimingRecord
from repro.gemm.partition import choose_thread_grid
from repro.machine.simulator import MachineSimulator
from repro.sampling.domain import GemmDomainSampler


class DataGatherer:
    """Runs timing campaigns on a simulated machine.

    Parameters
    ----------
    simulator:
        The machine executing the GEMMs.
    thread_grid:
        Candidate thread counts; defaults to
        :func:`repro.gemm.partition.choose_thread_grid` over the
        machine's maximum.
    repeats / reduce:
        Timing-loop protocol (paper: 10 iterations, we reduce by median
        for robustness to noise spikes).
    """

    def __init__(self, simulator: MachineSimulator, thread_grid=None,
                 repeats: int = 10, reduce: str = "median"):
        self.simulator = simulator
        self.thread_grid = (list(thread_grid) if thread_grid is not None
                            else choose_thread_grid(simulator.max_threads()))
        if not self.thread_grid:
            raise ValueError("thread_grid must be non-empty")
        if max(self.thread_grid) > simulator.max_threads():
            raise ValueError("thread_grid exceeds the machine's capacity")
        self.repeats = repeats
        self.reduce = reduce

    def gather_for_specs(self, specs, shard: int = 0, n_shards: int = 1) -> TimingDataset:
        """Time every (shape, thread count) pair; optionally sharded.

        ``shard``/``n_shards`` splits the shape list round-robin so a
        campaign can be distributed across nodes and merged afterwards,
        like the paper's 15-node gathering run on Gadi.
        """
        if not 0 <= shard < n_shards:
            raise ValueError("need 0 <= shard < n_shards")
        records = []
        for i, spec in enumerate(specs):
            if i % n_shards != shard:
                continue
            for p in self.thread_grid:
                runtime = self.simulator.timed_run(spec, p, repeats=self.repeats,
                                                   reduce=self.reduce)
                records.append(TimingRecord(spec.m, spec.k, spec.n, p, runtime,
                                            routine=getattr(spec, "routine",
                                                            "gemm")))
        if not records:
            raise ValueError("no shapes assigned to this shard")
        return TimingDataset.from_records(records, dtype=specs[0].dtype)

    def gather(self, n_shapes: int, memory_cap_bytes: int, seed: int = 0,
               dtype: str = "float32") -> TimingDataset:
        """Sample shapes quasi-randomly and time them (the full campaign)."""
        sampler = GemmDomainSampler(memory_cap_bytes=memory_cap_bytes,
                                    dtype=dtype, seed=seed)
        specs = sampler.sample(n_shapes)
        return self.gather_for_specs(specs)

    def node_hours(self) -> float:
        """Simulated node hours consumed so far (paper Section VI-A)."""
        return self.simulator.clock.node_hours
