"""Speedup estimation and model selection (paper Section IV-D).

The selection criterion combines predictive accuracy and evaluation
overhead through the estimated speedup::

    s = t_original / (t_ADSALA + t_eval)

where ``t_original`` is the measured runtime at the maximum thread
count, ``t_ADSALA`` the measured runtime at the model-chosen thread
count, and ``t_eval`` the measured model evaluation time.  Both the
per-GEMM *mean* speedup and the total-wall-time *aggregate* speedup are
reported, exactly as Tables III/IV do, alongside the normalised test
RMSE and the "ideal" speedups that ignore evaluation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import TimingDataset
from repro.ml.metrics import normalised_rmse


@dataclass(frozen=True)
class SpeedupEstimate:
    """Speedup statistics of one model over a test shape set."""

    ideal_mean: float
    ideal_aggregate: float
    eval_time_s: float
    estimated_mean: float
    estimated_aggregate: float
    per_shape: np.ndarray = field(repr=False, default=None)

    @property
    def eval_time_us(self) -> float:
        return self.eval_time_s * 1e6


def estimate_speedup(predictor, test_data: TimingDataset,
                     eval_time_s: float = None) -> SpeedupEstimate:
    """Estimate speedups of ``predictor`` on measured test timings.

    For every unique shape in ``test_data`` the predictor chooses a
    thread count; ``t_ADSALA`` is the *measured* runtime of that shape at
    the chosen count (nearest grid entry present in the data), and
    ``t_original`` the measured runtime at the maximum thread count —
    the paper's "traditional GEMM" baseline.
    """
    if eval_time_s is None:
        eval_time_s = predictor.measure_eval_time()
    shapes = test_data.unique_shapes()
    if shapes.shape[0] == 0:
        raise ValueError("test data has no shapes")

    t_orig = np.empty(shapes.shape[0])
    t_adsala = np.empty(shapes.shape[0])
    for i, (m, k, n) in enumerate(shapes):
        mask = (test_data.m == m) & (test_data.k == k) & (test_data.n == n)
        threads = test_data.threads[mask]
        runtime = test_data.runtime[mask]
        t_orig[i] = runtime[np.argmax(threads)]
        choice = predictor.predict_threads(int(m), int(k), int(n))
        # Nearest measured thread count to the prediction.
        j = int(np.argmin(np.abs(threads - choice)))
        t_adsala[i] = runtime[j]

    ideal = t_orig / t_adsala
    estimated = t_orig / (t_adsala + eval_time_s)
    return SpeedupEstimate(
        ideal_mean=float(ideal.mean()),
        ideal_aggregate=float(t_orig.sum() / t_adsala.sum()),
        eval_time_s=float(eval_time_s),
        estimated_mean=float(estimated.mean()),
        estimated_aggregate=float(t_orig.sum() / (t_adsala + eval_time_s).sum()),
        per_shape=estimated,
    )


@dataclass
class ModelSelectionRow:
    """One row of the Tables III/IV bake-off."""

    name: str
    nrmse: float
    speedup: SpeedupEstimate
    best_params: dict

    def as_dict(self) -> dict:
        return {
            "model": self.name,
            "normalised_test_rmse": round(self.nrmse, 3),
            "ideal_mean_speedup": round(self.speedup.ideal_mean, 2),
            "ideal_aggregate_speedup": round(self.speedup.ideal_aggregate, 2),
            "eval_time_us": round(self.speedup.eval_time_us, 2),
            "estimated_mean_speedup": round(self.speedup.estimated_mean, 2),
            "estimated_aggregate_speedup": round(self.speedup.estimated_aggregate, 2),
        }


@dataclass
class ModelSelectionReport:
    """All bake-off rows plus the winner."""

    rows: list
    selected: str

    def row(self, name: str) -> ModelSelectionRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"no model named {name!r}")

    def as_table(self) -> list:
        return [r.as_dict() for r in self.rows]

    @classmethod
    def select(cls, rows) -> "ModelSelectionReport":
        """Pick the model with the highest estimated mean speedup.

        Ties break toward the lower evaluation time, then the lower
        RMSE — matching the paper's narrative that XGBoost wins by
        combining best accuracy with fast evaluation.
        """
        rows = list(rows)
        if not rows:
            raise ValueError("no rows to select from")
        best = max(rows, key=lambda r: (r.speedup.estimated_mean,
                                        -r.speedup.eval_time_s, -r.nrmse))
        return cls(rows=rows, selected=best.name)


def test_set_nrmse(model, pipeline, config, features, runtimes) -> float:
    """Normalised RMSE of a fitted model on (already-built) test features.

    The comparison happens in the label-transform space the model was
    trained in, mirroring how the paper evaluates its regressors on the
    preprocessed data.
    """
    X = features if pipeline is None else pipeline.transform(features)
    pred = model.predict(X)
    y = config.transform_label(runtimes)
    return normalised_rmse(y, pred)
