"""Routines as first-class citizens of the runtime stack.

The paper's core claim is that ML-guided thread selection never looks
*inside* the kernel: it needs a dimension triple to build features
from, a timing oracle, and a thread grid.  Everything else — GEMM,
GEMV, TRSM, SYRK — is interchangeable.  This module makes that claim
structural:

* :class:`RoutineSpec` is the protocol every problem description
  satisfies (``routine`` name, ``dims`` triple in the GEMM feature
  convention, ``dtype``, FLOP/byte accounting, and a canonical ``key()``
  that *includes the routine name* so two routines with coinciding
  dimension triples can never alias);
* :class:`RoutineRegistry` is the central catalogue the engine, serving,
  training and CLI layers consult instead of hard-coding spec classes.
  Each :class:`RoutineInfo` records how to build a spec from the
  routine's natural dimensions (trace files, CLI), how to map a sampled
  GEMM problem onto the routine (training campaigns), and how to
  recover a spec from the stored feature dims (datasets).

Spec classes resolve lazily (dotted-path strings) so importing this
module costs nothing and cannot create import cycles with the packages
that define the specs.

:func:`routine_of` is the duck-typed hot-path companion: it reads the
spec's ``routine`` class attribute without touching the registry, so
dispatch in the engine stays a dictionary lookup.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

#: The routine every bare ``(m, k, n)`` triple is assumed to be.
DEFAULT_ROUTINE = "gemm"


@runtime_checkable
class RoutineSpec(Protocol):
    """Structural protocol of one routine problem instance.

    Any frozen value object exposing these serves through the whole
    stack: features come from ``dims``, admission and sampling budgets
    from ``memory_bytes``, throughput reports from ``flops``, and every
    cache/refiner/router key starts with ``routine``.
    """

    routine: str
    dtype: str

    @property
    def dims(self) -> tuple:
        """``(m, k, n)`` in the GEMM feature convention."""
        ...  # pragma: no cover - protocol stub

    @property
    def flops(self) -> int:
        ...  # pragma: no cover - protocol stub

    @property
    def memory_bytes(self) -> int:
        ...  # pragma: no cover - protocol stub

    def key(self) -> tuple:
        """Hashable identity, routine name first."""
        ...  # pragma: no cover - protocol stub


def routine_of(spec, default: str = DEFAULT_ROUTINE) -> str:
    """The routine name of a spec (or a bare dims triple -> ``default``)."""
    return getattr(spec, "routine", default)


@dataclass(frozen=True)
class RoutineInfo:
    """One registry entry: how the stack builds and maps a routine.

    Parameters
    ----------
    name:
        Registry key ("gemm", "gemv", ...).
    spec_path:
        Dotted path ``module:ClassName`` of the spec dataclass, resolved
        lazily on first use.
    dim_names:
        The spec's *natural* dimension fields, in the order trace files
        and the CLI list them (GEMV is ``m n``, SYRK is ``n k``, ...).
    gemm_dims:
        Maps a sampled GEMM problem's ``(m, k, n)`` onto this routine's
        natural dims — how training campaigns reuse the GEMM domain
        sampler.
    feature_dims:
        Inverse of ``spec.dims``: recovers the natural dims from the
        stored ``(m, k, n)`` feature triple, so tagged dataset rows can
        be turned back into specs.
    description:
        One line for ``--help`` and docs.
    """

    name: str
    spec_path: str
    dim_names: tuple
    gemm_dims: callable
    feature_dims: callable
    description: str = ""

    @property
    def n_dims(self) -> int:
        return len(self.dim_names)

    @property
    def spec_type(self) -> type:
        """The spec class, imported on first access."""
        module_name, _, class_name = self.spec_path.partition(":")
        return getattr(importlib.import_module(module_name), class_name)

    def build(self, *dims, dtype: str = "float32"):
        """A spec from the routine's natural dimensions."""
        if len(dims) != self.n_dims:
            raise ValueError(
                f"routine {self.name!r} takes {self.n_dims} dimensions "
                f"{self.dim_names}, got {len(dims)}: {dims}")
        return self.spec_type(**dict(zip(self.dim_names, map(int, dims))),
                              dtype=dtype)

    def from_gemm(self, gemm_spec):
        """Map a sampled GEMM problem onto this routine's spec."""
        return self.build(*self.gemm_dims(gemm_spec.m, gemm_spec.k,
                                          gemm_spec.n),
                          dtype=gemm_spec.dtype)

    def from_feature_dims(self, dims, dtype: str = "float32"):
        """A spec back from the stored ``(m, k, n)`` feature triple."""
        m, k, n = dims
        return self.build(*self.feature_dims(int(m), int(k), int(n)),
                          dtype=dtype)


class RoutineRegistry:
    """Name -> :class:`RoutineInfo` catalogue with spec-type lookup."""

    def __init__(self):
        self._routines: dict = {}

    def register(self, info: RoutineInfo) -> RoutineInfo:
        if info.name in self._routines:
            raise ValueError(f"routine {info.name!r} already registered")
        self._routines[info.name] = info
        return info

    def names(self) -> tuple:
        """Registered routine names, registration order."""
        return tuple(self._routines)

    def get(self, name: str) -> RoutineInfo:
        try:
            return self._routines[name]
        except KeyError:
            raise KeyError(f"unknown routine {name!r}; registered: "
                           f"{sorted(self._routines)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._routines

    def info_for(self, spec) -> RoutineInfo:
        """The entry serving ``spec`` (via its ``routine`` attribute)."""
        return self.get(routine_of(spec))


#: The process-wide registry every layer consults.
REGISTRY = RoutineRegistry()


def register_routine(name: str, spec_path: str, dim_names, gemm_dims,
                     feature_dims, description: str = "") -> RoutineInfo:
    """Register a routine with the global :data:`REGISTRY`."""
    return REGISTRY.register(RoutineInfo(
        name=name, spec_path=spec_path, dim_names=tuple(dim_names),
        gemm_dims=gemm_dims, feature_dims=feature_dims,
        description=description))


def get_routine(name: str) -> RoutineInfo:
    return REGISTRY.get(name)


def routine_names() -> tuple:
    return REGISTRY.names()


def build_spec(routine: str, *dims, dtype: str = "float32"):
    """Convenience: ``get_routine(routine).build(*dims, dtype=dtype)``."""
    return REGISTRY.get(routine).build(*dims, dtype=dtype)


# ---------------------------------------------------------------------------
# The built-in BLAS routines.  GEMM's mappings are identities; the
# others mirror repro.train.matrix's historic campaign conventions and
# each spec's documented ``dims`` layout.
register_routine(
    "gemm", "repro.gemm.interface:GemmSpec", ("m", "k", "n"),
    gemm_dims=lambda m, k, n: (m, k, n),
    feature_dims=lambda m, k, n: (m, k, n),
    description="general matrix-matrix product C <- alpha*A@B + beta*C")

register_routine(
    "gemv", "repro.blas.gemv:GemvSpec", ("m", "n"),
    gemm_dims=lambda m, k, n: (m, k),          # dims -> (m, n, 1)
    feature_dims=lambda m, k, n: (m, k),
    description="matrix-vector product y <- alpha*A@x + beta*y "
                "(level 2, bandwidth-bound)")

register_routine(
    "syrk", "repro.blas.syrk:SyrkSpec", ("n", "k"),
    gemm_dims=lambda m, k, n: (m, k),          # dims -> (n, k, n)
    feature_dims=lambda m, k, n: (m, k),
    description="symmetric rank-k update C <- alpha*A@A.T + beta*C "
                "(half the FLOPs of the equivalent product)")

register_routine(
    "trsm", "repro.blas.trsm:TrsmSpec", ("m", "n"),
    gemm_dims=lambda m, k, n: (m, n),          # dims -> (m, m, n)
    feature_dims=lambda m, k, n: (m, n),
    description="triangular solve X <- alpha*inv(L)@B "
                "(parallelism over RHS columns)")
