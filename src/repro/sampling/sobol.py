"""Sobol low-discrepancy sequences (up to 4 dimensions).

A second quasi-random family alongside Halton, used by the sampling
ablation to check that ADSALA's campaign quality is not an artefact of
the specific sequence the paper chose.  Gray-code construction with
Joe-Kuo direction numbers for the first four dimensions; optional
digital-shift scrambling (XOR with a random word per dimension), the
Sobol analogue of the Halton digit permutation.
"""

from __future__ import annotations

import numpy as np

MAX_BITS = 30

#: Joe-Kuo primitive-polynomial data per dimension (beyond the first):
#: (degree s, polynomial coefficient a, initial direction numbers m).
_DIMENSION_DATA = [
    (1, 0, (1,)),        # dimension 2
    (2, 1, (1, 3)),      # dimension 3
    (3, 1, (1, 3, 1)),   # dimension 4
]


def _direction_numbers(dim_index: int) -> np.ndarray:
    """Direction integers v_k (scaled by 2^MAX_BITS) for one dimension."""
    v = np.zeros(MAX_BITS + 1, dtype=np.int64)  # 1-indexed
    if dim_index == 0:
        # First dimension: van der Corput in base 2.
        for k in range(1, MAX_BITS + 1):
            v[k] = 1 << (MAX_BITS - k)
        return v
    if dim_index - 1 >= len(_DIMENSION_DATA):
        raise ValueError(
            f"Sobol supported up to {len(_DIMENSION_DATA) + 1} dimensions")
    s, a, m = _DIMENSION_DATA[dim_index - 1]
    for k in range(1, s + 1):
        v[k] = m[k - 1] << (MAX_BITS - k)
    for k in range(s + 1, MAX_BITS + 1):
        value = v[k - s] ^ (v[k - s] >> s)
        for i in range(1, s):
            if (a >> (s - 1 - i)) & 1:
                value ^= v[k - i]
        v[k] = value
    return v


def sobol_sequence(n: int, d: int, scramble: bool = False,
                   seed: int = 0) -> np.ndarray:
    """First ``n`` Sobol points in ``[0, 1)^d`` (Gray-code order).

    Skips the all-zeros point at index 0, like the Halton helpers.  With
    ``scramble=True`` a random digital shift per dimension is XORed in.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 1 <= d <= len(_DIMENSION_DATA) + 1:
        raise ValueError(f"d must be in [1, {len(_DIMENSION_DATA) + 1}]")
    directions = [_direction_numbers(j) for j in range(d)]
    shift = np.zeros(d, dtype=np.int64)
    if scramble:
        rng = np.random.default_rng(seed)
        shift = rng.integers(0, 1 << MAX_BITS, size=d, dtype=np.int64)

    out = np.empty((n, d))
    state = np.zeros(d, dtype=np.int64)
    denom = float(1 << MAX_BITS)
    for i in range(1, n + 1):
        # Gray code: flip the direction of the lowest zero bit of i-1.
        c = 1
        value = i - 1
        while value & 1:
            value >>= 1
            c += 1
        for j in range(d):
            state[j] ^= directions[j][c]
            out[i - 1, j] = ((state[j] ^ shift[j]) & ((1 << MAX_BITS) - 1)) / denom
    return out
