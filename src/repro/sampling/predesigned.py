"""The pre-designed GEMM shape sweeps of the paper's Figs. 13/14.

Three families:

* ``square`` — ``m = k = n`` swept over the size grid;
* ``one_small`` — one dimension pinned to a small value (32..256), the
  other two swept together (rows 1-3 of Fig. 13: panels like
  "n,k (m=64)");
* ``two_small`` — two dimensions pinned small and equal, the third
  swept (rows 4-6: panels like "m (k,n=64)").

The grids match the figure axes: swept sizes 128..4096 (powers of two),
small values 32..256.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gemm.interface import GemmSpec

SWEEP_SIZES = (128, 256, 512, 1024, 2048, 4096)
SMALL_VALUES = (32, 64, 128, 256)
#: Which dimension(s) are small per family row, matching figure order.
ONE_SMALL_ROWS = ("m", "k", "n")
TWO_SMALL_ROWS = (("k", "n"), ("m", "n"), ("m", "k"))


@dataclass(frozen=True)
class PredesignedCase:
    """One point of a Fig. 13/14 panel."""

    family: str       # "square" | "one_small" | "two_small"
    row: str          # e.g. "n,k (m=?)" row id: the small dim(s), "-" for square
    small_value: int  # the pinned small value (0 for square)
    swept_value: int  # the x-axis value
    spec: GemmSpec

    @property
    def panel(self) -> str:
        """Panel label as printed in the figures, e.g. 'n,k (m=64)'."""
        if self.family == "square":
            return "m=k=n"
        if self.family == "one_small":
            # Figure row order: "n,k (m=...)", "m,n (k=...)", "m,k (n=...)".
            others = {"m": "n,k", "k": "m,n", "n": "m,k"}[self.row]
            return f"{others} ({self.row}={self.small_value})"
        fixed = ",".join(self.row)
        swept = [d for d in "mkn" if d not in self.row][0]
        return f"{swept} ({fixed}={self.small_value})"


def _spec_with(dims: dict) -> GemmSpec:
    return GemmSpec(m=dims["m"], k=dims["k"], n=dims["n"], dtype="float32")


def predesigned_cases(families=("square", "one_small", "two_small"),
                      sweep_sizes=SWEEP_SIZES, small_values=SMALL_VALUES):
    """Generate all cases for the requested families, figure ordering."""
    valid = {"square", "one_small", "two_small"}
    unknown = set(families) - valid
    if unknown:
        raise ValueError(f"unknown families {sorted(unknown)}; valid: {sorted(valid)}")
    cases = []
    if "square" in families:
        for s in sweep_sizes:
            cases.append(PredesignedCase(
                family="square", row="-", small_value=0, swept_value=s,
                spec=_spec_with({"m": s, "k": s, "n": s})))
    if "one_small" in families:
        for small_dim in ONE_SMALL_ROWS:
            for sv in small_values:
                for s in sweep_sizes:
                    dims = {"m": s, "k": s, "n": s}
                    dims[small_dim] = sv
                    cases.append(PredesignedCase(
                        family="one_small", row=small_dim, small_value=sv,
                        swept_value=s, spec=_spec_with(dims)))
    if "two_small" in families:
        for pair in TWO_SMALL_ROWS:
            for sv in small_values:
                for s in sweep_sizes:
                    dims = {"m": s, "k": s, "n": s}
                    for d in pair:
                        dims[d] = sv
                    cases.append(PredesignedCase(
                        family="two_small", row="".join(pair), small_value=sv,
                        swept_value=s, spec=_spec_with(dims)))
    return cases
