"""GEMM shape sampling under a memory cap.

Maps scrambled-Halton unit-cube points to integer ``(m, k, n)`` triples.
Dimensions are drawn on a *square-root scale* (matching the axes of the
paper's Figs. 9/10, whose domain reaches ~74k for the 500 MB cap: a
square-root-uniform draw up to ``dim_max`` with memory rejection
produces exactly that wedge-shaped domain), and triples whose aggregate
operand footprint exceeds the cap are rejected, with the quasi-random
sequence simply continuing until enough accepted samples exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gemm.counts import DTYPE_BYTES, gemm_memory_bytes
from repro.gemm.interface import GemmSpec
from repro.sampling.halton import scrambled_halton_sequence


@dataclass
class GemmDomainSampler:
    """Quasi-random sampler of GEMM shapes below a memory footprint.

    Parameters
    ----------
    memory_cap_bytes:
        Aggregate operand footprint limit (paper: 100 MB / 500 MB).
    dtype:
        Element type, determining bytes per element.
    dim_min / dim_max:
        Inclusive dimension bounds.  ``dim_max`` defaults to
        ``6.5 * sqrt(cap_elements)``, which reproduces the ~74k upper
        edge visible in the paper's 500 MB heatmaps.
    bases:
        Halton bases per dimension.  The paper states (2, 3, 4); base 4
        is fine once scrambled, but (2, 3, 5) is the default here since
        coprime bases have strictly better discrepancy.
    sequence:
        Quasi-random family: "halton" (the paper's choice) or "sobol".
    seed:
        Scrambling seed.
    """

    memory_cap_bytes: int
    dtype: str = "float32"
    dim_min: int = 1
    dim_max: int = None
    bases: tuple = (2, 3, 5)
    sequence: str = "halton"
    seed: int = 0
    rejected_: int = field(default=0, init=False)
    accepted_: int = field(default=0, init=False)

    def __post_init__(self):
        if self.memory_cap_bytes <= 0:
            raise ValueError("memory_cap_bytes must be positive")
        if len(self.bases) != 3:
            raise ValueError("need exactly three Halton bases (m, k, n)")
        if self.sequence not in ("halton", "sobol"):
            raise ValueError(f"unknown sequence {self.sequence!r}")
        itemsize = DTYPE_BYTES[str(np.dtype(self.dtype))]
        cap_elements = self.memory_cap_bytes / itemsize
        if self.dim_max is None:
            self.dim_max = int(6.5 * np.sqrt(cap_elements))
        if not 1 <= self.dim_min <= self.dim_max:
            raise ValueError(f"invalid dim bounds [{self.dim_min}, {self.dim_max}]")
        # The smallest possible triple must fit, otherwise nothing does.
        if gemm_memory_bytes(self.dim_min, self.dim_min, self.dim_min,
                             self.dtype) > self.memory_cap_bytes:
            raise ValueError("memory cap excludes even the minimal shape")

    def _map_unit(self, u: np.ndarray) -> np.ndarray:
        """Unit cube -> integer dims on a square-root scale."""
        lo, hi = np.sqrt(self.dim_min), np.sqrt(self.dim_max)
        dims = np.round((lo + u * (hi - lo)) ** 2).astype(np.int64)
        return np.clip(dims, self.dim_min, self.dim_max)

    def sample(self, n: int, start_index: int = 1):
        """Return ``n`` accepted :class:`GemmSpec` shapes.

        Rejection keeps consuming the quasi-random sequence, so the
        accepted set is still low-discrepancy *within* the feasible
        wedge.  ``rejected_`` records how many candidates were dropped.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        specs = []
        self.rejected_ = 0
        self.accepted_ = 0
        index = start_index
        batch = max(64, 4 * n)
        while len(specs) < n:
            if self.sequence == "halton":
                u = scrambled_halton_sequence(batch, self.bases, seed=self.seed,
                                              start_index=index)
            else:
                from repro.sampling.sobol import sobol_sequence

                u = sobol_sequence(index + batch - 1, 3, scramble=True,
                                   seed=self.seed)[index - 1:]
            index += batch
            dims = self._map_unit(u)
            for m, k, n_dim in dims:
                mem = gemm_memory_bytes(int(m), int(k), int(n_dim), self.dtype)
                if mem <= self.memory_cap_bytes:
                    specs.append(GemmSpec(int(m), int(k), int(n_dim), dtype=self.dtype))
                    self.accepted_ += 1
                    if len(specs) == n:
                        break
                else:
                    self.rejected_ += 1
        return specs

    def acceptance_rate(self) -> float:
        """Fraction of candidates accepted in the last ``sample`` call."""
        total = self.accepted_ + self.rejected_
        if total == 0:
            raise RuntimeError("call sample() before acceptance_rate()")
        return self.accepted_ / total
