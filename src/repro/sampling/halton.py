"""Halton low-discrepancy sequences, plain and scrambled.

The Halton sequence in base ``b`` is the radical inverse of the integer
index: write ``i`` in base ``b``, mirror the digits around the radix
point.  Multi-dimensional Halton uses coprime bases per dimension, but
high-dimensional / non-coprime pairs show strong correlation artefacts;
*scrambling* (applying a fixed pseudo-random digit permutation per base,
Mascagni & Chi 2004) breaks those correlations, which is why the paper
uses the scrambled variant.

Note the paper says bases "2, 3, and 4" — 4 is not prime (Halton theory
wants coprime bases), so we accept any base >= 2 and default ADSALA's
sampler to (2, 3, 5) while allowing (2, 3, 4) for a literal
reproduction; the scrambling makes base 4 usable in practice.
"""

from __future__ import annotations

import numpy as np


def radical_inverse(index: int, base: int, permutation=None) -> float:
    """Radical inverse of ``index`` in ``base``; optionally scrambled.

    ``permutation`` is a digit permutation (array of length ``base``
    with ``perm[0] == 0`` conventionally kept so 0 maps to 0).
    """
    if base < 2:
        raise ValueError("base must be >= 2")
    if index < 0:
        raise ValueError("index must be non-negative")
    result = 0.0
    frac = 1.0 / base
    i = index
    while i > 0:
        digit = i % base
        if permutation is not None:
            digit = int(permutation[digit])
        result += digit * frac
        i //= base
        frac /= base
    return result


def _digit_permutation(base: int, rng: np.random.Generator) -> np.ndarray:
    """A random digit permutation fixing 0 (keeps the sequence anchored)."""
    perm = np.arange(base)
    tail = perm[1:]
    rng.shuffle(tail)
    perm[1:] = tail
    return perm


def halton_sequence(n: int, bases, start_index: int = 1) -> np.ndarray:
    """Plain Halton points in the unit cube; shape ``(n, len(bases))``.

    ``start_index`` defaults to 1: index 0 maps to the origin in every
    dimension, which is degenerate for sampling.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    bases = list(bases)
    out = np.empty((n, len(bases)))
    for j, b in enumerate(bases):
        out[:, j] = [radical_inverse(i, b) for i in range(start_index, start_index + n)]
    return out


def scrambled_halton_sequence(n: int, bases, seed: int = 0,
                              start_index: int = 1) -> np.ndarray:
    """Permutation-scrambled Halton points in the unit cube.

    A fixed permutation per base (derived from ``seed``) is applied to
    every digit, which destroys the inter-dimensional correlation of
    plain Halton for non-coprime or large bases while preserving the
    low-discrepancy structure.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    bases = list(bases)
    rng = np.random.default_rng(seed)
    perms = [_digit_permutation(b, rng) for b in bases]
    out = np.empty((n, len(bases)))
    for j, (b, perm) in enumerate(zip(bases, perms)):
        out[:, j] = [radical_inverse(i, b, perm)
                     for i in range(start_index, start_index + n)]
    return out
