"""Quasi-random sampling of the GEMM input domain.

The paper samples GEMM shapes with a *scrambled* Halton sequence
(Section IV-B) so the training set covers slim/square and big/small
matrices evenly under a memory cap, using bases 2, 3 and 4(->5) for the
m, k and n dimensions.

- :mod:`repro.sampling.halton` — radical-inverse Halton and the
  permutation-scrambled variant (Mascagni & Chi 2004).
- :mod:`repro.sampling.domain` — maps unit-cube samples to integer GEMM
  shapes bounded by a memory footprint.
- :mod:`repro.sampling.predesigned` — the structured sweeps of the
  paper's Figs. 13/14 (square, one-small-dim, two-small-dims).
"""

from repro.sampling.halton import halton_sequence, scrambled_halton_sequence, radical_inverse
from repro.sampling.sobol import sobol_sequence
from repro.sampling.domain import GemmDomainSampler
from repro.sampling.predesigned import predesigned_cases, PredesignedCase

__all__ = [
    "halton_sequence",
    "scrambled_halton_sequence",
    "radical_inverse",
    "sobol_sequence",
    "GemmDomainSampler",
    "predesigned_cases",
    "PredesignedCase",
]
