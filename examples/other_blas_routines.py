"""Extending ADSALA beyond GEMM — the paper's stated future work.

Trains thread-selection models for two more BLAS routines on the
simulated Gadi node:

* **SYRK** (symmetric rank-k update) — level 3, GEMM-like blocking but
  half the FLOPs;
* **GEMV** (matrix-vector product) — level 2, memory-bound, where the
  optimal thread count saturates at the bandwidth ceiling far below the
  core count.

The entire installation workflow (sampling, Table II features,
preprocessing, tuning, speedup-based selection) is reused unchanged via
``repro.blas.adapter``.

Run with::

    python examples/other_blas_routines.py
"""

import numpy as np

from repro.blas import GemvSpec, SyrkSpec, install_for_routine
from repro.machine.presets import gadi
from repro.machine.simulator import MachineSimulator

GRID = [1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96]


def demo_routine(name, make_spec, n_train=60, n_eval=15):
    print(f"=== {name} on simulated 'gadi' ===")
    sim = MachineSimulator(gadi(), seed=0)
    rng = np.random.default_rng(1)
    train_specs = [make_spec(rng) for _ in range(n_train)]

    bundle, oracle = install_for_routine(
        sim, train_specs, thread_grid=GRID, tune_iters=2, cv_folds=2,
        repeats=5, seed=0)
    print(f"  selected model: {bundle.config.model_name}")

    predictor = bundle.predictor()
    speedups, choices = [], []
    for _ in range(n_eval):
        spec = make_spec(rng)
        m, k, n = spec.dims
        p = predictor.predict_threads(m, k, n)
        choices.append(p)
        speedups.append(oracle.true_time(spec, max(GRID))
                        / oracle.true_time(spec, p))
    print(f"  chosen thread counts: {sorted(set(choices))}")
    print(f"  mean speedup vs {max(GRID)} threads: {np.mean(speedups):.2f}x")
    print(f"  median speedup: {np.median(speedups):.2f}x\n")


def main():
    demo_routine(
        "SYRK  C <- A@A.T",
        lambda rng: SyrkSpec(n=int(rng.integers(16, 3000)),
                             k=int(rng.integers(16, 3000))))
    demo_routine(
        "GEMV  y <- A@x",
        lambda rng: GemvSpec(m=int(rng.integers(64, 8000)),
                             n=int(rng.integers(64, 8000))))
    print("GEMV's chosen counts sit far below GEMM's — the bandwidth-bound "
          "regime the level-2 extension exposes.")


if __name__ == "__main__":
    main()
